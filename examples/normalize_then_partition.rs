//! Compose the two Howe et al. preprocessing strategies the paper's §2
//! describes: digital normalization first, then read-graph partitioning.
//!
//! Normalization strips redundant deep coverage (fewer tuples for every
//! downstream step); partitioning then splits what remains.
//!
//! ```text
//! cargo run --release --example normalize_then_partition
//! ```

use metaprep::core::{Pipeline, PipelineConfig};
use metaprep::norm::{normalize, NormalizeConfig};
use metaprep::synth::{scaled_profile, simulate_community, DatasetId};

fn main() {
    // MM is the deep-coverage dataset: normalization bites hardest there.
    let data = simulate_community(&scaled_profile(DatasetId::Mm, 0.4), 3);
    println!(
        "input: {} pairs, {} bp",
        data.reads.num_fragments(),
        data.reads.total_bases()
    );

    let ncfg = NormalizeConfig {
        k: 20,
        target: 10,
        sketch_width: 1 << 20,
        sketch_depth: 4,
        seed: 1,
    };
    let norm = normalize(&data.reads, ncfg);
    println!(
        "normalized to coverage {}: kept {:.1}% of fragments ({} of {})",
        ncfg.target,
        100.0 * norm.keep_fraction(),
        norm.kept,
        norm.kept + norm.dropped
    );

    let cfg = PipelineConfig::builder().k(27).tasks(2).threads(2).build();
    for (label, reads) in [("raw       ", &data.reads), ("normalized", &norm.reads)] {
        let res = Pipeline::new(cfg.clone())
            .run_reads(reads)
            .expect("pipeline");
        println!(
            "partition [{label}]: {:>9} tuples, {:>5} components, LC {:>5.1}%, {:.2}s",
            res.tuples_total,
            res.components.components,
            100.0 * res.largest_component_fraction(),
            res.timings.total().as_secs_f64()
        );
    }
    println!("\nnormalization shrinks the tuple stream before partitioning —");
    println!("the composition Howe et al. proposed and the paper's §2 recounts.");
}
