//! Multi-pass memory/time trade-off (paper §3.1, Table 3): sweep the pass
//! count and watch per-task memory fall while KmerGen time rises.
//!
//! ```text
//! cargo run --release --example multipass_memory
//! ```

use metaprep::core::{Pipeline, PipelineConfig, Step};
use metaprep::synth::{scaled_profile, simulate_community, DatasetId};

fn main() {
    let data = simulate_community(&scaled_profile(DatasetId::Mm, 0.3), 5);
    println!(
        "MM-like dataset: {} pairs, {} bp\n",
        data.reads.num_fragments(),
        data.reads.total_bases()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>14} {:>16}",
        "passes", "KmerGen(s)", "Sort(s)", "CC(s)", "modeled MB", "measured MB"
    );
    for passes in [1usize, 2, 4, 8] {
        let cfg = PipelineConfig::builder()
            .k(27)
            .passes(passes)
            .tasks(2)
            .threads(2)
            .build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>14.1} {:>16.1}",
            passes,
            res.timings.max_of(Step::KmerGen).as_secs_f64(),
            res.timings.max_of(Step::LocalSort).as_secs_f64(),
            res.timings.max_of(Step::LocalCc).as_secs_f64(),
            res.memory.total_modeled() as f64 / 1e6,
            res.memory.measured_peak_tuple_bytes as f64 / 1e6,
        );
    }
    println!("\nmore passes -> smaller tuple buffers, re-read input each pass (paper Table 3)");
}
