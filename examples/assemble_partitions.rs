//! Partition-then-assemble: the paper's §4.4 use case end to end.
//!
//! Assembles the whole read set, then assembles the METAPREP largest
//! component and remainder separately, and compares time and quality —
//! a miniature of the paper's Tables 8 and 9.
//!
//! ```text
//! cargo run --release --example assemble_partitions
//! ```

use metaprep::assembly::{assemble, AssemblyConfig};
use metaprep::core::{partition_reads, Pipeline, PipelineConfig};
use metaprep::synth::{scaled_profile, simulate_community, DatasetId};

fn main() {
    let data = simulate_community(&scaled_profile(DatasetId::Hg, 0.2), 11);
    let asm_cfg = AssemblyConfig {
        k: 21,
        min_count: 2,
        max_count: u32::MAX,
        min_contig_len: 100,
    };

    // Baseline: assemble everything.
    let full = assemble(&data.reads, asm_cfg);
    println!(
        "no preprocessing : {:>6} contigs, {:>9} bp, max {:>6}, N50 {:>6}  ({:.2}s)",
        full.stats.contigs,
        full.stats.total_bases,
        full.stats.max_contig,
        full.stats.n50,
        full.elapsed.as_secs_f64()
    );

    // METAPREP with the KF < 30 filter, then assemble each side.
    let cfg = PipelineConfig::builder()
        .k(27)
        .tasks(2)
        .threads(2)
        .kf_filter(1, 29)
        .build();
    let t0 = std::time::Instant::now();
    let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
    let parts = partition_reads(&data.reads, &res.labels, res.components.largest_root);
    let prep = t0.elapsed();

    let lc = assemble(&parts.lc, asm_cfg);
    let other = assemble(&parts.other, asm_cfg);
    for (name, a) in [("largest component", &lc), ("other reads      ", &other)] {
        println!(
            "{name}: {:>6} contigs, {:>9} bp, max {:>6}, N50 {:>6}  ({:.2}s)",
            a.stats.contigs,
            a.stats.total_bases,
            a.stats.max_contig,
            a.stats.n50,
            a.elapsed.as_secs_f64()
        );
    }
    println!(
        "METAPREP time {:.2}s; speedup vs no-preproc = {:.2}x \
         (paper's metric: full / (prep + LC))",
        prep.as_secs_f64(),
        full.elapsed.as_secs_f64() / (prep.as_secs_f64() + lc.elapsed.as_secs_f64())
    );
}
