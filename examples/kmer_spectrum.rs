//! k-mer frequency spectrum of a community, computed with the KMC2-style
//! counter — the evidence behind the paper's frequency-filter choices
//! (errors pile up at frequency 1-2, repeats in the high tail).
//!
//! ```text
//! cargo run --release --example kmer_spectrum
//! ```

use metaprep::kmc::{count_kmers, KmcConfig};
use metaprep::synth::{scaled_profile, simulate_community, DatasetId};

fn main() {
    let data = simulate_community(&scaled_profile(DatasetId::Mm, 0.3), 9);
    let res = count_kmers(
        &data.reads,
        KmcConfig {
            k: 27,
            minimizer_len: 7,
            bins: 256,
        },
    );
    println!(
        "{} k-mer occurrences, {} distinct, max count {} \
         (stage1 {:.2}s, stage2 {:.2}s)\n",
        res.total_kmers,
        res.distinct_kmers,
        res.max_count,
        res.stage1.as_secs_f64(),
        res.stage2.as_secs_f64()
    );

    // Histogram of counts: how many distinct k-mers occur c times.
    let mut spectrum: Vec<(u32, u64)> = Vec::new();
    {
        let mut map = std::collections::BTreeMap::new();
        for bin in &res.counts_per_bin {
            for &(_, c) in bin {
                *map.entry(c).or_insert(0u64) += 1;
            }
        }
        spectrum.extend(map);
    }

    println!("{:>6} {:>12}  spectrum", "count", "k-mers");
    let max_kmers = spectrum.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for &(c, n) in spectrum.iter().take(40) {
        let bar = "#".repeat((n * 60 / max_kmers) as usize);
        println!("{c:>6} {n:>12}  {bar}");
    }
    let tail: u64 = spectrum.iter().skip(40).map(|&(_, n)| n).sum();
    if tail > 0 {
        println!("  ... {tail} distinct k-mers with higher counts");
    }
    println!("\nfrequency-1 k-mers are sequencing errors; the high tail is repeats —");
    println!("exactly what the paper's KF filters cut (Table 7).");
}
