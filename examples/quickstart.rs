//! Quickstart: simulate a small community, partition it, inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use metaprep::core::{Pipeline, PipelineConfig};
use metaprep::synth::{simulate_community, CommunityProfile};

fn main() {
    // 1. A small synthetic metagenome: 6 species, 2000 read pairs.
    let profile = CommunityProfile::quickstart();
    let data = simulate_community(&profile, 42);
    println!(
        "simulated {} read pairs ({} bp) from {} genomes",
        data.reads.num_fragments(),
        data.reads.total_bases(),
        data.genomes.len()
    );

    // 2. Partition the read graph: k = 27, two simulated tasks with two
    //    threads each, single pass.
    let cfg = PipelineConfig::builder().k(27).tasks(2).threads(2).build();
    let result = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");

    // 3. Inspect the components.
    println!(
        "{} components; largest holds {:.1}% of fragments",
        result.components.components,
        100.0 * result.largest_component_fraction()
    );
    println!(
        "enumerated {} k-mer tuples; {} read-graph edges processed",
        result.tuples_total, result.localcc.edges
    );
    println!(
        "pipeline time (excl. IndexCreate): {:.3} s; IndexCreate: {:.3} s",
        result.timings.total().as_secs_f64(),
        result.timings.index_create.as_secs_f64()
    );

    // 4. How well does the partition respect the true species structure?
    //    Count fragment pairs of the same species that share a component.
    let lr = result.components.largest_root;
    let in_lc = result.labels.iter().filter(|&&l| l == lr).count();
    println!(
        "largest component: {in_lc} of {} fragments",
        result.labels.len()
    );
}
