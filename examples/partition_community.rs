//! Partition a community with a k-mer frequency filter and write the
//! output FASTQ files — the full METAPREP workflow of the paper's §4.4.
//!
//! ```text
//! cargo run --release --example partition_community [out_dir]
//! ```

use metaprep::core::{partition_reads, write_partitions, Pipeline, PipelineConfig};
use metaprep::synth::{scaled_profile, simulate_community, DatasetId};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/partition_out".to_string());

    // An HG-like community at half the default experiment scale.
    let profile = scaled_profile(DatasetId::Hg, 0.5);
    let data = simulate_community(&profile, 7);
    println!(
        "dataset: {} pairs, {} bp, {} species",
        data.reads.num_fragments(),
        data.reads.total_bases(),
        profile.species
    );

    // Sweep the paper's filter settings (Table 7).
    for (label, kf) in [
        ("no filter", None),
        ("KF < 30", Some((1u32, 29u32))),
        ("10 <= KF < 30", Some((10u32, 29u32))),
    ] {
        let mut b = PipelineConfig::builder().k(27).tasks(2).threads(2);
        if let Some((lo, hi)) = kf {
            b = b.kf_filter(lo, hi);
        }
        let result = Pipeline::new(b.build())
            .run_reads(&data.reads)
            .expect("pipeline");
        println!(
            "[{label}] {} components, largest = {:.1}% of reads, {} groups filtered",
            result.components.components,
            100.0 * result.largest_component_fraction(),
            result.localcc.filtered_groups
        );

        if kf == Some((10, 29)) {
            // Write the filtered partition to disk as lc.fastq / other.fastq.
            let parts =
                partition_reads(&data.reads, &result.labels, result.components.largest_root);
            write_partitions(&out_dir, &parts).expect("write FASTQ partitions");
            println!(
                "wrote {}/lc.fastq ({} reads) and {}/other.fastq ({} reads)",
                out_dir,
                parts.lc.len(),
                out_dir,
                parts.other.len()
            );
        }
    }
}
