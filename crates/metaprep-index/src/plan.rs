//! k-mer range planning for passes × tasks × threads.
//!
//! The k-mer value space `[0, 4^k)` is split, at m-mer bin granularity,
//! into `S · P · T` contiguous units of approximately equal *tuple count*
//! (weighted by the merHist bins). Units nest naturally:
//!
//! ```text
//! pass s   = units [s·P·T, (s+1)·P·T)
//! task p   = units [s·P·T + p·T, s·P·T + (p+1)·T)
//! thread t = unit   s·P·T + p·T + t
//! ```
//!
//! so a single boundary vector determines which pass enumerates a k-mer,
//! which task owns it, and which thread's sub-range it sorts into. This is
//! the static load balancing that replaces dynamic scheduling in METAPREP.

use crate::merhist::MerHist;

/// Split weighted bins into `units` contiguous groups of roughly equal
/// total weight. Returns `units + 1` bin indices (first 0, last
/// `weights.len()`), non-decreasing. Greedy cumulative split: boundary `j`
/// is placed at the first bin where the prefix weight reaches
/// `j / units` of the total.
pub fn split_bins_by_weight(weights: &[u32], units: usize) -> Vec<usize> {
    assert!(units >= 1);
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut bounds = Vec::with_capacity(units + 1);
    bounds.push(0usize);
    let mut acc = 0u64;
    let mut bin = 0usize;
    for j in 1..units {
        let target = (total * j as u64) / units as u64;
        while bin < weights.len() && acc < target {
            acc += weights[bin] as u64;
            bin += 1;
        }
        bounds.push(bin);
    }
    bounds.push(weights.len());
    bounds
}

/// The full execution plan for one dataset/configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangePlan {
    k: usize,
    m: usize,
    passes: usize,
    tasks: usize,
    threads: usize,
    /// `S·P·T + 1` k-mer values; unit `u` owns `[bounds[u], bounds[u+1])`.
    bounds: Vec<u128>,
    /// Same boundaries expressed as m-mer bin indices (for histogram sums).
    bin_bounds: Vec<usize>,
}

impl RangePlan {
    /// Build a plan from the global m-mer histogram.
    pub fn build(hist: &MerHist, passes: usize, tasks: usize, threads: usize) -> Self {
        assert!(passes >= 1 && tasks >= 1 && threads >= 1);
        let space = hist.space();
        let units = passes * tasks * threads;
        let bin_bounds = split_bins_by_weight(hist.counts(), units);
        let bounds: Vec<u128> = bin_bounds
            .iter()
            .map(|&b| {
                if b == space.bins() {
                    space.bin_upper_bound(space.bins() as u32 - 1)
                } else {
                    space.bin_lower_bound(b as u32)
                }
            })
            .collect();
        Self {
            k: space.k(),
            m: space.m(),
            passes,
            tasks,
            threads,
            bounds,
            bin_bounds,
        }
    }

    /// k-mer length this plan was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of passes `S`.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Number of tasks `P`.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Threads per task `T`.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn unit(&self, pass: usize, task: usize, thread: usize) -> usize {
        debug_assert!(pass < self.passes && task < self.tasks && thread < self.threads);
        (pass * self.tasks + task) * self.threads + thread
    }

    /// k-mer value range `[lo, hi)` of one pass.
    pub fn pass_range(&self, pass: usize) -> (u128, u128) {
        let u0 = self.unit(pass, 0, 0);
        let u1 = u0 + self.tasks * self.threads;
        (self.bounds[u0], self.bounds[u1])
    }

    /// k-mer value range of one task within a pass.
    pub fn task_range(&self, pass: usize, task: usize) -> (u128, u128) {
        let u0 = self.unit(pass, task, 0);
        let u1 = u0 + self.threads;
        (self.bounds[u0], self.bounds[u1])
    }

    /// k-mer value range of one thread's sort sub-range.
    pub fn thread_range(&self, pass: usize, task: usize, thread: usize) -> (u128, u128) {
        let u = self.unit(pass, task, thread);
        (self.bounds[u], self.bounds[u + 1])
    }

    /// Which task of `pass` owns k-mer value `v` (which must lie in the
    /// pass's range).
    pub fn owner_task(&self, pass: usize, v: u128) -> usize {
        let u0 = self.unit(pass, 0, 0);
        let u1 = u0 + self.tasks * self.threads;
        debug_assert!(v >= self.bounds[u0] && v < self.bounds[u1].max(self.bounds[u0] + 1));
        // partition_point over the task starts within this pass.
        let mut lo = 0usize;
        let mut hi = self.tasks;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.bounds[self.unit(pass, mid, 0)] <= v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// m-mer bin range `[lo, hi)` of one task within a pass — what the
    /// pipeline sums over chunk histograms to precompute send counts.
    pub fn task_bin_range(&self, pass: usize, task: usize) -> (usize, usize) {
        let u0 = self.unit(pass, task, 0);
        let u1 = u0 + self.threads;
        (self.bin_bounds[u0], self.bin_bounds[u1])
    }

    /// m-mer bin range of one thread's sub-range.
    pub fn thread_bin_range(&self, pass: usize, task: usize, thread: usize) -> (usize, usize) {
        let u = self.unit(pass, task, thread);
        (self.bin_bounds[u], self.bin_bounds[u + 1])
    }

    /// Boundaries (exclusive uppers) between thread sub-ranges of a task —
    /// the input LocalSort's partitioning stage needs.
    pub fn thread_boundaries(&self, pass: usize, task: usize) -> Vec<u128> {
        (1..self.threads)
            .map(|t| self.bounds[self.unit(pass, task, t)])
            .collect()
    }

    /// Lookup table mapping every m-mer bin to its `(pass, task)` pair,
    /// encoded as `pass * tasks + task`. KmerGen uses this for O(1) owner
    /// dispatch per enumerated k-mer instead of a binary search.
    pub fn bin_owner_table(&self) -> Vec<u32> {
        // EXPECT: `bin_bounds` is built with a trailing total-bins bound, so it is never empty.
        let bins = *self.bin_bounds.last().expect("nonempty");
        let mut table = vec![0u32; bins];
        for s in 0..self.passes {
            for p in 0..self.tasks {
                let u0 = self.unit(s, p, 0);
                let (blo, bhi) = (self.bin_bounds[u0], self.bin_bounds[u0 + self.threads]);
                let code = (s * self.tasks + p) as u32;
                for b in table.iter_mut().take(bhi).skip(blo) {
                    *b = code;
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_io::ReadStore;
    use proptest::prelude::*;

    #[test]
    fn split_bins_even_weights() {
        let b = split_bins_by_weight(&[1; 8], 4);
        assert_eq!(b, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn split_bins_skewed_weights() {
        // One huge bin: it ends up alone in a unit; other units may be
        // empty but the cover is exact.
        let b = split_bins_by_weight(&[100, 1, 1, 1], 2);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&4));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_bins_single_unit() {
        assert_eq!(split_bins_by_weight(&[3, 4], 1), vec![0, 2]);
    }

    #[test]
    fn split_bins_more_units_than_bins() {
        let b = split_bins_by_weight(&[5, 5], 4);
        assert_eq!(b.len(), 5);
        assert_eq!(*b.last().unwrap(), 2);
    }

    fn sample_hist() -> MerHist {
        let mut store = ReadStore::new();
        let mut x = 1u64;
        for _ in 0..200 {
            // Cheap LCG to vary sequences.
            let seq: Vec<u8> = (0..50)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    b"ACGT"[(x >> 60) as usize & 3]
                })
                .collect();
            store.push_single(&seq);
        }
        MerHist::build(&store, 11, 4)
    }

    #[test]
    fn plan_ranges_tile_the_kmer_space() {
        let h = sample_hist();
        let plan = RangePlan::build(&h, 2, 3, 4);
        // Pass ranges tile [0, 4^k).
        assert_eq!(plan.pass_range(0).0, 0);
        assert_eq!(plan.pass_range(1).1, 1u128 << (2 * 11));
        assert_eq!(plan.pass_range(0).1, plan.pass_range(1).0);
        // Task ranges tile each pass.
        for s in 0..2 {
            let (plo, phi) = plan.pass_range(s);
            assert_eq!(plan.task_range(s, 0).0, plo);
            assert_eq!(plan.task_range(s, 2).1, phi);
            for p in 0..2 {
                assert_eq!(plan.task_range(s, p).1, plan.task_range(s, p + 1).0);
            }
        }
        // Thread ranges tile each task.
        for s in 0..2 {
            for p in 0..3 {
                let (tlo, thi) = plan.task_range(s, p);
                assert_eq!(plan.thread_range(s, p, 0).0, tlo);
                assert_eq!(plan.thread_range(s, p, 3).1, thi);
            }
        }
    }

    #[test]
    fn owner_task_is_consistent_with_ranges() {
        let h = sample_hist();
        let plan = RangePlan::build(&h, 2, 4, 2);
        for s in 0..2 {
            for p in 0..4 {
                let (lo, hi) = plan.task_range(s, p);
                if lo < hi {
                    assert_eq!(plan.owner_task(s, lo), p, "pass {s} task {p} lo");
                    assert_eq!(plan.owner_task(s, hi - 1), p, "pass {s} task {p} hi");
                }
            }
        }
    }

    #[test]
    fn balanced_plan_has_roughly_equal_task_weights() {
        let h = sample_hist();
        let plan = RangePlan::build(&h, 1, 4, 1);
        let total = h.total() as f64;
        for p in 0..4 {
            let (blo, bhi) = plan.task_bin_range(0, p);
            let w = h.count_in_bins(blo, bhi) as f64;
            assert!(
                (w / total - 0.25).abs() < 0.15,
                "task {p} weight fraction {}",
                w / total
            );
        }
    }

    #[test]
    fn bin_owner_table_agrees_with_ranges() {
        let h = sample_hist();
        let plan = RangePlan::build(&h, 2, 3, 2);
        let table = plan.bin_owner_table();
        assert_eq!(table.len(), h.space().bins());
        for s in 0..2 {
            for p in 0..3 {
                let (blo, bhi) = plan.task_bin_range(s, p);
                for (b, &owner) in table.iter().enumerate().take(bhi).skip(blo) {
                    assert_eq!(owner, (s * 3 + p) as u32, "bin {b}");
                }
            }
        }
    }

    #[test]
    fn thread_boundaries_length() {
        let h = sample_hist();
        let plan = RangePlan::build(&h, 1, 2, 4);
        assert_eq!(plan.thread_boundaries(0, 0).len(), 3);
        assert_eq!(plan.thread_boundaries(0, 1).len(), 3);
    }

    proptest! {
        #[test]
        fn prop_split_bins_cover_and_monotone(
            weights in proptest::collection::vec(0u32..50, 1..64),
            units in 1usize..10,
        ) {
            let b = split_bins_by_weight(&weights, units);
            prop_assert_eq!(b.len(), units + 1);
            prop_assert_eq!(b[0], 0);
            prop_assert_eq!(*b.last().unwrap(), weights.len());
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn prop_split_units_reasonably_balanced(
            weights in proptest::collection::vec(1u32..10, 32..128),
            units in 2usize..8,
        ) {
            // With bounded bin weights no unit exceeds total/units by more
            // than the max bin weight.
            let b = split_bins_by_weight(&weights, units);
            let total: u64 = weights.iter().map(|&w| w as u64).sum();
            let maxbin = *weights.iter().max().unwrap() as u64;
            for w in b.windows(2) {
                let s: u64 = weights[w[0]..w[1]].iter().map(|&x| x as u64).sum();
                prop_assert!(s <= total / units as u64 + maxbin + 1);
            }
        }
    }
}
