//! Binary (de)serialization of the index tables.
//!
//! The paper writes `merHist` and `FASTQPart` to disk in a binary format so
//! they are built once per dataset and reused across runs and machines
//! (§3.1, Table 5). The format here is little-endian, versioned, and
//! self-describing enough to validate `(k, m)` on load.

use crate::fastqpart::{ChunkRecord, FastqPart};
use crate::merhist::MerHist;
use bytes::{Buf, BufMut};
use metaprep_io::ChunkSpec;
use metaprep_kmer::MmerSpace;
use std::io::{self, Read, Write};
use std::path::Path;

const MERHIST_MAGIC: u32 = 0x4D50_4D48; // "MPMH"
const FASTQPART_MAGIC: u32 = 0x4D50_4650; // "MPFP"
const VERSION: u32 = 1;

/// Deserialization failure.
#[derive(Debug)]
pub enum IndexFormatError {
    /// I/O failure.
    Io(io::Error),
    /// Structural problem in the bytes.
    Corrupt(&'static str),
}

impl std::fmt::Display for IndexFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexFormatError::Io(e) => write!(f, "I/O error: {e}"),
            IndexFormatError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for IndexFormatError {}

impl From<io::Error> for IndexFormatError {
    fn from(e: io::Error) -> Self {
        IndexFormatError::Io(e)
    }
}

fn check(cond: bool, what: &'static str) -> Result<(), IndexFormatError> {
    if cond {
        Ok(())
    } else {
        Err(IndexFormatError::Corrupt(what))
    }
}

/// Serialize a [`MerHist`] into bytes.
pub fn merhist_to_bytes(h: &MerHist) -> Vec<u8> {
    let sp = h.space();
    let mut buf = Vec::with_capacity(24 + 4 * h.counts().len());
    buf.put_u32_le(MERHIST_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(sp.k() as u32);
    buf.put_u32_le(sp.m() as u32);
    buf.put_u64_le(h.counts().len() as u64);
    for &c in h.counts() {
        buf.put_u32_le(c);
    }
    buf
}

/// Deserialize a [`MerHist`] from bytes.
pub fn merhist_from_bytes(mut buf: &[u8]) -> Result<MerHist, IndexFormatError> {
    check(buf.remaining() >= 24, "merHist header truncated")?;
    check(buf.get_u32_le() == MERHIST_MAGIC, "bad merHist magic")?;
    check(buf.get_u32_le() == VERSION, "unsupported merHist version")?;
    let k = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;
    check((1..=16).contains(&m) && m <= k, "invalid (k, m)")?;
    let n = buf.get_u64_le() as usize;
    let space = MmerSpace::new(k, m);
    check(n == space.bins(), "bin count mismatch")?;
    check(buf.remaining() == 4 * n, "merHist payload size mismatch")?;
    let counts = (0..n).map(|_| buf.get_u32_le()).collect();
    Ok(MerHist::from_parts(space, counts))
}

/// Serialize a [`FastqPart`] into bytes.
pub fn fastqpart_to_bytes(fp: &FastqPart) -> Vec<u8> {
    let sp = fp.space();
    let bins = sp.bins();
    let mut buf = Vec::with_capacity(28 + fp.len() * (24 + 4 * bins));
    buf.put_u32_le(FASTQPART_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(sp.k() as u32);
    buf.put_u32_le(sp.m() as u32);
    buf.put_u64_le(fp.len() as u64);
    for rec in fp.chunks() {
        buf.put_u64_le(rec.spec.offset);
        buf.put_u64_le(rec.spec.bytes);
        buf.put_u32_le(rec.spec.first_seq);
        buf.put_u32_le(rec.spec.seqs);
        for &c in &rec.hist {
            buf.put_u32_le(c);
        }
    }
    buf
}

/// Deserialize a [`FastqPart`] from bytes.
pub fn fastqpart_from_bytes(mut buf: &[u8]) -> Result<FastqPart, IndexFormatError> {
    check(buf.remaining() >= 24, "FASTQPart header truncated")?;
    check(buf.get_u32_le() == FASTQPART_MAGIC, "bad FASTQPart magic")?;
    check(buf.get_u32_le() == VERSION, "unsupported FASTQPart version")?;
    let k = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;
    check((1..=16).contains(&m) && m <= k, "invalid (k, m)")?;
    let space = MmerSpace::new(k, m);
    let bins = space.bins();
    let n = buf.get_u64_le() as usize;
    check(
        buf.remaining() == n * (24 + 4 * bins),
        "FASTQPart payload size mismatch",
    )?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let spec = ChunkSpec {
            offset: buf.get_u64_le(),
            bytes: buf.get_u64_le(),
            first_seq: buf.get_u32_le(),
            seqs: buf.get_u32_le(),
        };
        let hist = (0..bins).map(|_| buf.get_u32_le()).collect();
        chunks.push(ChunkRecord { spec, hist });
    }
    Ok(FastqPart::from_parts(space, chunks))
}

/// Write a [`MerHist`] to a file.
pub fn write_merhist(path: impl AsRef<Path>, h: &MerHist) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&merhist_to_bytes(h))
}

/// Read a [`MerHist`] from a file.
pub fn read_merhist(path: impl AsRef<Path>) -> Result<MerHist, IndexFormatError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    merhist_from_bytes(&buf)
}

/// Write a [`FastqPart`] to a file.
pub fn write_fastqpart(path: impl AsRef<Path>, fp: &FastqPart) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&fastqpart_to_bytes(fp))
}

/// Read a [`FastqPart`] from a file.
pub fn read_fastqpart(path: impl AsRef<Path>) -> Result<FastqPart, IndexFormatError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    fastqpart_from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_io::ReadStore;

    fn sample_store() -> ReadStore {
        let mut s = ReadStore::new();
        for i in 0..20 {
            let seq: Vec<u8> = b"ACGTTGCAGG"
                .iter()
                .cycle()
                .skip(i % 10)
                .take(35)
                .copied()
                .collect();
            s.push_single(&seq);
        }
        s
    }

    #[test]
    fn merhist_roundtrip() {
        let h = MerHist::build(&sample_store(), 8, 3);
        let bytes = merhist_to_bytes(&h);
        let back = merhist_from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn fastqpart_roundtrip() {
        let fp = FastqPart::build(&sample_store(), 4, 8, 3);
        let bytes = fastqpart_to_bytes(&fp);
        let back = fastqpart_from_bytes(&bytes).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn merhist_rejects_bad_magic() {
        let h = MerHist::build(&sample_store(), 8, 3);
        let mut bytes = merhist_to_bytes(&h);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            merhist_from_bytes(&bytes),
            Err(IndexFormatError::Corrupt(_))
        ));
    }

    #[test]
    fn merhist_rejects_truncation() {
        let h = MerHist::build(&sample_store(), 8, 3);
        let bytes = merhist_to_bytes(&h);
        for cut in [0, 10, bytes.len() - 1] {
            assert!(merhist_from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn fastqpart_rejects_wrong_magic_and_size() {
        let fp = FastqPart::build(&sample_store(), 2, 8, 3);
        let mut bytes = fastqpart_to_bytes(&fp);
        bytes[0] ^= 1;
        assert!(fastqpart_from_bytes(&bytes).is_err());
        let bytes = fastqpart_to_bytes(&fp);
        assert!(fastqpart_from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("metaprep_index_serial_test");
        std::fs::create_dir_all(&dir).unwrap();
        let h = MerHist::build(&sample_store(), 8, 3);
        let fp = FastqPart::build(&sample_store(), 3, 8, 3);
        write_merhist(dir.join("mh.bin"), &h).unwrap();
        write_fastqpart(dir.join("fp.bin"), &fp).unwrap();
        assert_eq!(read_merhist(dir.join("mh.bin")).unwrap(), h);
        assert_eq!(read_fastqpart(dir.join("fp.bin")).unwrap(), fp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_type_confusion_rejected() {
        let h = MerHist::build(&sample_store(), 8, 3);
        let bytes = merhist_to_bytes(&h);
        assert!(fastqpart_from_bytes(&bytes).is_err());
    }
}
