//! The global m-mer prefix histogram (`merHist`, paper §3.1.1).

use metaprep_io::ReadStore;
use metaprep_kmer::{fold_kmer_key, for_each_canonical_kmer, Kmer128, Kmer64, MmerSpace};
use metaprep_norm::{CountMinSketch, SketchParams};

/// Histogram of the length-`m` prefixes of all canonical k-mers of a
/// dataset. `4^m` bins, `u32` counts (the paper stores 32-bit counts; we
/// additionally keep the total as `u64` so overflow of the sum is not a
/// concern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerHist {
    space: MmerSpace,
    counts: Vec<u32>,
    total: u64,
}

impl MerHist {
    /// Build from every read in `store` with k-mer length `k` and prefix
    /// length `m`. Uses the 64-bit k-mer path for `k <= 32`, 128-bit above.
    pub fn build(store: &ReadStore, k: usize, m: usize) -> Self {
        let space = MmerSpace::new(k, m);
        let mut counts = vec![0u32; space.bins()];
        let mut total = 0u64;
        let mut bump = |bin: u32| {
            counts[bin as usize] = counts[bin as usize].saturating_add(1);
            total += 1;
        };
        if k <= 32 {
            for (seq, _) in store.iter() {
                for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| bump(space.bin_of(v as u128)));
            }
        } else {
            for (seq, _) in store.iter() {
                for_each_canonical_kmer::<Kmer128>(seq, k, |v, _| bump(space.bin_of(v)));
            }
        }
        Self {
            space,
            counts,
            total,
        }
    }

    /// [`MerHist::build`] fused with a count-min frequency sketch over the
    /// same canonical k-mer enumeration: one scan feeds both the m-mer
    /// histogram and the presolve sketch, so enabling the probabilistic
    /// memory tier costs no extra pass over the reads. The sketch is keyed
    /// by the packed canonical value for `k <= 32` and by
    /// [`fold_kmer_key`] above that. Sequential like `build`, hence
    /// deterministic for any thread count.
    pub fn build_sketched(
        store: &ReadStore,
        k: usize,
        m: usize,
        params: SketchParams,
    ) -> (Self, CountMinSketch) {
        let space = MmerSpace::new(k, m);
        let mut counts = vec![0u32; space.bins()];
        let mut total = 0u64;
        let mut sketch = params.build();
        if k <= 32 {
            for (seq, _) in store.iter() {
                for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
                    counts[space.bin_of(v as u128) as usize] =
                        counts[space.bin_of(v as u128) as usize].saturating_add(1);
                    total += 1;
                    sketch.add(v);
                });
            }
        } else {
            for (seq, _) in store.iter() {
                for_each_canonical_kmer::<Kmer128>(seq, k, |v, _| {
                    counts[space.bin_of(v) as usize] =
                        counts[space.bin_of(v) as usize].saturating_add(1);
                    total += 1;
                    sketch.add(fold_kmer_key(v));
                });
            }
        }
        (
            Self {
                space,
                counts,
                total,
            },
            sketch,
        )
    }

    /// Parallel build: per-read-range partial histograms merged with a
    /// tree reduction. The paper's IndexCreate is sequential because it
    /// runs once per dataset (§4.3: "can be parallelized in the same
    /// manner" as KmerGen); this is that parallelization.
    pub fn build_parallel(store: &ReadStore, k: usize, m: usize) -> Self {
        use rayon::prelude::*;
        let space = MmerSpace::new(k, m);
        let n = store.len();
        let chunk = n.div_ceil(rayon::current_num_threads().max(1)).max(1);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect();
        let (counts, total) = ranges
            .par_iter()
            .map(|&(lo, hi)| {
                let mut counts = vec![0u32; space.bins()];
                let mut total = 0u64;
                for i in lo..hi {
                    let seq = store.seq(i);
                    let bump = |counts: &mut Vec<u32>, bin: u32| {
                        counts[bin as usize] = counts[bin as usize].saturating_add(1);
                    };
                    if k <= 32 {
                        for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
                            bump(&mut counts, space.bin_of(v as u128));
                            total += 1;
                        });
                    } else {
                        for_each_canonical_kmer::<Kmer128>(seq, k, |v, _| {
                            bump(&mut counts, space.bin_of(v));
                            total += 1;
                        });
                    }
                }
                (counts, total)
            })
            .reduce(
                || (vec![0u32; space.bins()], 0u64),
                |(mut a, ta), (b, tb)| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x = x.saturating_add(*y);
                    }
                    (a, ta + tb)
                },
            );
        Self {
            space,
            counts,
            total,
        }
    }

    /// Construct from raw parts (deserialization, tests).
    pub fn from_parts(space: MmerSpace, counts: Vec<u32>) -> Self {
        assert_eq!(counts.len(), space.bins());
        let total = counts.iter().map(|&c| c as u64).sum();
        Self {
            space,
            counts,
            total,
        }
    }

    /// The `(k, m)` configuration.
    pub fn space(&self) -> MmerSpace {
        self.space
    }

    /// Bin counts (length `4^m`).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of k-mers counted (= number of tuples the KmerGen step
    /// will enumerate, the paper's upper bound `M`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Memory footprint of the table in bytes (the paper's `4^{m+1}` term).
    pub fn table_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u32>()
    }

    /// Sum of counts over the bin range `[lo, hi)`.
    pub fn count_in_bins(&self, lo: usize, hi: usize) -> u64 {
        self.counts[lo..hi].iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(seqs: &[&[u8]]) -> ReadStore {
        let mut s = ReadStore::new();
        for q in seqs {
            s.push_single(q);
        }
        s
    }

    #[test]
    fn total_counts_all_kmers() {
        let s = store_of(&[b"ACGTACGT", b"TTTTT"]);
        let h = MerHist::build(&s, 4, 2);
        // 5 + 2 windows.
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts().iter().map(|&c| c as u64).sum::<u64>(), 7);
    }

    #[test]
    fn bins_receive_canonical_prefixes() {
        // Read "AAAA": canonical of AAAA is AAAA (vs TTTT) -> bin AA = 0.
        let s = store_of(&[b"AAAA"]);
        let h = MerHist::build(&s, 4, 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.total(), 1);

        // Read "TTTT": canonical is AAAA again -> same bin.
        let s = store_of(&[b"TTTT"]);
        let h = MerHist::build(&s, 4, 2);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn n_windows_are_not_counted() {
        let s = store_of(&[b"ACGNACG"]);
        let h = MerHist::build(&s, 3, 1);
        // Runs ACG and ACG -> 1 + 1 windows.
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn k_above_32_uses_wide_path() {
        let seq: Vec<u8> = b"ACGT".iter().cycle().take(80).copied().collect();
        let mut s = ReadStore::new();
        s.push_single(&seq);
        let h = MerHist::build(&s, 63, 4);
        assert_eq!(h.total(), (80 - 63 + 1) as u64);
    }

    #[test]
    fn table_bytes_matches_paper_formula() {
        let s = store_of(&[b"ACGT"]);
        let h = MerHist::build(&s, 4, 3);
        // 4^{m+1} bytes = 4^m bins * 4 bytes.
        assert_eq!(h.table_bytes(), 4usize.pow(3 + 1));
    }

    #[test]
    fn count_in_bins_partial_sums() {
        let space = MmerSpace::new(4, 1);
        let h = MerHist::from_parts(space, vec![1, 2, 3, 4]);
        assert_eq!(h.count_in_bins(0, 4), 10);
        assert_eq!(h.count_in_bins(1, 3), 5);
        assert_eq!(h.count_in_bins(2, 2), 0);
    }

    #[test]
    fn empty_store() {
        let h = MerHist::build(&ReadStore::new(), 4, 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn sketched_build_matches_plain_and_counts_kmers() {
        let s = store_of(&[b"ACGTACGTACGT", b"ACGTACGTACGT", b"TTTTTTTT"]);
        // Small enough that a handful of distinct k-mers registers as a
        // non-zero permille fill ratio.
        let params = SketchParams {
            width: 16,
            depth: 4,
            seed: 3,
        };
        for (k, m) in [(5, 2), (35, 2)] {
            let seq: Vec<u8> = b"ACGT".iter().cycle().take(80).copied().collect();
            let mut wide = ReadStore::new();
            wide.push_single(&seq);
            wide.push_single(&seq);
            let store = if k <= 32 {
                store_of(&[b"ACGTACGTACGT", b"ACGTACGTACGT", b"TTTTTTTT"])
            } else {
                wide
            };
            let plain = MerHist::build(&store, k, m);
            let (sketched, sketch) = MerHist::build_sketched(&store, k, m, params);
            assert_eq!(plain, sketched, "k={k}");
            // Every enumerated k-mer was added to the sketch: its estimate
            // of any repeated canonical k-mer is at least the repeat count.
            assert!(sketch.fill_ratio_permille() > 0, "k={k}");
        }
        // Narrow path keys by the raw packed value: a k-mer seen twice
        // estimates at least 2.
        let (_, sketch) = MerHist::build_sketched(&s, 5, 2, params);
        use metaprep_kmer::Kmer;
        let km = metaprep_kmer::Kmer64::from_codes(&[0, 1, 2, 3, 0]); // ACGTA
        assert!(sketch.estimate(km.canonical_value()) >= 2);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut store = ReadStore::new();
        let mut x = 11u64;
        for _ in 0..300 {
            let seq: Vec<u8> = (0..45)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
                    b"ACGT"[(x >> 61) as usize & 3]
                })
                .collect();
            store.push_single(&seq);
        }
        for (k, m) in [(11, 4), (35, 4)] {
            let seq_h = MerHist::build(&store, k, m);
            let par_h = MerHist::build_parallel(&store, k, m);
            assert_eq!(seq_h, par_h, "k={k} m={m}");
        }
    }
}
