//! Index tables and k-mer range planning (IndexCreate, paper §3.1).
//!
//! METAPREP precomputes two tables per dataset so that every later step is
//! statically load-balanced and synchronization-free:
//!
//! * [`MerHist`] — counts of the length-`m` prefixes of all canonical
//!   k-mers (`4^m` bins of `u32`, §3.1.1). It drives the partitioning of
//!   the k-mer value range into passes × tasks × threads
//!   ([`RangePlan`]).
//! * [`FastqPart`] — the logical chunk table (§3.1.2): per chunk, its byte
//!   location, first read id, size, *and its own m-mer histogram*, from
//!   which exact send/receive buffer sizes and per-thread write offsets are
//!   computed before any tuple is generated.
//!
//! Both tables serialize to a compact binary format ([`serial`]) so they
//! can be built once per dataset and reused across runs — the paper's
//! Table 5 measures exactly this step.

pub mod fastqpart;
pub mod merhist;
pub mod plan;
pub mod serial;
pub mod streaming;

pub use fastqpart::{ChunkRecord, FastqPart};
pub use merhist::MerHist;
pub use plan::{split_bins_by_weight, RangePlan};
pub use streaming::{
    index_fastq_bytes, index_fastq_file_streaming, index_fastq_file_streaming_recorded,
    index_fastq_file_streaming_sketched_recorded, StreamingOptions,
};
