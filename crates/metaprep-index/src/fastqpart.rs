//! The `FASTQPart` chunk table (paper §3.1.2, Figure 2).

use metaprep_io::{chunk_store, ChunkSpec, ReadStore};
use metaprep_kmer::{for_each_canonical_kmer, Kmer128, Kmer64, MmerSpace};

/// One row of the `FASTQPart` table: a logical chunk plus its own m-mer
/// histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Chunk location, size, first read and read count.
    pub spec: ChunkSpec,
    /// m-mer prefix histogram of the canonical k-mers in this chunk.
    pub hist: Vec<u32>,
}

/// The full chunk table for one dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqPart {
    space: MmerSpace,
    chunks: Vec<ChunkRecord>,
}

impl FastqPart {
    /// Build by logically splitting `store` into `c` chunks and histogram-
    /// ming each chunk's canonical k-mers.
    pub fn build(store: &ReadStore, c: usize, k: usize, m: usize) -> Self {
        let space = MmerSpace::new(k, m);
        let chunks = chunk_store(store, c)
            .into_iter()
            .map(|spec| {
                let mut hist = vec![0u32; space.bins()];
                let lo = spec.first_seq as usize;
                let hi = lo + spec.seqs as usize;
                for i in lo..hi {
                    let seq = store.seq(i);
                    if k <= 32 {
                        for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
                            hist[space.bin_of(v as u128) as usize] += 1;
                        });
                    } else {
                        for_each_canonical_kmer::<Kmer128>(seq, k, |v, _| {
                            hist[space.bin_of(v) as usize] += 1;
                        });
                    }
                }
                ChunkRecord { spec, hist }
            })
            .collect();
        Self { space, chunks }
    }

    /// Construct from raw parts (deserialization, tests).
    pub fn from_parts(space: MmerSpace, chunks: Vec<ChunkRecord>) -> Self {
        assert!(chunks.iter().all(|c| c.hist.len() == space.bins()));
        Self { space, chunks }
    }

    /// The `(k, m)` configuration.
    pub fn space(&self) -> MmerSpace {
        self.space
    }

    /// Chunk rows.
    pub fn chunks(&self) -> &[ChunkRecord] {
        &self.chunks
    }

    /// Number of chunks (`C`).
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True if the table has no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Tuples chunk `c` will generate for the m-mer bin range `[lo, hi)` —
    /// the quantity summed to precompute send counts and thread offsets
    /// (paper §3.2.2 / §3.3).
    pub fn chunk_count_in_bins(&self, c: usize, lo: usize, hi: usize) -> u64 {
        self.chunks[c].hist[lo..hi].iter().map(|&x| x as u64).sum()
    }

    /// Total tuples across all chunks (equals the merHist total).
    pub fn total(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| c.hist.iter().map(|&x| x as u64).sum::<u64>())
            .sum()
    }

    /// Table size in bytes (the paper's `4^{m+1} * C` term plus the fixed
    /// per-chunk fields).
    pub fn table_bytes(&self) -> usize {
        self.chunks.len()
            * (std::mem::size_of::<ChunkSpec>() + self.space.bins() * std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merhist::MerHist;

    fn store_n(n: usize) -> ReadStore {
        let mut s = ReadStore::new();
        for i in 0..n {
            let seq: Vec<u8> = b"ACGTTGCA"
                .iter()
                .cycle()
                .skip(i % 8)
                .take(40)
                .copied()
                .collect();
            s.push_single(&seq);
        }
        s
    }

    #[test]
    fn chunk_histograms_sum_to_global() {
        let store = store_n(30);
        let fp = FastqPart::build(&store, 4, 6, 3);
        let mh = MerHist::build(&store, 6, 3);
        assert_eq!(fp.total(), mh.total());
        // Bin-wise: sum of chunk hists equals global hist.
        for b in 0..mh.space().bins() {
            let sum: u64 = (0..fp.len()).map(|c| fp.chunks()[c].hist[b] as u64).sum();
            assert_eq!(sum, mh.counts()[b] as u64, "bin {b}");
        }
    }

    #[test]
    fn chunk_specs_cover_all_reads() {
        let store = store_n(25);
        let fp = FastqPart::build(&store, 3, 6, 2);
        let total: u32 = fp.chunks().iter().map(|c| c.spec.seqs).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn count_in_bins_full_range_is_chunk_total() {
        let store = store_n(10);
        let fp = FastqPart::build(&store, 2, 6, 2);
        for c in 0..fp.len() {
            let full = fp.chunk_count_in_bins(c, 0, fp.space().bins());
            let direct: u64 = fp.chunks()[c].hist.iter().map(|&x| x as u64).sum();
            assert_eq!(full, direct);
        }
    }

    #[test]
    fn single_chunk_table() {
        let store = store_n(5);
        let fp = FastqPart::build(&store, 1, 6, 2);
        assert_eq!(fp.len(), 1);
        assert_eq!(fp.chunks()[0].spec.first_seq, 0);
    }

    #[test]
    fn empty_store_empty_table() {
        let fp = FastqPart::build(&ReadStore::new(), 4, 6, 2);
        assert!(fp.is_empty());
        assert_eq!(fp.total(), 0);
    }

    #[test]
    fn table_bytes_scale_with_chunks() {
        let store = store_n(40);
        let a = FastqPart::build(&store, 2, 6, 3);
        let b = FastqPart::build(&store, 4, 6, 3);
        assert!(b.table_bytes() >= 2 * a.table_bytes() - 1);
    }
}
