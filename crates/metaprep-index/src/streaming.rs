//! Streaming, thread-parallel IndexCreate (paper §3.1 at file scale).
//!
//! [`index_fastq_bytes`] is the in-memory reference: chunk the whole byte
//! slice, then histogram each chunk sequentially — O(file) memory, exactly
//! what the file pipeline used to do after `std::fs::read`.
//!
//! [`index_fastq_file_streaming`] produces byte-identical `MerHist` and
//! `FastqPart` tables without ever materializing the file:
//!
//! 1. a [`StreamChunker`] locates chunk boundaries by seeking to byte
//!    targets and probing bounded windows (O(window) memory);
//! 2. per-chunk m-mer histogramming is dispatched over a rayon thread
//!    pool, each worker reading its chunk via a byte-range read into a
//!    thread-recycled buffer.
//!
//! Peak memory is O(threads × max-chunk-bytes + chunks × 4^m), never
//! O(file) — the bound the `index_create` bench (`BENCH_index.json`)
//! demonstrates with a counting allocator. Equivalence of the two paths is
//! property-tested in `tests/streaming_matches_inmemory.rs`.

use crate::fastqpart::ChunkRecord;
use crate::{FastqPart, MerHist};
use metaprep_io::stream::{StreamChunk, StreamChunker};
use metaprep_io::{count_record_starts, count_records, parse_fastq, ChunkSpec, FastqError};
use metaprep_kmer::{fold_kmer_key, for_each_canonical_kmer, Kmer, Kmer128, Kmer64, MmerSpace};
use metaprep_norm::{CountMinSketch, SketchParams};
use metaprep_obs::{CounterKind, NoopRecorder, Recorder, SpanEvent};
use rayon::prelude::*;
use std::cell::RefCell;
use std::fs::File;
use std::path::Path;

/// Options for [`index_fastq_file_streaming`].
#[derive(Copy, Clone, Debug, Default)]
pub struct StreamingOptions {
    /// Probe/read window in bytes (0 = `metaprep_io::DEFAULT_INDEX_WINDOW`).
    pub window: usize,
    /// Threads for per-chunk histogramming (0 = the rayon default).
    pub threads: usize,
}

thread_local! {
    // One recycled read buffer per worker thread: a thread histograms its
    // chunks one after another into the same allocation, so in-flight
    // bytes are bounded by threads × max-chunk-size.
    static CHUNK_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Histogram the canonical k-mers of every sequence in `store` into
/// `space`'s m-mer bins (the per-chunk histogram of `FASTQPart`).
///
/// `for_each_canonical_kmer` is the runtime-dispatched hot path: on
/// AVX2/NEON hosts each read is classified and 2-bit-packed by the
/// vectorized kernels in `metaprep_kmer::simd` before the canonical
/// values roll over the packed lanes (`METAPREP_SIMD=scalar` pins the
/// scalar reference; both arms are differentially tested there and in
/// the scalar-forced CI job).
fn hist_of_store(store: &metaprep_io::ReadStore, space: MmerSpace, k: usize) -> Vec<u32> {
    hist_of_store_sketched(store, space, k, None)
}

/// [`hist_of_store`] with an optional count-min sketch fed from the same
/// canonical-k-mer enumeration: the presolve frequency sketch rides the
/// scan that already exists instead of costing a second pass. Keys are the
/// packed canonical value for `k <= 32` and [`fold_kmer_key`] above that —
/// the same derivation KmerGen's `HighFreqFilter` probes with.
fn hist_of_store_sketched(
    store: &metaprep_io::ReadStore,
    space: MmerSpace,
    k: usize,
    mut sketch: Option<&mut CountMinSketch>,
) -> Vec<u32> {
    let mut hist = vec![0u32; space.bins()];
    for (seq, _) in store.iter() {
        if k <= 32 {
            for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
                hist[space.bin_of(Kmer64::repr_to_u128(v)) as usize] += 1;
                if let Some(s) = sketch.as_deref_mut() {
                    s.add(v);
                }
            });
        } else {
            for_each_canonical_kmer::<Kmer128>(seq, k, |v, _| {
                hist[space.bin_of(v) as usize] += 1;
                if let Some(s) = sketch.as_deref_mut() {
                    s.add(fold_kmer_key(v));
                }
            });
        }
    }
    hist
}

/// Shift a malformed-record index so per-chunk errors report file-global
/// record numbers.
fn offset_record(e: FastqError, by: u64) -> FastqError {
    match e {
        FastqError::Malformed { record, what } => FastqError::Malformed {
            record: record + by as usize,
            what,
        },
        other => other,
    }
}

fn fit_u32(v: u64, what: &str) -> Result<u32, FastqError> {
    u32::try_from(v).map_err(|_| FastqError::Malformed {
        record: usize::MAX,
        what: format!("{what} {v} exceeds the u32 id space"),
    })
}

/// Assemble the final tables from per-chunk `(spec, hist)` rows: the global
/// merHist is the bin-wise sum of the chunk histograms, so the two tables
/// are consistent by construction.
fn assemble(
    space: MmerSpace,
    rows: Vec<(ChunkSpec, Vec<u32>)>,
) -> Result<(MerHist, FastqPart, u64), FastqError> {
    let mut global = vec![0u32; space.bins()];
    let mut chunks = Vec::with_capacity(rows.len());
    let mut total_seqs = 0u64;
    for (spec, hist) in rows {
        for (g, &h) in global.iter_mut().zip(&hist) {
            *g += h;
        }
        total_seqs += spec.seqs as u64;
        chunks.push(ChunkRecord { spec, hist });
    }
    Ok((
        MerHist::from_parts(space, global),
        FastqPart::from_parts(space, chunks),
        total_seqs,
    ))
}

/// In-memory reference indexer: identical tables computed from the whole
/// file bytes — O(file) memory. Kept as the differential-testing oracle
/// for the streaming path and as the slurp baseline in the bench.
pub fn index_fastq_bytes(
    bytes: &[u8],
    paired: bool,
    c: usize,
    k: usize,
    m: usize,
) -> Result<(MerHist, FastqPart, u64), FastqError> {
    let specs = if paired {
        metaprep_io::chunk_fastq_bytes_paired(bytes, c)?
    } else {
        metaprep_io::chunk_fastq_bytes(bytes, c)?
    };
    let space = MmerSpace::new(k, m);
    let mut rows = Vec::with_capacity(specs.len());
    for spec in specs {
        let lo = spec.offset as usize;
        let store = parse_fastq(&bytes[lo..lo + spec.bytes as usize], false)
            .map_err(|e| offset_record(e, spec.first_seq as u64))?;
        rows.push((spec, hist_of_store(&store, space, k)));
    }
    assemble(space, rows)
}

fn pool_of(threads: usize) -> rayon::ThreadPool {
    let n = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        // EXPECT: pool build fails only when the OS cannot spawn threads, unrecoverable for the streaming planner.
        .expect("vendored rayon pool build cannot fail")
}

/// Count the records of each byte range in parallel (pass A of the paired
/// flow). Each worker reads its range into the thread-local buffer.
fn par_count_records(
    path: &Path,
    ranges: &[(u64, u64)],
    pool: &rayon::ThreadPool,
) -> Result<Vec<u64>, FastqError> {
    let results: Vec<Result<u64, FastqError>> = pool.install(|| {
        ranges
            .par_iter()
            .map(|&(lo, hi)| {
                CHUNK_BUF.with(|b| {
                    let mut buf = b.borrow_mut();
                    let mut f = File::open(path)?;
                    StreamChunker::read_range_into(&mut f, lo, hi, &mut buf)?;
                    Ok(count_record_starts(&buf))
                })
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Parse + histogram each resolved chunk in parallel (the KmerGen-style
/// fan-out of IndexCreate). `paired` chunks already know their record
/// count (from pass A) and are validated against it; unpaired chunks are
/// counted here with the strict 4-line counter, exactly as
/// `chunk_fastq_bytes` does in memory.
fn chunk_hist(
    path: &Path,
    ch: &StreamChunk,
    space: MmerSpace,
    k: usize,
    paired: bool,
    sketch: Option<&mut CountMinSketch>,
) -> Result<(u64, Vec<u32>), FastqError> {
    CHUNK_BUF.with(|b| {
        let mut buf = b.borrow_mut();
        let mut f = File::open(path)?;
        StreamChunker::read_range_into(&mut f, ch.offset, ch.offset + ch.bytes, &mut buf)?;
        let n = if paired {
            ch.seqs
        } else {
            count_records(&buf).map_err(|e| offset_record(e, ch.first_seq))? as u64
        };
        let store = parse_fastq(&buf[..], false).map_err(|e| offset_record(e, ch.first_seq))?;
        if store.len() as u64 != n {
            return Err(FastqError::Malformed {
                record: ch.first_seq as usize + store.len(),
                what: format!(
                    "chunk at byte {} parsed {} records but the chunker counted {n}",
                    ch.offset,
                    store.len()
                ),
            });
        }
        Ok((n, hist_of_store_sketched(&store, space, k, sketch)))
    })
}

fn par_histogram(
    path: &Path,
    chunks: &[StreamChunk],
    space: MmerSpace,
    k: usize,
    paired: bool,
    pool: &rayon::ThreadPool,
) -> Result<Vec<(u64, Vec<u32>)>, FastqError> {
    let results: Vec<Result<(u64, Vec<u32>), FastqError>> = pool.install(|| {
        chunks
            .par_iter()
            .map(|ch| chunk_hist(path, ch, space, k, paired, None))
            .collect()
    });
    results.into_iter().collect()
}

/// [`par_histogram`] fused with the presolve frequency sketch: chunks are
/// dealt round-robin into one share per pool worker, each share is scanned
/// sequentially into its own sketch (conservative updates need exclusive
/// counters), and the worker sketches are fold-merged at the end. The
/// share count comes from the pool's configured thread count, so for an
/// explicitly-sized pool the merged sketch is a pure function of the input
/// and the thread *setting*, not of scheduling.
#[allow(clippy::type_complexity)]
fn par_histogram_sketched(
    path: &Path,
    chunks: &[StreamChunk],
    space: MmerSpace,
    k: usize,
    paired: bool,
    pool: &rayon::ThreadPool,
    params: SketchParams,
) -> Result<(Vec<(u64, Vec<u32>)>, CountMinSketch), FastqError> {
    let workers = pool.current_num_threads().max(1);
    let shares: Vec<Vec<usize>> = (0..workers.min(chunks.len()).max(1))
        .map(|w| {
            (w..chunks.len())
                .step_by(workers.min(chunks.len()).max(1))
                .collect()
        })
        .collect();
    type ShareOut = (Vec<(usize, u64, Vec<u32>)>, CountMinSketch);
    let results: Vec<Result<ShareOut, FastqError>> = pool.install(|| {
        shares
            .par_iter()
            .map(|idxs| {
                let mut sketch = params.build();
                let mut rows = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    let (n, hist) =
                        chunk_hist(path, &chunks[i], space, k, paired, Some(&mut sketch))?;
                    rows.push((i, n, hist));
                }
                Ok((rows, sketch))
            })
            .collect()
    });
    let mut merged = params.build();
    let mut rows: Vec<Option<(u64, Vec<u32>)>> = vec![None; chunks.len()];
    for r in results {
        let (share_rows, sketch) = r?;
        // Saturating counter addition is associative and commutative, so
        // the fold order cannot change the merged sketch.
        merged.merge(&sketch);
        for (i, n, hist) in share_rows {
            rows[i] = Some((n, hist));
        }
    }
    let rows = rows
        .into_iter()
        .map(|r| {
            // UNWRAP: the shares above cover every chunk index exactly once.
            r.unwrap()
        })
        .collect();
    Ok((rows, merged))
}

/// Streaming, thread-parallel IndexCreate over a FASTQ file. Produces the
/// same `(MerHist, FastqPart, total_seqs)` as [`index_fastq_bytes`] on the
/// file's contents, with peak memory O(threads × chunk + histograms).
pub fn index_fastq_file_streaming(
    path: impl AsRef<Path>,
    paired: bool,
    c: usize,
    k: usize,
    m: usize,
    opts: StreamingOptions,
) -> Result<(MerHist, FastqPart, u64), FastqError> {
    index_fastq_file_streaming_recorded(path, paired, c, k, m, opts, &NoopRecorder::new())
}

/// [`index_fastq_file_streaming`] with telemetry: the chunk-boundary scan
/// and the parallel histogram fan-out become sub-spans (`index-chunking`,
/// `index-histogram`, attributed to task 0 — IndexCreate runs on the
/// driver thread before the cluster exists, so events go through the
/// recorder's driver-side API), and the number of records streamed lands
/// in the [`CounterKind::ChunkRecordsStreamed`] counter.
pub fn index_fastq_file_streaming_recorded(
    path: impl AsRef<Path>,
    paired: bool,
    c: usize,
    k: usize,
    m: usize,
    opts: StreamingOptions,
    rec: &dyn Recorder,
) -> Result<(MerHist, FastqPart, u64), FastqError> {
    let (mh, fp, total, _) =
        index_fastq_file_streaming_sketched_recorded(path, paired, c, k, m, opts, None, rec)?;
    Ok((mh, fp, total))
}

/// [`index_fastq_file_streaming_recorded`] that optionally builds the
/// presolve count-min sketch during the same parallel histogram fan-out
/// (`sketch_params = Some(..)`), returning it alongside the tables. The
/// tables are byte-identical whether or not sketching is on; the sketch
/// simply rides the scan.
#[allow(clippy::too_many_arguments)]
pub fn index_fastq_file_streaming_sketched_recorded(
    path: impl AsRef<Path>,
    paired: bool,
    c: usize,
    k: usize,
    m: usize,
    opts: StreamingOptions,
    sketch_params: Option<SketchParams>,
    rec: &dyn Recorder,
) -> Result<(MerHist, FastqPart, u64, Option<CountMinSketch>), FastqError> {
    let path = path.as_ref();
    let space = MmerSpace::new(k, m);
    let clock = rec.clock();
    let span = |name: &'static str, start_ns: u64, end_ns: u64| {
        if rec.enabled() {
            rec.record_span(SpanEvent {
                task: 0,
                name,
                pass: None,
                detail: None,
                start_ns,
                end_ns,
                // Driver-side span, outside any task's causal timeline.
                lamport: 0,
            });
        }
    };
    let mut chunker = StreamChunker::open(path, opts.window)?;
    let pool = pool_of(opts.threads);

    let t0 = clock.now_ns();
    let chunks: Vec<StreamChunk> = if paired {
        // Two passes: count records per tentative range (parallel), then
        // stitch pair-aligned boundaries at the record-index level.
        let tentative = chunker.tentative_ranges_paired(c)?;
        let counts = par_count_records(path, &tentative, &pool)?;
        chunker.resolve_paired(&tentative, &counts)?
    } else {
        chunker
            .ranges(c)?
            .into_iter()
            .map(|(lo, hi)| StreamChunk {
                offset: lo,
                bytes: hi - lo,
                first_seq: 0, // filled in after the parallel count below
                seqs: 0,
            })
            .collect()
    };
    drop(chunker);
    span("index-chunking", t0, clock.now_ns());

    let t0 = clock.now_ns();
    let (per_chunk, sketch) = match sketch_params {
        Some(params) => {
            let (rows, sk) =
                par_histogram_sketched(path, &chunks, space, k, paired, &pool, params)?;
            (rows, Some(sk))
        }
        None => (par_histogram(path, &chunks, space, k, paired, &pool)?, None),
    };
    span("index-histogram", t0, clock.now_ns());

    // Sequential stitch: prefix-sum first_seq (unpaired) and narrow to the
    // u32 id space used by `ChunkSpec`.
    let mut rows = Vec::with_capacity(chunks.len());
    let mut first = 0u64;
    for (ch, (n, hist)) in chunks.iter().zip(per_chunk) {
        let first_seq = if paired { ch.first_seq } else { first };
        let spec = ChunkSpec {
            offset: ch.offset,
            bytes: ch.bytes,
            first_seq: fit_u32(first_seq, "first sequence id")?,
            seqs: fit_u32(n, "chunk record count")?,
        };
        first = first_seq + n;
        rows.push((spec, hist));
    }
    fit_u32(first, "total sequence count")?;
    let (merhist, fastqpart, total_seqs) = assemble(space, rows)?;
    if rec.enabled() {
        rec.record_counter(0, CounterKind::ChunkRecordsStreamed, total_seqs);
    }
    Ok((merhist, fastqpart, total_seqs, sketch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_io::{write_fastq, ReadStore};

    fn sample_store(n: usize) -> ReadStore {
        let mut s = ReadStore::new();
        let mut x = 7u64;
        for _ in 0..n {
            let seq: Vec<u8> = (0..30 + (x % 25) as usize)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                    b"ACGT"[(x >> 61) as usize & 3]
                })
                .collect();
            s.push_single(&seq);
        }
        s
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("metaprep_index_streaming_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn streaming_matches_reference_unpaired() {
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &sample_store(37)).unwrap();
        let path = write_temp("unpaired.fastq", &bytes);
        for c in [1, 3, 8] {
            let want = index_fastq_bytes(&bytes, false, c, 11, 4).unwrap();
            for (window, threads) in [(17, 1), (64, 3), (0, 0)] {
                let got = index_fastq_file_streaming(
                    &path,
                    false,
                    c,
                    11,
                    4,
                    StreamingOptions { window, threads },
                )
                .unwrap();
                assert_eq!(got.0, want.0, "merhist c={c} window={window}");
                assert_eq!(got.1, want.1, "fastqpart c={c} window={window}");
                assert_eq!(got.2, want.2, "total c={c} window={window}");
            }
        }
    }

    #[test]
    fn streaming_matches_reference_paired() {
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &sample_store(24)).unwrap();
        let path = write_temp("paired.fastq", &bytes);
        for c in [1, 2, 5, 9] {
            let want = index_fastq_bytes(&bytes, true, c, 11, 4).unwrap();
            let got = index_fastq_file_streaming(
                &path,
                true,
                c,
                11,
                4,
                StreamingOptions {
                    window: 19,
                    threads: 2,
                },
            )
            .unwrap();
            assert_eq!(got.0, want.0, "merhist c={c}");
            assert_eq!(got.1, want.1, "fastqpart c={c}");
            assert_eq!(got.2, want.2, "total c={c}");
        }
    }

    #[test]
    fn sketched_streaming_matches_unsketched_tables() {
        let store = sample_store(31);
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &store).unwrap();
        let path = write_temp("sketched.fastq", &bytes);
        let params = SketchParams {
            width: 1 << 12,
            depth: 3,
            seed: 21,
        };
        for threads in [1, 3] {
            let opts = StreamingOptions { window: 0, threads };
            let (mh, fp, total) = index_fastq_file_streaming(&path, false, 6, 11, 4, opts).unwrap();
            let (smh, sfp, stotal, sketch) = index_fastq_file_streaming_sketched_recorded(
                &path,
                false,
                6,
                11,
                4,
                opts,
                Some(params),
                &NoopRecorder::new(),
            )
            .unwrap();
            assert_eq!(mh, smh, "threads={threads}");
            assert_eq!(fp, sfp, "threads={threads}");
            assert_eq!(total, stotal, "threads={threads}");
            let sketch = sketch.unwrap();
            // The fused sketch saw exactly the k-mers the histogram counted:
            // estimates never under-count, and with one worker the stream
            // order matches the in-memory fused build exactly.
            assert!(sketch.fill_ratio_permille() > 0);
            if threads == 1 {
                let (_, reference) = MerHist::build_sketched(&store, 11, 4, params);
                let mut probe = 1u64;
                for _ in 0..64 {
                    probe = probe.wrapping_mul(6364136223846793005).wrapping_add(7);
                    assert_eq!(
                        sketch.estimate(probe & ((1 << 22) - 1)),
                        reference.estimate(probe & ((1 << 22) - 1))
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_rejects_odd_paired_file() {
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &sample_store(5)).unwrap();
        let path = write_temp("odd.fastq", &bytes);
        assert!(
            index_fastq_file_streaming(&path, true, 2, 11, 4, StreamingOptions::default()).is_err()
        );
    }

    #[test]
    fn streaming_rejects_malformed_file() {
        let path = write_temp("blank.fastq", b"@r0\nACGT\n+\nIIII\n\n");
        assert!(
            index_fastq_file_streaming(&path, false, 2, 11, 4, StreamingOptions::default())
                .is_err()
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = index_fastq_file_streaming(
            "/nonexistent/reads.fastq",
            false,
            2,
            11,
            4,
            StreamingOptions::default(),
        );
        assert!(matches!(r, Err(FastqError::Io(_))));
    }

    #[test]
    fn empty_file_yields_empty_tables() {
        let path = write_temp("empty.fastq", b"");
        for paired in [false, true] {
            let (mh, fp, total) =
                index_fastq_file_streaming(&path, paired, 4, 11, 4, StreamingOptions::default())
                    .unwrap();
            assert_eq!(mh.total(), 0, "paired={paired}");
            assert!(fp.is_empty(), "paired={paired}");
            assert_eq!(total, 0, "paired={paired}");
        }
    }
}
