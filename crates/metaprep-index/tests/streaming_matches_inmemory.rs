//! Property-based differential test: the streaming file indexer must
//! produce byte-identical index tables (`MerHist`, `FastqPart`, sequence
//! count) to the in-memory reference path for random FASTQ inputs —
//! paired and unpaired, with and without a trailing newline, including
//! N bases, across probe windows small enough to force the chunker's
//! window-doubling path.

use metaprep_index::{index_fastq_bytes, index_fastq_file_streaming, StreamingOptions};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Serialize a read list as strict 4-line FASTQ records.
fn fastq_bytes(reads: &[Vec<u8>], trailing_newline: bool) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, seq) in reads.iter().enumerate() {
        out.extend_from_slice(format!("@r{i}\n").as_bytes());
        out.extend_from_slice(seq);
        out.push(b'\n');
        out.extend_from_slice(b"+\n");
        out.extend(std::iter::repeat_n(b'J', seq.len()));
        out.push(b'\n');
    }
    if !trailing_newline && out.ends_with(b"\n") {
        out.pop();
    }
    out
}

/// Unique temp path per proptest case (cases run within one process).
fn temp_fastq(bytes: &[u8]) -> std::path::PathBuf {
    // ORDERING: Relaxed suffices — the counter only needs uniqueness, no
    // ordering with other memory operations.
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "metaprep_stream_prop_{}_{n}.fastq",
        std::process::id()
    ));
    std::fs::write(&path, bytes).expect("write temp FASTQ");
    path
}

fn base() -> impl Strategy<Value = u8> {
    proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N'])
}

proptest! {
    #[test]
    fn prop_streaming_matches_in_memory(
        mut reads in proptest::collection::vec(
            proptest::collection::vec(base(), 1..60), 0..40),
        c in 1usize..10,
        k in proptest::sample::select(vec![5usize, 21, 33]),
        paired in proptest::bool::ANY,
        trailing_newline in proptest::bool::ANY,
    ) {
        if paired && reads.len() % 2 == 1 {
            reads.pop();
        }
        let m = 4;
        let bytes = fastq_bytes(&reads, trailing_newline);
        let path = temp_fastq(&bytes);

        let want = index_fastq_bytes(&bytes, paired, c, k, m)
            .expect("in-memory reference indexing");

        // 16 is the chunker's minimum window; 17 exercises odd, repeatedly
        // doubled windows; 4096 usually covers the whole file in one probe.
        for window in [16usize, 17, 4096] {
            let opts = StreamingOptions { window, threads: 2 };
            let got = index_fastq_file_streaming(&path, paired, c, k, m, opts)
                .expect("streaming indexing");
            prop_assert_eq!(&got.0, &want.0, "MerHist, window {}", window);
            prop_assert_eq!(&got.1, &want.1, "FastqPart, window {}", window);
            prop_assert_eq!(got.2, want.2, "total_seqs, window {}", window);
        }
        std::fs::remove_file(&path).ok();
    }
}
