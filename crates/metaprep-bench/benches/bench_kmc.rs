//! KMC2-style counter stage costs (Figure 9's underlying measurement).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_bench::dataset;
use metaprep_kmc::{count_kmers, KmcConfig};
use metaprep_synth::DatasetId;

fn bench(c: &mut Criterion) {
    let data = dataset(DatasetId::Hg, 0.2);
    let bases = data.reads.total_bases() as u64;

    let mut g = c.benchmark_group("kmc");
    g.throughput(Throughput::Bytes(bases));
    g.sample_size(10);

    for (name, bins) in [("bins_64", 64usize), ("bins_512", 512)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                count_kmers(
                    &data.reads,
                    KmcConfig {
                        k: 27,
                        minimizer_len: 7,
                        bins,
                    },
                )
                .distinct_kmers
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
