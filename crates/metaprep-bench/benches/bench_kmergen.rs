//! Ablation: scalar vs 4-lane canonical k-mer generation (paper §3.2.1),
//! at k = 27 (64-bit path) and k = 63 (128-bit path).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use metaprep_kmer::{for_each_canonical_kmer, lanes::for_each_canonical_kmer_x4, Kmer128, Kmer64};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn reads(n: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(1);
    (0..n)
        .map(|_| (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    let data = reads(2000, 150);
    let bases: u64 = data.iter().map(|r| r.len() as u64).sum();

    let mut g = c.benchmark_group("kmergen");
    g.throughput(Throughput::Bytes(bases));
    g.sample_size(10);

    g.bench_function("scalar_k27", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &data {
                for_each_canonical_kmer::<Kmer64>(r, 27, |v, _| acc ^= v);
            }
            black_box(acc)
        })
    });
    g.bench_function("x4_k27", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &data {
                for_each_canonical_kmer_x4::<Kmer64>(r, 27, |v, _| acc ^= v);
            }
            black_box(acc)
        })
    });
    g.bench_function("scalar_k63", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for r in &data {
                for_each_canonical_kmer::<Kmer128>(r, 63, |v, _| acc ^= v);
            }
            black_box(acc)
        })
    });
    g.bench_function("x4_k63", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for r in &data {
                for_each_canonical_kmer_x4::<Kmer128>(r, 63, |v, _| acc ^= v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
