//! Ablation: radix digit width (paper §3.4 prefers 8-bit passes), plus
//! LocalSort vs the parallel LSB comparator vs std::sort.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_kmer::KmerReadTuple;
use metaprep_sort::{local_sort, lsb_radix_sort, parallel_lsb_sort};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tuples(n: usize) -> Vec<KmerReadTuple> {
    let mut rng = SmallRng::seed_from_u64(2);
    (0..n)
        .map(|i| KmerReadTuple::new(rng.gen::<u64>() >> 10, i as u32))
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let input = tuples(n);

    let mut g = c.benchmark_group("sort");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);

    for bits in [8u32, 11, 16] {
        g.bench_function(format!("serial_radix_{bits}bit"), |b| {
            b.iter_batched(
                || (input.clone(), vec![KmerReadTuple::default(); n]),
                |(mut d, mut s)| lsb_radix_sort(&mut d, &mut s, bits, 54),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.bench_function("local_sort_4ranges", |b| {
        b.iter_batched(
            || (input.clone(), vec![KmerReadTuple::default(); n]),
            |(mut d, mut s)| local_sort(&mut d, &mut s, 4, 8, 54),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("parallel_lsb", |b| {
        b.iter_batched(
            || (input.clone(), vec![KmerReadTuple::default(); n]),
            |(mut d, mut s)| parallel_lsb_sort(&mut d, &mut s, 8, 54),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("std_sort_unstable", |b| {
        b.iter_batched(
            || input.clone(),
            |mut d| d.sort_unstable_by_key(|t| t.kmer),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
