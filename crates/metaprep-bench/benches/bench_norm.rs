//! Digital normalization and count-min sketch throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_bench::dataset;
use metaprep_norm::{normalize, CountMinSketch, NormalizeConfig};
use metaprep_synth::DatasetId;

fn bench(c: &mut Criterion) {
    let data = dataset(DatasetId::Mm, 0.15);
    let bases = data.reads.total_bases() as u64;

    let mut g = c.benchmark_group("norm");
    g.throughput(Throughput::Bytes(bases));
    g.sample_size(10);

    g.bench_function("normalize_target20", |b| {
        b.iter(|| {
            normalize(
                &data.reads,
                NormalizeConfig {
                    k: 20,
                    target: 20,
                    sketch_width: 1 << 20,
                    sketch_depth: 4,
                    seed: 1,
                },
            )
            .kept
        })
    });
    g.finish();

    let mut g = c.benchmark_group("countmin");
    g.throughput(Throughput::Elements(1 << 16));
    g.sample_size(10);
    g.bench_function("add_estimate", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::new(1 << 16, 4, 7);
            let mut acc = 0u64;
            for i in 0..(1u64 << 16) {
                s.add(i.wrapping_mul(0x9E3779B97F4A7C15));
                acc += s.estimate(i);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
