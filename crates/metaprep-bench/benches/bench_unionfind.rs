//! Ablation: concurrent union-find (CAS + buffered verification, paper
//! Algorithm 1) vs the mutex-protected baseline vs sequential union-find
//! vs Shiloach–Vishkin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_cc::locked::locked_components;
use metaprep_cc::{shiloach_vishkin, ConcurrentDisjointSet, DisjointSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn graph(n: usize, m: usize) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(3);
    (0..m)
        .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 200_000;
    let edges = graph(n, 400_000);

    let mut g = c.benchmark_group("unionfind");
    g.throughput(Throughput::Elements(edges.len() as u64));
    g.sample_size(10);

    g.bench_function("concurrent_cas", |b| {
        b.iter(|| {
            let ds = ConcurrentDisjointSet::new(n);
            ds.process_edges_parallel(&edges);
            ds.to_component_array()[0]
        })
    });
    g.bench_function("locked_mutex", |b| {
        b.iter(|| locked_components(n, &edges)[0])
    });
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut ds = DisjointSet::new(n);
            for &(u, v) in &edges {
                ds.union(u, v);
            }
            ds.find(0)
        })
    });
    g.bench_function("shiloach_vishkin", |b| {
        b.iter(|| shiloach_vishkin(n, &edges).iterations)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
