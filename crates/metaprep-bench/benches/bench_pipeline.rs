//! End-to-end pipeline benchmark (small HG stand-in), including the
//! LocalCC-Opt ablation (paper §3.5.1) on a multi-pass configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_bench::dataset;
use metaprep_core::{Pipeline, PipelineConfig};
use metaprep_synth::DatasetId;

fn bench(c: &mut Criterion) {
    let data = dataset(DatasetId::Hg, 0.2);
    let bases = data.reads.total_bases() as u64;

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(bases));
    g.sample_size(10);

    g.bench_function("hg_1task", |b| {
        let cfg = PipelineConfig::builder().k(27).build();
        b.iter(|| {
            Pipeline::new(cfg.clone())
                .run_reads(&data.reads)
                .unwrap()
                .components
                .components
        })
    });
    g.bench_function("hg_4tasks_2passes", |b| {
        let cfg = PipelineConfig::builder().k(27).tasks(4).passes(2).build();
        b.iter(|| {
            Pipeline::new(cfg.clone())
                .run_reads(&data.reads)
                .unwrap()
                .components
                .components
        })
    });
    g.bench_function("hg_4passes_ccopt_on", |b| {
        let cfg = PipelineConfig::builder()
            .k(27)
            .passes(4)
            .cc_opt(true)
            .build();
        b.iter(|| {
            Pipeline::new(cfg.clone())
                .run_reads(&data.reads)
                .unwrap()
                .tuples_total
        })
    });
    g.bench_function("hg_4passes_ccopt_off", |b| {
        let cfg = PipelineConfig::builder()
            .k(27)
            .passes(4)
            .cc_opt(false)
            .build();
        b.iter(|| {
            Pipeline::new(cfg.clone())
                .run_reads(&data.reads)
                .unwrap()
                .tuples_total
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
