//! Ablation: the P-stage all-to-all schedule (paper §3.3) vs the naive
//! fire-everything-at-once exchange.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metaprep_dist::collectives::{alltoall, alltoall_naive};
use metaprep_dist::{run_cluster, ClusterConfig};

fn bench(c: &mut Criterion) {
    let p = 8usize;
    let per_buf = 64 * 1024usize; // u64s per destination buffer

    let mut g = c.benchmark_group("alltoall");
    g.throughput(Throughput::Bytes((p * p * per_buf * 8) as u64));
    g.sample_size(10);

    g.bench_function("staged", |b| {
        b.iter(|| {
            run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(p, 1), |ctx| {
                let outgoing: Vec<Vec<u64>> =
                    (0..ctx.size()).map(|q| vec![q as u64; per_buf]).collect();
                let incoming = alltoall(ctx, outgoing);
                incoming.iter().map(|v| v.len()).sum::<usize>()
            })
            .results[0]
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(p, 1), |ctx| {
                let outgoing: Vec<Vec<u64>> =
                    (0..ctx.size()).map(|q| vec![q as u64; per_buf]).collect();
                let incoming = alltoall_naive(ctx, outgoing);
                incoming.iter().map(|v| v.len()).sum::<usize>()
            })
            .results[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
