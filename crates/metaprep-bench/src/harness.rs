//! Shared harness utilities: datasets, formatting, table printing.

use metaprep_synth::{scaled_profile, simulate_community, DatasetId, SimulatedData};
use std::time::Duration;

/// Dataset scale factor from `METAPREP_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("METAPREP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Generate (deterministically) the scaled stand-in for a paper dataset.
/// Seeded per dataset so HG/LL/MM/IS differ but repeat across runs.
pub fn dataset(id: DatasetId, scale: f64) -> SimulatedData {
    let profile = scaled_profile(id, scale);
    let seed = match id {
        DatasetId::Hg => 101,
        DatasetId::Ll => 202,
        DatasetId::Mm => 303,
        DatasetId::Is => 404,
    };
    simulate_community(&profile, seed)
}

/// Format a duration as seconds with 3 decimals.
pub fn fmt_dur(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format bytes as GB with 3 decimals.
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1e9)
}

/// Format bytes as MB with 2 decimals.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Print an aligned ASCII table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", s.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        std::env::remove_var("METAPREP_SCALE");
        assert_eq!(scale_from_env(), 1.0);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = dataset(DatasetId::Hg, 0.01);
        let b = dataset(DatasetId::Hg, 0.01);
        assert_eq!(a.reads.len(), b.reads.len());
        assert_eq!(a.reads.seq(0), b.reads.seq(0));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_dur(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_gb(2_000_000_000), "2.000");
        assert_eq!(fmt_mb(1_500_000), "1.50");
    }
}
