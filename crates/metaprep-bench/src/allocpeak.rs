//! Peak-tracking global allocator for memory experiments.
//!
//! [`PeakAlloc`] forwards every allocation to the system allocator while
//! maintaining two process-wide counters: the current live byte count and
//! the high-water mark. Experiment binaries install it with
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: metaprep_bench::allocpeak::PeakAlloc =
//!     metaprep_bench::allocpeak::PeakAlloc;
//! ```
//!
//! and call [`mark_installed`] in `main` so library code can tell whether
//! the numbers it reads are live ([`installed`]). The counters measure the
//! whole process — the useful signal for an experiment is the *delta* of
//! [`peak_bytes`] across [`reset_peak`] around the measured region.
//!
//! This in-process view is complemented by [`vm_hwm_bytes`], the kernel's
//! monotone peak-RSS reading from `/proc/self/status` (Linux only); the
//! allocator delta is the primary, resettable measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

// ORDERING: Relaxed everywhere — the counters are statistics, not
// synchronization. Readers only run after the measured region joins its
// threads, so the values they observe are already ordered by those joins.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A system-allocator wrapper that tracks live bytes and their peak.
pub struct PeakAlloc;

// SAFETY: `alloc`/`dealloc` delegate directly to `System`, which upholds
// the `GlobalAlloc` contract; the added atomic bookkeeping performs no
// allocation and cannot unwind.
unsafe impl GlobalAlloc for PeakAlloc {
    // SAFETY: forwards to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            // ORDERING: Relaxed — see the counter comment above.
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: forwards to `System.dealloc` with the caller's pointer/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        // ORDERING: Relaxed — see the counter comment above.
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Record that [`PeakAlloc`] is this process's global allocator.
pub fn mark_installed() {
    // ORDERING: Relaxed — a write-once flag read long after `main` begins.
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Whether the counters below reflect real allocations.
pub fn installed() -> bool {
    // ORDERING: Relaxed — see `mark_installed`.
    INSTALLED.load(Ordering::Relaxed)
}

/// Bytes currently allocated and not yet freed.
pub fn current_bytes() -> usize {
    // ORDERING: Relaxed — statistics only.
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of [`current_bytes`] since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    // ORDERING: Relaxed — statistics only.
    PEAK.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the current live byte count, so the next
/// [`peak_bytes`] reading isolates the region that follows.
pub fn reset_peak() {
    // ORDERING: Relaxed — statistics only; callers reset between phases,
    // not concurrently with the measured region.
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The kernel's peak-RSS reading (`VmHWM` in `/proc/self/status`), in
/// bytes. Monotone over the process lifetime — a secondary, coarse check
/// on the allocator numbers. `None` off Linux or if the field is missing.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install PeakAlloc, so only the pure
    // bookkeeping and /proc parsing are testable here; the experiment
    // binary exercises the live counters.

    #[test]
    fn not_installed_in_test_harness() {
        assert!(!installed());
        assert_eq!(current_bytes(), 0);
    }

    #[test]
    fn reset_clamps_peak_to_current() {
        PEAK.store(12345, Ordering::Relaxed);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn vm_hwm_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let hwm = vm_hwm_bytes().expect("VmHWM present on Linux");
            assert!(hwm > 0);
        }
    }
}
