//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each `exp_*` binary in `src/bin/` reproduces one table or figure of the
//! paper's evaluation (§4) on the scaled synthetic datasets and prints a
//! paper-style table. Run them with:
//!
//! ```text
//! cargo run --release -p metaprep-bench --bin exp_table7
//! METAPREP_SCALE=0.25 cargo run --release -p metaprep-bench --bin exp_fig6
//! cargo run --release -p metaprep-bench --bin exp_all      # everything
//! ```
//!
//! `METAPREP_SCALE` scales dataset sizes (default 1.0 — roughly 1/50 000 of
//! the paper's base pairs, preserving relative dataset sizes).
//!
//! The experiment logic lives in [`experiments`] so `exp_all` and the
//! individual binaries share one implementation; [`harness`] holds the
//! dataset cache and table printer.

pub mod allocpeak;
pub mod experiments;
pub mod harness;

pub use harness::{dataset, fmt_dur, fmt_gb, print_table, scale_from_env};
