//! Regenerates one table/figure of the paper; see crate docs.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::fig9::run(scale);
}
