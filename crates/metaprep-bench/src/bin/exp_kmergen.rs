//! KmerGen + FASTQ-scan throughput benchmark (dispatched SIMD vs scalar);
//! see `experiments::kmergen`. Honors `METAPREP_SIMD` / `METAPREP_SCALE` /
//! `METAPREP_BENCH_OUT`.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::kmergen::run(scale);
}
