//! Chaos differential benchmark; see crate docs.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::faults::run(scale);
}
