//! Regenerates paper Tables 8 and 9 (assembly time and quality).

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::table8_9::run(scale);
}
