//! Extension experiment: sparse vs dense Merge-Comm payloads.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::sparse_merge::run(scale);
}
