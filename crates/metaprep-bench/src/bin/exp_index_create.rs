//! Streaming IndexCreate benchmark; see crate docs.

#[global_allocator]
static ALLOC: metaprep_bench::allocpeak::PeakAlloc = metaprep_bench::allocpeak::PeakAlloc;

fn main() {
    metaprep_bench::allocpeak::mark_installed();
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::index_create::run(scale);
}
