//! Extension experiment: partition quality against synthetic ground truth.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::quality::run(scale);
}
