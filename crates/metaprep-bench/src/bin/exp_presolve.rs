//! Presolve peak-memory benchmark; see crate docs.

#[global_allocator]
static ALLOC: metaprep_bench::allocpeak::PeakAlloc = metaprep_bench::allocpeak::PeakAlloc;

fn main() {
    metaprep_bench::allocpeak::mark_installed();
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::presolve::run(scale);
}
