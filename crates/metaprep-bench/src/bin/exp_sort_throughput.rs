//! Fused vs reference LocalSort benchmark (§4.2.2 + DESIGN.md §7.2);
//! see crate docs. Installs the peak-tracking allocator so
//! `BENCH_sort.json` carries real peak-allocation numbers.

#[global_allocator]
static ALLOC: metaprep_bench::allocpeak::PeakAlloc = metaprep_bench::allocpeak::PeakAlloc;

fn main() {
    metaprep_bench::allocpeak::mark_installed();
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::sort_throughput::run(scale);
}
