//! Runs every experiment in paper order (Tables 2-9, Figures 5-9).

use std::time::Instant;

fn main() {
    let scale = metaprep_bench::scale_from_env();
    println!("METAPREP experiment suite, scale = {scale}");
    let t0 = Instant::now();
    use metaprep_bench::experiments as e;
    e::table2::run(scale);
    e::fig5::run(scale);
    e::fig6::run(scale);
    e::fig7::run(scale);
    e::fig8::run(scale);
    e::table3::run(scale);
    e::fig9::run(scale);
    e::sort_throughput::run(scale);
    e::table4::run(scale);
    e::table5::run(scale);
    e::index_create::run(scale);
    e::table6::run(scale);
    e::table7::run(scale);
    e::table8_9::run(scale);
    e::sparse_merge::run(scale);
    e::presolve::run(scale);
    e::quality::run(scale);
    println!(
        "\nall experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
