//! Loom DPOR exploration-cost report; see crate docs.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::loom_dpor::run(scale);
}
