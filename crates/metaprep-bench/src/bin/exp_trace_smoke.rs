//! Telemetry export smoke test; see crate docs.

fn main() {
    let scale = metaprep_bench::scale_from_env();
    metaprep_bench::experiments::trace_smoke::run(scale);
}
