//! Figure 5 — single-node thread scaling (HG dataset).
//!
//! The paper sweeps 1..24 threads on one node of Ganga and Edison and
//! reports per-step stacked times plus relative speedup (14.5x on Edison's
//! 24 cores). On this container's single core the wall-clock curve is flat;
//! the harness therefore also prints per-thread tuple counts (the static
//! load-balance quantity that actually drives the paper's scaling).

use crate::harness::{dataset, fmt_dur, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_synth::DatasetId;

/// Run the thread sweep and print the per-step breakdown.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Hg, scale);
    let threads = [1usize, 2, 4, 8];

    let mut rows = Vec::new();
    let mut base_total = None;
    for &t in &threads {
        let cfg = PipelineConfig::builder().k(27).tasks(1).threads(t).build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        let total = res.timings.total();
        let base = *base_total.get_or_insert(total.as_secs_f64());
        rows.push(vec![
            t.to_string(),
            fmt_dur(res.timings.max_of(Step::KmerGenIo)),
            fmt_dur(res.timings.max_of(Step::KmerGen)),
            fmt_dur(res.timings.max_of(Step::LocalSort)),
            fmt_dur(res.timings.max_of(Step::LocalCc)),
            fmt_dur(res.timings.max_of(Step::CcIo)),
            fmt_dur(total),
            format!("{:.2}x", base / total.as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 5: single-node thread scaling, HG",
        &[
            "Threads",
            "KmerGen-I/O",
            "KmerGen",
            "LocalSort",
            "LocalCC-Opt",
            "CC-I/O",
            "Total (s)",
            "Speedup",
        ],
        &rows,
    );
    println!(
        "  note: this container has {} hardware core(s); the paper reports 14.5x on 24 cores",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
