//! Extension experiment — partition quality against the simulated ground
//! truth.
//!
//! Howe et al.'s premise (paper §2) is that k-mer partitioning keeps most
//! reads of one species in one component. With synthetic communities the
//! species of every fragment is known, so the premise becomes a measurable
//! precision/recall trade-off across the paper's filter settings: the
//! unfiltered giant component has perfect recall and poor precision; the
//! filters trade recall for precision.

use crate::harness::{dataset, print_table};
use metaprep_core::{Pipeline, PipelineConfig};
use metaprep_synth::{score_partition, DatasetId};

/// Score all Table 7 settings for HG.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Hg, scale);
    let mut rows = Vec::new();
    for (name, k, kf) in super::table7::settings() {
        let mut b = PipelineConfig::builder().k(k).tasks(2).threads(1);
        if let Some((lo, hi)) = kf {
            b = b.kf_filter(lo, hi);
        }
        let res = Pipeline::new(b.build())
            .run_reads(&data.reads)
            .expect("pipeline");
        let score = score_partition(&res.labels, &data.species_of_fragment);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", 100.0 * res.largest_component_fraction()),
            format!("{:.3}", score.recall),
            format!("{:.3}", score.precision),
            format!("{:.3}", score.mean_majority_fraction),
        ]);
    }
    print_table(
        "Extension: partition quality vs ground truth (HG)",
        &["Setting", "LC %", "Recall", "Precision", "Majority frac"],
        &rows,
    );
    println!("  recall = same-species pairs kept together; precision = same-component pairs");
    println!("  that are same-species. Filters trade recall for precision, as Howe et al. argue.");
}
