//! Chaos differential: faulted and crashed cluster runs must reproduce
//! the fault-free partition byte-for-byte, and the recovery machinery
//! (retries, dedup, checkpoint restore) must actually fire.
//!
//! Driven by `cargo xtask bench-smoke` on a small seed matrix: a
//! fault-free baseline is partitioned once, then each generated
//! [`FaultPlan`] — message faults only, and message faults plus mid-run
//! crashes replayed from checkpoints — re-runs the same input and the
//! resulting labels are compared byte-for-byte. `BENCH_faults.json`
//! records the makespan overhead each plan cost and the retry/restart
//! counters pulled from the run's own trace, so a recovery regression
//! (lost exactly-once delivery, checkpoint drift, runaway retry storms)
//! shows up in the per-commit trajectory and trips the gate.

use crate::{harness, print_table};
use metaprep_core::{Pipeline, PipelineConfig, PipelineConfigBuilder};
use metaprep_dist::{Boundary, FaultPlan};
use metaprep_obs::{CounterKind, MemRecorder, RunSummary};
use metaprep_synth::DatasetId;
use std::time::Instant;

/// Deterministic single-thread configuration: with `threads(1)` the
/// whole run (union order, path compression, labels) is a pure function
/// of the input, so byte-identity is a meaningful differential oracle.
const TASKS: usize = 4;

fn chaos_cfg() -> PipelineConfigBuilder {
    PipelineConfig::builder()
        .k(21)
        .m(6)
        .passes(2)
        .tasks(TASKS)
        .threads(1)
}

struct FaultRun {
    name: &'static str,
    wall_ms: f64,
    overhead_x: f64,
    identical: bool,
    faults_injected: u64,
    retry_attempts: u64,
    checkpoint_writes: u64,
    task_restarts: u64,
}

/// Run the experiment; writes `BENCH_faults.json` and returns its path.
pub fn run(scale: f64) -> std::path::PathBuf {
    let data = harness::dataset(DatasetId::Is, scale);
    let ckpt_dir = std::env::temp_dir().join("metaprep_bench_faults_ckpt");

    // Fault-free baseline: the oracle labels and the makespan yardstick.
    let t0 = Instant::now();
    let want = Pipeline::new(chaos_cfg().build())
        .run_reads(&data.reads)
        .expect("baseline pipeline must run")
        .labels;
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The plan matrix: every message-fault kind across two seeds, plus a
    // plan that also crashes ranks mid-pass and mid-merge so the restart
    // path replays from checkpoints under message faults.
    let plans: Vec<(&'static str, FaultPlan, bool)> = vec![
        (
            "msg-faults-s7",
            FaultPlan::parse_spec("seed=7,drop=0.05,delay=0.05,dup=0.05,reorder=0.05")
                .expect("spec is hand-written and valid"),
            false,
        ),
        (
            "msg-faults-s1234",
            FaultPlan::parse_spec("seed=1234,drop=0.08,delay=0.03,dup=0.08,reorder=0.05")
                .expect("spec is hand-written and valid"),
            false,
        ),
        (
            "crash-replay-s42",
            FaultPlan::parse_spec("seed=42,drop=0.03,dup=0.03,reorder=0.03")
                .expect("spec is hand-written and valid")
                .with_crash(1, Boundary::Pass(1))
                .with_crash(2, Boundary::MergeRound(0)),
            true,
        ),
    ];

    let mut runs: Vec<FaultRun> = Vec::new();
    for (name, plan, crashes) in plans {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let mut cfg = chaos_cfg().fault_plan(plan);
        if crashes {
            cfg = cfg.checkpoint_dir(&ckpt_dir);
        }
        let rec = MemRecorder::new(TASKS);
        let t0 = Instant::now();
        let res = Pipeline::new(cfg.build())
            .run_reads_recorded(&data.reads, &rec)
            .expect("faulted pipeline must recover and complete");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let s = RunSummary::from_events(&rec.into_events());
        runs.push(FaultRun {
            name,
            wall_ms,
            overhead_x: wall_ms / baseline_ms,
            identical: res.labels == want,
            faults_injected: s.counter_total(CounterKind::FaultsInjected),
            retry_attempts: s.counter_total(CounterKind::RetryAttempts),
            checkpoint_writes: s.counter_total(CounterKind::CheckpointWrites),
            task_restarts: s.counter_total(CounterKind::TaskRestarts),
        });
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    print_table(
        "faults: chaos differential (faulted vs fault-free partition)",
        &[
            "Plan",
            "Wall (ms)",
            "Overhead",
            "Identical",
            "Injected",
            "Retries",
            "Ckpts",
            "Restarts",
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.2}x", r.overhead_x),
                    r.identical.to_string(),
                    r.faults_injected.to_string(),
                    r.retry_attempts.to_string(),
                    r.checkpoint_writes.to_string(),
                    r.task_restarts.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The experiment's own gates: every plan must converge to the exact
    // fault-free labels, the message-fault machinery must demonstrably
    // fire, and the crash plan must restart and checkpoint.
    let identical = runs.iter().filter(|r| r.identical).count();
    assert_eq!(
        identical,
        runs.len(),
        "a faulted run diverged from the fault-free labels"
    );
    assert!(
        runs.iter().any(|r| r.retry_attempts > 0),
        "no plan exercised the retry path"
    );
    let restarts: u64 = runs.iter().map(|r| r.task_restarts).sum();
    assert!(restarts >= 2, "crash plan must restart both crashed ranks");
    assert!(
        runs.iter().any(|r| r.checkpoint_writes > 0),
        "crash plan wrote no checkpoints"
    );

    let mut json = String::from("{\n  \"experiment\": \"faults\",\n");
    json.push_str(&format!("  \"baseline_wall_ms\": {baseline_ms:.3},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"overhead_x\": {:.3}, \
             \"identical\": {}, \"faults_injected\": {}, \"retry_attempts\": {}, \
             \"checkpoint_writes\": {}, \"task_restarts\": {}}}{}\n",
            r.name,
            r.wall_ms,
            r.overhead_x,
            r.identical,
            r.faults_injected,
            r.retry_attempts,
            r.checkpoint_writes,
            r.task_restarts,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"runs_total\": {},\n", runs.len()));
    json.push_str(&format!("  \"runs_identical\": {identical},\n"));
    json.push_str(&format!(
        "  \"retry_attempts_total\": {},\n",
        runs.iter().map(|r| r.retry_attempts).sum::<u64>()
    ));
    json.push_str(&format!("  \"task_restarts_total\": {restarts},\n"));
    let max_overhead = runs.iter().map(|r| r.overhead_x).fold(0.0f64, f64::max);
    json.push_str(&format!("  \"max_overhead_x\": {max_overhead:.3}\n}}\n"));

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_faults.json"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out, json).expect("write BENCH_faults.json");
    println!("wrote {}", out.display());
    out
}
