//! Table 7 — largest component size under k and KF filter settings.
//!
//! The giant-component phenomenon and its two remedies: a larger `k`
//! (diverged repeat copies stop sharing exact k-mers) and a k-mer
//! frequency filter (high-frequency repeat k-mers stop generating edges).

use crate::harness::{dataset, print_table};
use metaprep_core::{Pipeline, PipelineConfig};
use metaprep_synth::DatasetId;

/// One Table 7 row: (label, k, optional (min, max) k-mer-frequency filter).
pub type Table7Setting = (&'static str, usize, Option<(u32, u32)>);

/// The five filter/k settings of the paper's Table 7.
pub fn settings() -> Vec<Table7Setting> {
    vec![
        ("k=27, None", 27, None),
        ("k=63, None", 63, None),
        ("k=27, KF<30", 27, Some((1, 29))),
        ("k=27, 10<=KF<30", 27, Some((10, 29))),
        ("k=63, 10<=KF<30", 63, Some((10, 29))),
    ]
}

/// Compute the LC percentage for one dataset/setting.
pub fn lc_percent(reads: &metaprep_io::ReadStore, k: usize, kf: Option<(u32, u32)>) -> f64 {
    let mut b = PipelineConfig::builder().k(k).tasks(2).threads(1);
    if let Some((lo, hi)) = kf {
        b = b.kf_filter(lo, hi);
    }
    let res = Pipeline::new(b.build()).run_reads(reads).expect("pipeline");
    100.0 * res.largest_component_fraction()
}

/// Run the full grid.
pub fn run(scale: f64) {
    let datasets: Vec<_> = [DatasetId::Hg, DatasetId::Ll, DatasetId::Mm]
        .into_iter()
        .map(|id| (id, dataset(id, scale)))
        .collect();

    let paper: &[(&str, [f64; 3])] = &[
        ("k=27, None", [95.5, 76.3, 99.5]),
        ("k=63, None", [87.1, 58.9, 97.8]),
        ("k=27, KF<30", [73.5, 67.6, 45.0]),
        ("k=27, 10<=KF<30", [55.2, 45.2, 40.0]),
        ("k=63, 10<=KF<30", [51.6, 30.6, 59.0]),
    ];

    let mut rows = Vec::new();
    for (i, (name, k, kf)) in settings().into_iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (_, d) in &datasets {
            row.push(format!("{:.1}", lc_percent(&d.reads, k, kf)));
        }
        row.push(format!("{:?}", paper[i].1));
        rows.push(row);
    }
    print_table(
        "Table 7: largest component size (% reads)",
        &["Setting", "HG", "LL", "MM", "paper [HG, LL, MM]"],
        &rows,
    );
}
