//! Table 4 — comparison with the AP_LB metagenome partitioning approach.
//!
//! AP_LB (Flick et al.) labels read-graph components with an iterative
//! Shiloach–Vishkin algorithm needing 19–21 iterations on the paper's
//! datasets; METAPREP needs `ceil(log2 P)` merge rounds. The harness runs
//! the full METAPREP pipeline against an SV run over the explicit read
//! graph (edge construction included for SV, since AP_LB materializes and
//! sorts edges every iteration).

use crate::harness::{dataset, fmt_dur, print_table};
use metaprep_cc::{adaptive_components, shiloach_vishkin, ComponentStats};
use metaprep_core::{Pipeline, PipelineConfig};
use metaprep_kmer::{for_each_canonical_kmer, Kmer64};
use metaprep_synth::DatasetId;
use std::collections::HashMap;
use std::time::Instant;

/// Run the comparison for HG, LL, MM.
pub fn run(scale: f64) {
    let tasks = 8usize;
    let mut rows = Vec::new();
    for id in [DatasetId::Hg, DatasetId::Ll, DatasetId::Mm] {
        let data = dataset(id, scale);

        // METAPREP end-to-end.
        let cfg = PipelineConfig::builder()
            .k(27)
            .tasks(tasks)
            .threads(1)
            .build();
        let t0 = Instant::now();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        let mp_time = t0.elapsed();

        // AP_LB stand-in: explicit read-graph edges + Shiloach–Vishkin.
        let t0 = Instant::now();
        let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
        for (seq, frag) in data.reads.iter() {
            for_each_canonical_kmer::<Kmer64>(seq, 27, |v, _| {
                groups.entry(v).or_default().push(frag);
            });
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (_, rs) in groups {
            for w in rs.windows(2) {
                if w[0] != w[1] {
                    edges.push((w[0], w[1]));
                }
            }
        }
        let sv = shiloach_vishkin(data.reads.num_fragments() as usize, &edges);
        let sv_time = t0.elapsed();

        // Adaptive BFS+UF baseline (Jain et al., paper reference [8]),
        // timed over the CC labeling only (it reuses the edge list).
        let t0 = Instant::now();
        let adaptive = adaptive_components(data.reads.num_fragments() as usize, &edges);
        let adaptive_time = t0.elapsed();

        // Both must find the same partition.
        let a = ComponentStats::from_component_array(&res.labels);
        let b = ComponentStats::from_component_array(&sv.labels);
        let c = ComponentStats::from_component_array(&adaptive.labels);
        assert_eq!(a.components, b.components, "SV partition disagrees");
        assert_eq!(a.components, c.components, "adaptive partition disagrees");

        rows.push(vec![
            id.name().to_string(),
            fmt_dur(mp_time),
            fmt_dur(sv_time),
            format!("{:.2}x", sv_time.as_secs_f64() / mp_time.as_secs_f64()),
            format!("{}", sv.iterations),
            format!("{}", (tasks as f64).log2().ceil() as usize),
            fmt_dur(adaptive_time),
            format!(
                "{:.1}",
                100.0 * adaptive.bfs_reached as f64 / data.reads.num_fragments() as f64
            ),
        ]);
    }
    print_table(
        "Table 4: METAPREP vs AP_LB (Shiloach-Vishkin) on 8 tasks",
        &[
            "Dataset",
            "METAPREP (s)",
            "AP_LB/SV (s)",
            "Speedup",
            "SV iters",
            "Merge rounds",
            "Adaptive CC (s)",
            "BFS reached %",
        ],
        &rows,
    );
    println!("  note: paper reports 2.25x-4.22x with SV needing 19-21 iterations");
}
