//! KmerGen + FASTQ-scan throughput: runtime-dispatched SIMD lanes vs the
//! scalar reference (§4.1 KmerGen, §4.3 record-boundary scanning).
//!
//! Three measurements on a simulated HG-profile read set:
//!
//! 1. **KmerGen end-to-end** — canonical 27-mer enumeration over every
//!    read through [`metaprep_kmer::for_each_canonical_kmer`] (dispatched:
//!    vectorized classify feeding the roll loop) vs
//!    [`metaprep_kmer::for_each_canonical_kmer_scalar`] (per-byte table
//!    lookups). A value/offset checksum is asserted identical every round,
//!    so the speedup is never measured against a diverged result.
//! 2. **Classify kernel** — whole-read 2-bit encode + validity
//!    classification, best backend vs scalar, isolating the vector lanes
//!    from the roll loop.
//! 3. **Newline scan** — the memchr-style byte scanner that
//!    `metaprep-io`'s `find_record_start` / `count_record_starts` and the
//!    `StreamChunker` probe ride, best backend vs scalar, hunting `\n`
//!    across the serialized FASTQ image.
//!
//! The headline `dispatched_over_scalar` in `BENCH_kmergen.json` is the
//! end-to-end KmerGen ratio — the number `cargo xtask bench-smoke` gates
//! (≥1.2x when a vector backend is active; the gate is skipped when the
//! box resolves to scalar, where the ratio is 1 by construction).

use crate::harness::{dataset, print_table};
use metaprep_io::{count_record_starts, write_fastq, ReadStore};
use metaprep_kmer::simd::{self, Backend};
use metaprep_kmer::{for_each_canonical_kmer, for_each_canonical_kmer_scalar, Kmer64};
use metaprep_synth::DatasetId;
use std::time::Instant;

/// The paper's k for the assembly-support experiments.
const K: usize = 27;
/// Timed rounds per path (best round scored).
const ROUNDS: usize = 5;

struct PathResult {
    secs: f64,
    mbases_per_s: f64,
}

fn path_json(p: &PathResult) -> String {
    format!(
        "{{\"secs\": {:.6}, \"mbases_per_s\": {:.3}}}",
        p.secs, p.mbases_per_s
    )
}

/// Value/offset checksum of an enumeration pass: order-sensitive, so a
/// reordered emission (not just a wrong value) also diverges.
#[derive(Default, PartialEq, Eq, Debug, Clone, Copy)]
struct Checksum {
    count: u64,
    acc: u64,
}

impl Checksum {
    #[inline]
    fn feed(&mut self, value: u64, offset: usize) {
        self.count += 1;
        self.acc = self
            .acc
            .rotate_left(1)
            .wrapping_add(value ^ (offset as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

/// Time `f` over `ROUNDS` rounds (plus one untimed warm-up) and score the
/// best round — on shared/1-core boxes the minimum is far more robust to
/// scheduler noise than the mean, and both paths get the same treatment.
fn measure(bytes: usize, mut f: impl FnMut()) -> PathResult {
    f(); // warm-up: page in the data, resolve dispatch, size buffers
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    PathResult {
        secs: best,
        mbases_per_s: bytes as f64 / best / 1e6,
    }
}

fn enumerate_all(reads: &ReadStore, dispatched: bool) -> Checksum {
    let mut sum = Checksum::default();
    for (seq, _) in reads.iter() {
        if dispatched {
            for_each_canonical_kmer::<Kmer64>(seq, K, |v, off| sum.feed(v, off));
        } else {
            for_each_canonical_kmer_scalar::<Kmer64>(seq, K, |v, off| sum.feed(v, off));
        }
    }
    sum
}

/// Count newlines by repeated `find_byte_with` — the exact scan shape of
/// `metaprep-io`'s record-boundary hunting.
fn newline_scan(backend: Backend, data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut at = 0usize;
    while let Some(i) = simd::find_byte_with(backend, &data[at..], b'\n') {
        count += 1;
        at += i + 1;
    }
    count
}

/// Run the experiment; writes `BENCH_kmergen.json` and returns its path.
pub fn run(scale: f64) -> std::path::PathBuf {
    let backend = simd::active();
    let data = dataset(DatasetId::Hg, scale);
    let reads = &data.reads;
    let bases = reads.total_bases();
    let mut fastq = Vec::new();
    write_fastq(&mut fastq, reads).expect("serialize FASTQ to memory");

    // --- 1. KmerGen end-to-end: dispatched vs scalar --------------------
    let mut sum_dispatched = Checksum::default();
    let kmergen_dispatched = measure(bases, || {
        sum_dispatched = enumerate_all(reads, true);
    });
    let mut sum_scalar = Checksum::default();
    let kmergen_scalar = measure(bases, || {
        sum_scalar = enumerate_all(reads, false);
    });
    assert_eq!(
        sum_dispatched, sum_scalar,
        "dispatched KmerGen diverged from the scalar reference"
    );
    let kmergen_ratio = kmergen_dispatched.mbases_per_s / kmergen_scalar.mbases_per_s;

    // --- 2. classify kernel: best backend vs scalar ---------------------
    let mut codes = Vec::new();
    let classify_best = measure(bases, || {
        for (seq, _) in reads.iter() {
            simd::encode_classify_with(backend, seq, &mut codes);
        }
    });
    let classify_scalar = measure(bases, || {
        for (seq, _) in reads.iter() {
            simd::encode_classify_with(Backend::Scalar, seq, &mut codes);
        }
    });
    let classify_ratio = classify_best.mbases_per_s / classify_scalar.mbases_per_s;

    // --- 3. newline scan over the FASTQ image ---------------------------
    let mut nl_best = 0u64;
    let scan_best = measure(fastq.len(), || {
        nl_best = newline_scan(backend, &fastq);
    });
    let mut nl_scalar = 0u64;
    let scan_scalar = measure(fastq.len(), || {
        nl_scalar = newline_scan(Backend::Scalar, &fastq);
    });
    assert_eq!(nl_best, nl_scalar, "newline scan diverged across backends");
    assert_eq!(
        count_record_starts(&fastq),
        reads.len() as u64,
        "record scanner miscounted the serialized FASTQ"
    );
    let scan_ratio = scan_best.mbases_per_s / scan_scalar.mbases_per_s;

    print_table(
        &format!(
            "KmerGen + FASTQ scan, backend {backend}, {} reads / {:.1} Mbases, \
             k={K}, {ROUNDS} rounds",
            reads.len(),
            bases as f64 / 1e6
        ),
        &["Measurement", "Time (s)", "Mbases/s", "vs scalar"],
        &[
            vec![
                "KmerGen dispatched".into(),
                format!("{:.3}", kmergen_dispatched.secs),
                format!("{:.1}", kmergen_dispatched.mbases_per_s),
                format!("{kmergen_ratio:.2}x"),
            ],
            vec![
                "KmerGen scalar".into(),
                format!("{:.3}", kmergen_scalar.secs),
                format!("{:.1}", kmergen_scalar.mbases_per_s),
                "1.00x".into(),
            ],
            vec![
                "classify kernel".into(),
                format!("{:.3}", classify_best.secs),
                format!("{:.1}", classify_best.mbases_per_s),
                format!("{classify_ratio:.2}x"),
            ],
            vec![
                "newline scan".into(),
                format!("{:.3}", scan_best.secs),
                format!("{:.1}", scan_best.mbases_per_s),
                format!("{scan_ratio:.2}x"),
            ],
        ],
    );
    println!(
        "  {} canonical {K}-mers per pass, checksums identical on both paths",
        sum_dispatched.count
    );

    // --- JSON report (hand-rolled: numbers/fixed labels only) -----------
    let mut json = String::from("{\n  \"experiment\": \"kmergen\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"backend\": \"{}\",\n", backend.name()));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"reads\": {},\n", reads.len()));
    json.push_str(&format!("  \"bases\": {bases},\n"));
    json.push_str(&format!("  \"fastq_bytes\": {},\n", fastq.len()));
    json.push_str(&format!(
        "  \"kmers_per_pass\": {},\n",
        sum_dispatched.count
    ));
    json.push_str(&format!(
        "  \"kmergen\": {{\"dispatched\": {}, \"scalar\": {}, \"ratio\": {kmergen_ratio:.3}}},\n",
        path_json(&kmergen_dispatched),
        path_json(&kmergen_scalar),
    ));
    json.push_str(&format!(
        "  \"classify\": {{\"dispatched\": {}, \"scalar\": {}, \"ratio\": {classify_ratio:.3}}},\n",
        path_json(&classify_best),
        path_json(&classify_scalar),
    ));
    json.push_str(&format!(
        "  \"scan\": {{\"dispatched\": {}, \"scalar\": {}, \"ratio\": {scan_ratio:.3}}},\n",
        path_json(&scan_best),
        path_json(&scan_scalar),
    ));
    json.push_str(&format!(
        "  \"dispatched_over_scalar\": {kmergen_ratio:.3}\n}}\n"
    ));

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_kmergen.json"));
    std::fs::write(&out, json).expect("write BENCH_kmergen.json");
    println!("wrote {}", out.display());
    out
}
