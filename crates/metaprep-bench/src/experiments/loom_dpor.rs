//! Loom DPOR exploration cost: explored vs pruned schedules per model.
//!
//! The loom CI job proves schedule-space properties (deadlock freedom,
//! message conservation) of the staged all-to-all; this experiment
//! tracks what that proof *costs* and how much dynamic partial-order
//! reduction saves, so a scheduler or DPOR regression shows up in the
//! per-commit `BENCH_loom.json` trajectory (and fails the bench-smoke
//! gate) instead of silently re-inflating the model-checking wall time.
//!
//! The models re-build the channel matrix + staged schedule of
//! `metaprep-dist/tests/loom.rs` directly on the vendored `loom` crate
//! — which models fine without `--cfg loom`; the cfg only matters for
//! swapping the *production* crates' shims — using the exact
//! [`metaprep_dist::stage_peers`] arithmetic `collectives::alltoall`
//! executes:
//!
//! * `alltoall2` — the 2-task exchange, explored under both DPOR and
//!   brute-force enumeration (the brute-force run is small enough to
//!   afford and anchors the reduction ratio in measured data);
//! * `ring3` — stage 1 of the 3-task round (ring exchange), also both
//!   modes;
//! * `alltoall3` — the full 3-task two-stage round, DPOR only: its
//!   brute-force reference is ~3.35M schedules (~5 min), measured once
//!   when the test was still `#[ignore]`d and pinned here as a
//!   constant. The gate asserts ≥ 100x reduction against it.

use metaprep_dist::stage_peers;
use std::time::Instant;

/// Brute-force schedule count of the 3-task round, measured before DPOR
/// landed (the reason `alltoall_three_tasks_all_interleavings` used to
/// be `#[ignore]`d). Too slow to re-measure every smoke run.
const ALLTOALL3_REFERENCE_SCHEDULES: u64 = 3_350_000;

/// The bench-smoke gate: DPOR must explore at most this many schedules
/// for the 3-task round (>= 100x reduction vs the reference).
const ALLTOALL3_EXPLORED_MAX: u64 = ALLTOALL3_REFERENCE_SCHEDULES / 100;

type Msg = (usize, usize);
type Sender = loom::sync::mpsc::Sender<Msg>;
type Receiver = loom::sync::mpsc::Receiver<Msg>;

/// Build the p×p channel matrix: each rank gets its senders-to-all row
/// and receive-from-all column, mirroring `run_cluster`'s wiring.
fn wire(p: usize) -> (Vec<Vec<Sender>>, Vec<Vec<Receiver>>) {
    let mut senders: Vec<Vec<Sender>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for from in 0..p {
        for rx_row in receivers.iter_mut() {
            let (tx, rx) = loom::sync::mpsc::channel::<Msg>();
            senders[from].push(tx);
            rx_row[from] = Some(rx);
        }
    }
    let receivers = receivers
        .into_iter()
        .map(|row| row.into_iter().map(|o| o.unwrap()).collect())
        .collect();
    (senders, receivers)
}

/// One rank's staged round over `stages` stages: stage `s` sends to
/// `(rank + s) mod p` and receives from `(rank - s) mod p`.
fn staged_round(rank: usize, p: usize, stages: usize, txs: &[Sender], rxs: &[Receiver]) {
    for stage in 1..=stages {
        let (to, from) = stage_peers(rank, p, stage);
        txs[to].send((rank, to)).expect("receiver alive");
        let (src, dst) = rxs[from].recv().expect("sender alive");
        assert_eq!((src, dst), (from, rank), "misrouted staged message");
    }
}

struct ModelRun {
    name: &'static str,
    report: loom::model::Report,
    wall_ms: f64,
}

/// Explore the `p`-task round over `stages` stages under one mode.
fn run_model(name: &'static str, p: usize, stages: usize, dpor: bool) -> ModelRun {
    let t0 = Instant::now();
    let report = loom::model::Builder {
        max_iters: 8_000_000,
        dpor,
    }
    .check_report(move || {
        let (senders, receivers) = wire(p);
        let mut parts: Vec<_> = senders.into_iter().zip(receivers).collect();
        // Rank 0 runs on the model's main thread (the loom idiom), so p
        // ranks cost p actors.
        let (txs0, rxs0) = parts.remove(0);
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, (txs, rxs))| {
                loom::thread::spawn(move || {
                    staged_round(i + 1, p, stages, &txs, &rxs);
                    // Hand the endpoints back instead of dropping them
                    // here: endpoint drops are visible ops (disconnect
                    // is observable), and dropping them concurrently
                    // would multiply the brute-force reference models
                    // ~100x for nothing.
                    (txs, rxs)
                })
            })
            .collect();
        staged_round(0, p, stages, &txs0, &rxs0);
        let kept: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("modeled rank panicked"))
            .collect();
        // All ranks joined: only the main thread is runnable, so every
        // endpoint (including rank 0's) now drops serially.
        drop(kept);
        drop((txs0, rxs0));
    });
    ModelRun {
        name,
        report,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run the experiment; writes `BENCH_loom.json` and returns its path.
/// `_scale` is accepted for harness uniformity — the models are
/// exhaustive, their size is fixed by the schedule-space structure.
pub fn run(_scale: f64) -> std::path::PathBuf {
    let runs = [
        run_model("alltoall2_dpor", 2, 1, true),
        run_model("alltoall2_full", 2, 1, false),
        run_model("ring3_dpor", 3, 1, true),
        run_model("ring3_full", 3, 1, false),
        run_model("alltoall3_dpor", 3, 2, true),
    ];

    crate::harness::print_table(
        "loom DPOR exploration cost (explored vs pruned schedules)",
        &[
            "Model",
            "Explored",
            "Sleep-blocked",
            "Backtracks",
            "Wall (ms)",
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    r.report.schedules_explored.to_string(),
                    r.report.sleep_blocked.to_string(),
                    r.report.backtrack_points.to_string(),
                    format!("{:.1}", r.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let by_name = |n: &str| {
        runs.iter()
            .find(|r| r.name == n)
            .expect("model ran")
            .report
            .schedules_explored as u64
    };
    let a2_reduction = by_name("alltoall2_full") as f64 / by_name("alltoall2_dpor") as f64;
    let ring3_reduction = by_name("ring3_full") as f64 / by_name("ring3_dpor") as f64;
    let a3_explored = by_name("alltoall3_dpor");
    let a3_reduction = ALLTOALL3_REFERENCE_SCHEDULES as f64 / a3_explored as f64;
    println!(
        "  reductions: alltoall2 {a2_reduction:.1}x (measured), ring3 {ring3_reduction:.1}x \
         (measured), alltoall3 {a3_reduction:.0}x (vs pinned pre-DPOR reference)"
    );
    assert!(
        a3_explored <= ALLTOALL3_EXPLORED_MAX,
        "DPOR regression: 3-task round explored {a3_explored} schedules \
         (gate: <= {ALLTOALL3_EXPLORED_MAX}, i.e. >= 100x reduction vs \
         {ALLTOALL3_REFERENCE_SCHEDULES} brute-force)"
    );

    let mut json = String::from("{\n  \"experiment\": \"loom_dpor\",\n");
    json.push_str(&format!(
        "  \"alltoall3_reference_schedules\": {ALLTOALL3_REFERENCE_SCHEDULES},\n"
    ));
    json.push_str(&format!(
        "  \"alltoall3_explored_max\": {ALLTOALL3_EXPLORED_MAX},\n"
    ));
    json.push_str("  \"models\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"dpor\": {}, \"schedules_explored\": {}, \
             \"sleep_blocked\": {}, \"backtrack_points\": {}, \"wall_ms\": {:.3}}}{}\n",
            r.name,
            r.report.dpor,
            r.report.schedules_explored,
            r.report.sleep_blocked,
            r.report.backtrack_points,
            r.wall_ms,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"alltoall2_reduction\": {a2_reduction:.3},\n"));
    json.push_str(&format!("  \"ring3_reduction\": {ring3_reduction:.3},\n"));
    json.push_str(&format!("  \"alltoall3_explored\": {a3_explored},\n"));
    json.push_str(&format!(
        "  \"alltoall3_reduction_vs_reference\": {a3_reduction:.1}\n}}\n"
    ));

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_loom.json"));
    std::fs::write(&out, json).expect("write BENCH_loom.json");
    println!("wrote {}", out.display());
    out
}
