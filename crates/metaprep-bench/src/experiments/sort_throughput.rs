//! §4.2.2 — LocalSort throughput: fused receive-side path vs the unfused
//! reference, plus the paper's comparison against a state-of-the-art
//! parallel radix sort.
//!
//! Two measurements:
//!
//! 1. **Fused vs reference LocalSort** on a pipeline-realistic receive-side
//!    workload: per-sender message buffers as they come out of the
//!    all-to-all, keys with metagenome-like abundance skew (a few dominant
//!    genomes concentrate most tuples in narrow key windows — the regime
//!    where sub-range bit pruning bites, cf. DESIGN.md §7.2), mass-balanced
//!    sub-range boundaries like the plan's. The fused path
//!    ([`metaprep_sort::fused_local_sort`]) scatters straight from the
//!    parts and prunes radix passes; the reference path is the old
//!    pipeline: concat → partition → full per-range radix. Both results
//!    are asserted byte-identical every round, and the numbers go to
//!    `BENCH_sort.json` (or `METAPREP_BENCH_OUT`) for the perf trajectory.
//! 2. The paper's §4.2.2 table: LocalSort vs our fully-parallel stable
//!    LSB radix sort (the NUMA-aware-sort stand-in) vs `sort_unstable`.
//!
//! Peak memory is the [`crate::allocpeak`] high-water delta per timed
//! region when the experiment binary installs the tracking allocator
//! (`exp_sort_throughput` does; `exp_all` does not, and the JSON then
//! marks allocator numbers absent).

use crate::allocpeak;
use crate::harness::print_table;
use metaprep_kmer::KmerReadTuple;
use metaprep_sort::{
    equal_boundaries_by_sample, fused_local_sort, local_sort, local_sort_with_boundaries,
    parallel_lsb_sort, PassBuffers, RadixStats,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Simulated all-to-all senders (`P`).
const SENDERS: usize = 8;
/// Sub-ranges per task (`T`).
const RANGES: usize = 8;
/// Radix digit width (the paper's 8).
const DIGIT_BITS: u32 = 8;
/// Meaningful key bits (27-mers: 2k = 54).
const KEY_BITS: u32 = 54;
/// Timed rounds per path — several, so the pooled buffers' recycling
/// (allocate once, reuse every pass) shows up the way it does across the
/// pipeline's passes.
const ROUNDS: usize = 4;
/// Abundance clusters ("dominant genomes") and their share of the tuples.
const CLUSTERS: usize = 2;
const CLUSTER_SHARE_PCT: u64 = 85;
/// Width of each abundant cluster's k-mer window, in bits.
const CLUSTER_WINDOW_BITS: u32 = 16;

/// The receive side of one task-pass: per-sender tuple buffers with
/// metagenome-like skew. One task deep in an `S·P·T` hierarchy sees a
/// window of the k-mer space dominated by the abundant genomes' repeated
/// k-mers — most tuple mass sits in a couple of narrow key clusters, the
/// rest is uniform background. Mass-balanced sub-range boundaries then
/// subdivide the clusters, making the hot sub-ranges numerically narrow —
/// the regime where per-sub-range bit pruning pays.
fn receive_side_parts(n: usize, seed: u64) -> Vec<Vec<KmerReadTuple>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mask54 = (1u64 << KEY_BITS) - 1;
    let centers: Vec<u64> = (0..CLUSTERS)
        .map(|_| rng.gen::<u64>() & mask54 & !((1u64 << CLUSTER_WINDOW_BITS) - 1))
        .collect();
    let per_sender = n / SENDERS;
    (0..SENDERS)
        .map(|s| {
            (0..per_sender)
                .map(|i| {
                    let key = if rng.gen_range(0..100u64) < CLUSTER_SHARE_PCT {
                        let c = centers[rng.gen_range(0..CLUSTERS)];
                        c | (rng.gen::<u64>() & ((1u64 << CLUSTER_WINDOW_BITS) - 1))
                    } else {
                        rng.gen::<u64>() & mask54
                    };
                    KmerReadTuple::new(key, (s * per_sender + i) as u32)
                })
                .collect()
        })
        .collect()
}

struct PathResult {
    secs: f64,
    mtuples_per_s: f64,
    peak_alloc: Option<usize>,
    stats: RadixStats,
}

/// Run the experiment; writes `BENCH_sort.json` and returns its path.
pub fn run(scale: f64) -> std::path::PathBuf {
    let n = (((1usize << 22) as f64 * scale) as usize).max(SENDERS * RANGES);
    let parts = receive_side_parts(n, 42);
    let n = parts.iter().map(Vec::len).sum::<usize>();
    let all: Vec<KmerReadTuple> = parts.iter().flatten().copied().collect();
    let boundaries = equal_boundaries_by_sample(&all, RANGES, 64 * RANGES);

    // Both paths get one untimed warm-up round: the pipeline runs S passes
    // per task with pooled buffers, so steady-state per-pass cost is the
    // quantity of interest — not the one-time first-touch page faults of a
    // cold allocator, which on this box cost as much as the scatter
    // itself. The reference warm-up warms the allocator's free lists the
    // same way its per-pass reallocations do mid-pipeline.
    {
        let mut tuples: Vec<KmerReadTuple> = Vec::with_capacity(n);
        for p in &parts {
            tuples.extend_from_slice(p);
        }
        let mut scratch = vec![KmerReadTuple::default(); n];
        local_sort_with_boundaries(&mut tuples, &mut scratch, &boundaries, DIGIT_BITS, KEY_BITS);
    }

    // --- reference: concat -> partition -> full per-range radix ---------
    let mut ref_secs = 0.0;
    let mut ref_peak: Option<usize> = allocpeak::installed().then_some(0);
    let mut ref_sorted: Vec<KmerReadTuple> = Vec::new();
    for _ in 0..ROUNDS {
        allocpeak::reset_peak();
        let before = allocpeak::peak_bytes();
        let t0 = Instant::now();
        let mut tuples: Vec<KmerReadTuple> = Vec::with_capacity(n);
        for p in &parts {
            tuples.extend_from_slice(p);
        }
        let mut scratch = vec![KmerReadTuple::default(); tuples.len()];
        local_sort_with_boundaries(&mut tuples, &mut scratch, &boundaries, DIGIT_BITS, KEY_BITS);
        drop(scratch);
        ref_secs += t0.elapsed().as_secs_f64();
        if let Some(p) = ref_peak.as_mut() {
            *p = (*p).max(allocpeak::peak_bytes() - before);
        }
        ref_sorted = tuples;
    }
    // Every nonempty sub-range pays ceil(54 / bits) passes (a full
    // counting scan each; identity passes skip only the scatter half).
    let nonempty = {
        let mut dst = vec![KmerReadTuple::default(); n];
        let offs = metaprep_sort::partition_by_ranges(&ref_sorted, &mut dst, &boundaries);
        offs.windows(2).filter(|w| w[1] - w[0] > 1).count()
    };
    let ref_stats = RadixStats {
        passes_run: (ROUNDS * nonempty) as u64 * u64::from(KEY_BITS.div_ceil(DIGIT_BITS)),
        passes_pruned: 0,
    };
    let reference = PathResult {
        secs: ref_secs,
        mtuples_per_s: (n * ROUNDS) as f64 / ref_secs / 1e6,
        peak_alloc: ref_peak,
        stats: ref_stats,
    };

    // --- fused: scatter-on-receive + pruned radix, pooled buffers -------
    let mut bufs: PassBuffers<KmerReadTuple> = PassBuffers::new();
    // Untimed warm-up round: populates the pooled buffers once, as the
    // pipeline's first pass does (see the comment above the reference
    // warm-up).
    fused_local_sort(parts.clone(), &mut bufs, &boundaries, DIGIT_BITS, KEY_BITS);
    let mut fused_secs = 0.0;
    let mut fused_peak: Option<usize> = allocpeak::installed().then_some(0);
    let mut fused_stats = RadixStats::default();
    for round in 0..ROUNDS {
        // The pipeline gets the parts from the all-to-all for free; the
        // clone standing in for them stays outside the timed region.
        let round_parts = parts.clone();
        allocpeak::reset_peak();
        let before = allocpeak::peak_bytes();
        let t0 = Instant::now();
        let res = fused_local_sort(round_parts, &mut bufs, &boundaries, DIGIT_BITS, KEY_BITS);
        fused_secs += t0.elapsed().as_secs_f64();
        if let Some(p) = fused_peak.as_mut() {
            *p = (*p).max(allocpeak::peak_bytes() - before);
        }
        fused_stats = fused_stats.merged(res.stats);
        assert_eq!(
            bufs.sorted(),
            &ref_sorted[..],
            "fused LocalSort diverged from the reference path (round {round})"
        );
    }
    let fused = PathResult {
        secs: fused_secs,
        mtuples_per_s: (n * ROUNDS) as f64 / fused_secs / 1e6,
        peak_alloc: fused_peak,
        stats: fused_stats,
    };
    assert!(
        fused.stats.passes_pruned > 0,
        "skewed receive-side workload must prune radix passes"
    );

    let ratio = fused.mtuples_per_s / reference.mtuples_per_s;
    let fmt_peak = |p: Option<usize>| {
        p.map(|b| format!("{:.1}", b as f64 / 1e6))
            .unwrap_or_else(|| "n/a".into())
    };
    print_table(
        &format!(
            "fused vs reference LocalSort, {n} tuples x {ROUNDS} rounds, \
             {SENDERS} senders, {RANGES} sub-ranges"
        ),
        &[
            "Path",
            "Time (s)",
            "Mtuples/s",
            "Passes run",
            "Pruned",
            "Peak MB",
        ],
        &[
            vec![
                "fused (scatter-on-receive)".into(),
                format!("{:.3}", fused.secs),
                format!("{:.1}", fused.mtuples_per_s),
                fused.stats.passes_run.to_string(),
                fused.stats.passes_pruned.to_string(),
                fmt_peak(fused.peak_alloc),
            ],
            vec![
                "reference (concat+partition)".into(),
                format!("{:.3}", reference.secs),
                format!("{:.1}", reference.mtuples_per_s),
                reference.stats.passes_run.to_string(),
                reference.stats.passes_pruned.to_string(),
                fmt_peak(reference.peak_alloc),
            ],
        ],
    );
    println!("  fused is {ratio:.2}x the reference throughput");

    // --- paper §4.2.2: LocalSort vs parallel radix vs std ---------------
    comparator_table(&all);

    // --- JSON report (hand-rolled: numbers/bools/fixed labels only) -----
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let path_json = |p: &PathResult| {
        format!(
            "{{\"secs\": {:.6}, \"mtuples_per_s\": {:.3}, \"peak_alloc_bytes\": {}, \
             \"radix_passes_run\": {}, \"radix_passes_pruned\": {}}}",
            p.secs,
            p.mtuples_per_s,
            p.peak_alloc
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into()),
            p.stats.passes_run,
            p.stats.passes_pruned,
        )
    };
    let mut json = String::from("{\n  \"experiment\": \"sort_throughput\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"tuples\": {n},\n"));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str("  \"warmup_rounds\": 1,\n");
    json.push_str(&format!("  \"senders\": {SENDERS},\n"));
    json.push_str(&format!("  \"sub_ranges\": {RANGES},\n"));
    json.push_str(&format!("  \"digit_bits\": {DIGIT_BITS},\n"));
    json.push_str(&format!("  \"key_bits\": {KEY_BITS},\n"));
    json.push_str(&format!("  \"available_parallelism\": {threads},\n"));
    json.push_str(&format!(
        "  \"alloc_tracking\": {},\n",
        allocpeak::installed()
    ));
    json.push_str(&format!(
        "  \"scatter_bytes\": {},\n",
        (n * ROUNDS) as u64 * std::mem::size_of::<KmerReadTuple>() as u64
    ));
    json.push_str(&format!("  \"fused\": {},\n", path_json(&fused)));
    json.push_str(&format!("  \"reference\": {},\n", path_json(&reference)));
    json.push_str(&format!("  \"fused_over_reference\": {ratio:.3}\n}}\n"));

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_sort.json"));
    std::fs::write(&out, json).expect("write BENCH_sort.json");
    println!("wrote {}", out.display());
    out
}

/// The original §4.2.2 comparison: LocalSort vs the fully-parallel LSB
/// radix comparator vs `sort_unstable`, on uniform random keys.
fn comparator_table(input: &[KmerReadTuple]) {
    let n = input.len();
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut measure = |name: &str, f: &mut dyn FnMut(&mut Vec<KmerReadTuple>)| {
        let mut data = input.to_vec();
        let t0 = Instant::now();
        f(&mut data);
        let dt = t0.elapsed().as_secs_f64();
        assert!(
            data.windows(2).all(|w| w[0].kmer <= w[1].kmer),
            "{name} failed to sort"
        );
        rows.push(vec![
            name.to_string(),
            format!("{dt:.3}"),
            format!("{:.1}", n as f64 / dt / 1e6),
        ]);
        n as f64 / dt / 1e6
    };

    let local = measure("LocalSort (partition + serial radix)", &mut |data| {
        let mut scratch = vec![KmerReadTuple::default(); data.len()];
        local_sort(data, &mut scratch, threads.max(2), DIGIT_BITS, KEY_BITS);
    });
    let plsb = measure("Parallel LSB radix (comparator)", &mut |data| {
        let mut scratch = vec![KmerReadTuple::default(); data.len()];
        parallel_lsb_sort(data, &mut scratch, DIGIT_BITS, KEY_BITS);
    });
    measure("std sort_unstable (yardstick)", &mut |data| {
        data.sort_unstable_by_key(|t| t.kmer);
    });

    print_table(
        &format!("§4.2.2: sort throughput, {n} 16-byte tuples, {threads} thread(s)"),
        &["Sort", "Time (s)", "Mtuples/s"],
        &rows,
    );
    println!(
        "  LocalSort reaches {:.0}% of the comparator (paper: 78%)",
        100.0 * local / plsb
    );
}
