//! §4.2.2 — LocalSort vs the state-of-the-art parallel radix sort.
//!
//! The paper benchmarks its LocalSort against the NUMA-aware LSB radix
//! sort of Polychroniou & Ross and reports 154 vs 196 Mtuples/s (78%).
//! Here the comparator is our fully-parallel stable LSB radix sort, plus
//! `sort_unstable` as a familiar yardstick.

use crate::harness::print_table;
use metaprep_kmer::KmerReadTuple;
use metaprep_sort::{local_sort, parallel_lsb_sort};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Run the sort throughput comparison on `16M * scale` tuples.
pub fn run(scale: f64) {
    let n = ((1usize << 22) as f64 * scale) as usize;
    let mut rng = SmallRng::seed_from_u64(42);
    let input: Vec<KmerReadTuple> = (0..n)
        .map(|i| KmerReadTuple::new(rng.gen::<u64>() >> 10, i as u32))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut measure = |name: &str, f: &mut dyn FnMut(&mut Vec<KmerReadTuple>)| {
        let mut data = input.clone();
        let t0 = Instant::now();
        f(&mut data);
        let dt = t0.elapsed().as_secs_f64();
        assert!(
            data.windows(2).all(|w| w[0].kmer <= w[1].kmer),
            "{name} failed to sort"
        );
        rows.push(vec![
            name.to_string(),
            format!("{dt:.3}"),
            format!("{:.1}", n as f64 / dt / 1e6),
        ]);
        n as f64 / dt / 1e6
    };

    let local = measure("LocalSort (partition + serial radix)", &mut |data| {
        let mut scratch = vec![KmerReadTuple::default(); data.len()];
        local_sort(data, &mut scratch, threads.max(2), 8, 54);
    });
    let plsb = measure("Parallel LSB radix (comparator)", &mut |data| {
        let mut scratch = vec![KmerReadTuple::default(); data.len()];
        parallel_lsb_sort(data, &mut scratch, 8, 54);
    });
    measure("std sort_unstable (yardstick)", &mut |data| {
        data.sort_unstable_by_key(|t| t.kmer);
    });

    print_table(
        &format!("§4.2.2: sort throughput, {n} 16-byte tuples, {threads} thread(s)"),
        &["Sort", "Time (s)", "Mtuples/s"],
        &rows,
    );
    println!(
        "  LocalSort reaches {:.0}% of the comparator (paper: 78%)",
        100.0 * local / plsb
    );
}
