//! Table 5 — index creation time (sequential, once per dataset).

use crate::harness::{dataset, fmt_dur, print_table};
use metaprep_index::serial::{fastqpart_to_bytes, merhist_to_bytes};
use metaprep_index::{FastqPart, MerHist};
use metaprep_synth::DatasetId;
use std::time::Instant;

/// Time merHist and FASTQPart construction for every dataset.
pub fn run(scale: f64) {
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let data = dataset(id, scale);
        let chunks = if id == DatasetId::Is { 96 } else { 24 };

        let t0 = Instant::now();
        let mh = MerHist::build(&data.reads, 27, 8);
        let t_mh = t0.elapsed();

        let t0 = Instant::now();
        let fp = FastqPart::build(&data.reads, chunks, 27, 8);
        let t_fp = t0.elapsed();

        rows.push(vec![
            id.name().to_string(),
            chunks.to_string(),
            fmt_dur(t_fp),
            fmt_dur(t_mh),
            format!("{:.2}", merhist_to_bytes(&mh).len() as f64 / 1e6),
            format!("{:.2}", fastqpart_to_bytes(&fp).len() as f64 / 1e6),
        ]);
    }
    print_table(
        "Table 5: index creation time (sequential)",
        &[
            "Dataset",
            "Chunks",
            "FASTQPart (s)",
            "merHist (s)",
            "merHist MB",
            "FASTQPart MB",
        ],
        &rows,
    );
}
