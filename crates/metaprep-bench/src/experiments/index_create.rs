//! `index_create` — streaming vs in-memory IndexCreate: wall time and
//! peak allocation versus thread count.
//!
//! This experiment starts the repo's performance trajectory for the
//! streaming IndexCreate path: it writes `BENCH_index.json` (or the path
//! in `METAPREP_BENCH_OUT`) with the in-memory slurp baseline and the
//! streaming indexer at 1/2/4 threads on a file at least 10× larger than
//! the probe window, asserting along the way that every configuration
//! produces identical index tables.
//!
//! Peak memory is the [`crate::allocpeak`] high-water delta around each
//! region when the experiment binary installs [`crate::allocpeak::PeakAlloc`]
//! (`exp_index_create` does; `exp_all` does not, and the JSON then marks
//! the allocator numbers absent). `VmHWM` from the kernel is recorded as
//! a coarse, monotone cross-check.

use crate::allocpeak;
use crate::harness::{dataset, fmt_dur, fmt_mb, print_table};
use metaprep_index::{index_fastq_bytes, index_fastq_file_streaming, StreamingOptions};
use metaprep_synth::DatasetId;
use std::time::Instant;

const K: usize = 27;
const M: usize = 8;
const CHUNKS: usize = 64;

struct Measurement {
    label: String,
    secs: f64,
    peak_alloc: Option<usize>,
}

fn measure<T>(label: &str, f: impl FnOnce() -> T) -> (T, Measurement) {
    allocpeak::reset_peak();
    let before = allocpeak::peak_bytes();
    let t0 = Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    let peak_alloc = allocpeak::installed().then(|| allocpeak::peak_bytes() - before);
    (
        out,
        Measurement {
            label: label.to_string(),
            secs,
            peak_alloc,
        },
    )
}

/// Run the experiment and write the JSON report; returns the report path.
pub fn run(scale: f64) -> std::path::PathBuf {
    let data = dataset(DatasetId::Hg, scale);
    let dir = std::env::temp_dir().join(format!("metaprep_bench_index_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("reads.fastq");
    metaprep_io::write_fastq_path(&path, &data.reads).expect("write bench FASTQ");
    let file_bytes = std::fs::metadata(&path).expect("stat bench FASTQ").len();

    // A window of len/16 keeps the file >= 10x the window (the streaming
    // guarantee under test) at every scale; 64 is the floor so tiny smoke
    // files still exercise multi-probe chunking.
    let window = ((file_bytes / 16).max(64)) as usize;

    let (baseline_tables, baseline) = measure("slurp", || {
        let bytes = std::fs::read(&path).expect("read bench FASTQ");
        index_fastq_bytes(&bytes, true, CHUNKS, K, M).expect("in-memory indexing")
    });

    let mut measurements = vec![baseline];
    let mut streaming_secs = Vec::new();
    for threads in [1usize, 2, 4] {
        let opts = StreamingOptions { window, threads };
        let (tables, m) = measure(&format!("stream-t{threads}"), || {
            index_fastq_file_streaming(&path, true, CHUNKS, K, M, opts).expect("streaming indexing")
        });
        assert_eq!(
            tables, baseline_tables,
            "streaming tables diverge at {threads} threads"
        );
        streaming_secs.push((threads, m.secs));
        measurements.push(m);
    }
    std::fs::remove_dir_all(&dir).ok();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.label.clone(),
                fmt_dur(std::time::Duration::from_secs_f64(m.secs)),
                m.peak_alloc
                    .map(|b| fmt_mb(b as u64))
                    .unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    print_table(
        "index_create: streaming IndexCreate wall time and peak allocation",
        &["Config", "Time (s)", "Peak alloc MB"],
        &rows,
    );

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t1 = streaming_secs
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, s)| *s)
        .unwrap_or(f64::NAN);

    // Hand-rolled JSON: every field is a number, bool, or fixed label, so
    // no escaping is needed and the workspace stays dependency-free.
    let mut json = String::from("{\n  \"experiment\": \"index_create\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"file_bytes\": {file_bytes},\n"));
    json.push_str(&format!("  \"window_bytes\": {window},\n"));
    json.push_str(&format!(
        "  \"file_to_window_ratio\": {:.2},\n",
        file_bytes as f64 / window as f64
    ));
    json.push_str(&format!("  \"records\": {},\n", data.reads.len()));
    json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    json.push_str(&format!(
        "  \"alloc_tracking\": {},\n",
        allocpeak::installed()
    ));
    json.push_str(&format!(
        "  \"vm_hwm_bytes\": {},\n",
        allocpeak::vm_hwm_bytes()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into())
    ));
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let speedup = if m.label.starts_with("stream") && t1.is_finite() && m.secs > 0.0 {
            format!("{:.3}", t1 / m.secs)
        } else {
            "null".into()
        };
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"secs\": {:.6}, \"peak_alloc_bytes\": {}, \
             \"speedup_vs_1_thread\": {}}}{}\n",
            m.label,
            m.secs,
            m.peak_alloc
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into()),
            speedup,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_index.json"));
    std::fs::write(&out, json).expect("write BENCH_index.json");
    println!("wrote {}", out.display());
    out
}
