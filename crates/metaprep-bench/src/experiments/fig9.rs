//! Figure 9 — KmerGen/LocalSort vs the KMC2-style two-stage counter.
//!
//! Stage 1 of METAPREP = KmerGen + KmerGen-Comm; Stage 2 = LocalSort.
//! Stage 1 of KMC2 = super-k-mer scan + binning; Stage 2 = per-bin expand,
//! sort, compact. The paper's trade-off (KMC2 pays super-k-mer overhead up
//! front but sorts a compressed intermediate) shows up in the relative
//! stage splits.

use crate::harness::{dataset, fmt_dur, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_kmc::{count_kmers, KmcConfig};
use metaprep_synth::DatasetId;

/// Run both tools on HG, LL, MM.
pub fn run(scale: f64) {
    let mut rows = Vec::new();
    for id in [DatasetId::Hg, DatasetId::Ll, DatasetId::Mm] {
        let data = dataset(id, scale);

        // METAPREP stages (single task so Comm is pure concatenation).
        let cfg = PipelineConfig::builder().k(27).tasks(2).threads(1).build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        let mp_s1 = res.timings.max_of(Step::KmerGenIo)
            + res.timings.max_of(Step::KmerGen)
            + res.timings.max_of(Step::KmerGenComm);
        let mp_s2 = res.timings.max_of(Step::LocalSort);

        // KMC2-style counter.
        let kmc = count_kmers(
            &data.reads,
            KmcConfig {
                k: 27,
                minimizer_len: 7,
                bins: 256,
            },
        );

        rows.push(vec![
            format!("{} METAPREP", id.name()),
            fmt_dur(mp_s1),
            fmt_dur(mp_s2),
            fmt_dur(mp_s1 + mp_s2),
            format!("{}", res.tuples_total),
        ]);
        rows.push(vec![
            format!("{} KMC2-style", id.name()),
            fmt_dur(kmc.stage1),
            fmt_dur(kmc.stage2),
            fmt_dur(kmc.stage1 + kmc.stage2),
            format!("{} ({} binned bases)", kmc.total_kmers, kmc.binned_bases),
        ]);
    }
    print_table(
        "Figure 9: KmerGen comparison with KMC2-style counter",
        &["Tool", "Stage1 (s)", "Stage2 (s)", "Total (s)", "Records"],
        &rows,
    );
    println!("  note: KMC2's Stage 2 sorts compressed super-k-mer bins (fewer bytes than tuples)");
}
