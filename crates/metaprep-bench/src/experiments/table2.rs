//! Table 2 — dataset descriptions (scaled synthetic stand-ins).

use crate::harness::{dataset, print_table};
use metaprep_synth::{scaled_profile, DatasetId};

/// Print the scaled dataset description table and the paper's original
/// numbers for comparison.
pub fn run(scale: f64) {
    let paper: &[(&str, f64, f64)] = &[
        ("HG", 12.7, 2.29),
        ("LL", 21.3, 4.26),
        ("MM", 54.8, 11.07),
        ("IS", 1132.8, 223.26),
    ];

    let mut rows = Vec::new();
    for (i, id) in DatasetId::all().into_iter().enumerate() {
        let p = scaled_profile(id, scale);
        let d = dataset(id, scale);
        rows.push(vec![
            id.name().to_string(),
            format!("{}", d.reads.num_fragments()),
            format!("{:.2}", d.reads.total_bases() as f64 / 1e6),
            format!("{}", p.species),
            format!("{:.1}", p.mean_coverage()),
            format!("{}", paper[i].1),
            format!("{}", paper[i].2),
        ]);
    }
    print_table(
        "Table 2: datasets (synthetic stand-ins; paper columns for reference)",
        &[
            "ID",
            "Pairs R",
            "Size M (Mbp)",
            "Species",
            "Coverage",
            "Paper R (x1e6)",
            "Paper M (Gbp)",
        ],
        &rows,
    );
    println!(
        "  note: scale={scale}; synthetic sizes preserve the paper's HG < LL < MM << IS ordering"
    );
}
