//! Table 3 — multi-pass execution: time per step and memory per node for
//! S = 1, 2, 4, 8 (MM dataset, 4 tasks).
//!
//! The paper's findings reproduced here: KmerGen grows with S (input is
//! re-read each pass), LocalSort is flat (same tuple total), LocalCC
//! shrinks with S (the LocalCC-Opt component-id enumeration pays off on
//! later passes), and per-node memory drops steeply.

use crate::harness::{dataset, fmt_dur, fmt_gb, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_synth::DatasetId;

/// Run the pass sweep.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Mm, scale);
    let mut rows = Vec::new();
    for s in [1usize, 2, 4, 8] {
        let cfg = PipelineConfig::builder()
            .k(27)
            .passes(s)
            .tasks(4)
            .threads(1)
            .build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        rows.push(vec![
            s.to_string(),
            fmt_dur(res.timings.max_of(Step::KmerGen)),
            fmt_dur(res.timings.max_of(Step::KmerGenComm)),
            fmt_dur(res.timings.max_of(Step::LocalSort)),
            fmt_dur(res.timings.max_of(Step::LocalCc)),
            fmt_dur(res.timings.max_of(Step::MergeComm) + res.timings.max_of(Step::MergeCc)),
            fmt_dur(res.timings.max_of(Step::CcIo)),
            fmt_dur(res.timings.total()),
            fmt_gb(res.memory.total_modeled()),
            format!("{:.1}", res.memory.measured_peak_tuple_bytes as f64 / 1e6),
        ]);
    }
    print_table(
        "Table 3: multi-pass time and memory, MM on 4 tasks",
        &[
            "Passes",
            "KmerGen",
            "Comm",
            "LocalSort",
            "LocalCC-Opt",
            "Merge",
            "CC-I/O",
            "Total (s)",
            "Modeled GB/task",
            "Measured peak tuple MB",
        ],
        &rows,
    );
}
