//! Figure 6 — multi-node scaling for HG (1 pass), LL (2), MM (4).
//!
//! The paper scales 1..16 Edison nodes and reports per-step stacked times
//! and relative speedups (3.23x HG .. 7.5x MM at 16 nodes). Alongside the
//! wall-clock columns (flat on one core) the harness prints the per-task
//! communication volume, which is hardware-independent and reproduces the
//! paper's communication behaviour: bytes per task shrink as P grows while
//! total traffic rises.

use crate::harness::{dataset, fmt_dur, fmt_mb, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_dist::NetworkModel;
use metaprep_synth::DatasetId;

/// Run the task sweep for the three datasets.
pub fn run(scale: f64) {
    for (id, passes) in [
        (DatasetId::Hg, 1usize),
        (DatasetId::Ll, 2),
        (DatasetId::Mm, 4),
    ] {
        let data = dataset(id, scale);
        let mut rows = Vec::new();
        let mut base = None;
        for p in [1usize, 2, 4, 8, 16] {
            let cfg = PipelineConfig::builder()
                .k(27)
                .passes(passes)
                .tasks(p)
                .threads(1)
                .build();
            let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
            let total = res.timings.total();
            let b = *base.get_or_insert(total.as_secs_f64());
            let max_bytes = res.comm.iter().map(|s| s.bytes_sent).max().unwrap_or(0);
            let sum_bytes: u64 = res.comm.iter().map(|s| s.bytes_sent).sum();
            let modeled = NetworkModel::edison().critical_path(&res.comm);
            rows.push(vec![
                p.to_string(),
                fmt_dur(res.timings.max_of(Step::KmerGen)),
                fmt_dur(res.timings.max_of(Step::KmerGenComm)),
                fmt_dur(res.timings.max_of(Step::LocalSort)),
                fmt_dur(res.timings.max_of(Step::LocalCc)),
                fmt_dur(res.timings.max_of(Step::MergeComm) + res.timings.max_of(Step::MergeCc)),
                fmt_dur(total),
                format!("{:.2}x", b / total.as_secs_f64()),
                fmt_mb(max_bytes),
                fmt_mb(sum_bytes),
                format!("{:.4}", modeled.as_secs_f64()),
            ]);
        }
        print_table(
            &format!("Figure 6: multi-node scaling, {} (S={passes})", id.name()),
            &[
                "Tasks",
                "KmerGen",
                "Comm",
                "LocalSort",
                "LocalCC",
                "Merge",
                "Total (s)",
                "Speedup",
                "MaxTask MB sent",
                "Total MB sent",
                "Modeled comm s (Edison)",
            ],
            &rows,
        );
    }
    println!(
        "  note: wall-clock speedup is flat on 1 core; MB-sent columns are hardware-independent"
    );
}
