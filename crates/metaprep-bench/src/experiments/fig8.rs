//! Figure 8 — load balance among 16 tasks (MM dataset).
//!
//! The paper's box plot shows KmerGen, LocalSort and LocalCC-Opt tightly
//! balanced (thanks to the index-driven static partitioning) while the
//! MergeCC stages spread out (fewer tasks participate in later rounds).
//! This harness prints the five-number summary per step, plus the
//! per-task tuple counts whose tightness is the mechanism behind the
//! balance.

use crate::harness::{dataset, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_index::{MerHist, RangePlan};
use metaprep_synth::DatasetId;

/// Run MM on 16 tasks and print load-balance summaries.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Mm, scale);
    let p = 16usize;
    let cfg = PipelineConfig::builder()
        .k(27)
        .passes(4)
        .tasks(p)
        .threads(1)
        .build();
    let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");

    let mut rows = Vec::new();
    for step in [
        Step::KmerGen,
        Step::KmerGenComm,
        Step::LocalSort,
        Step::LocalCc,
        Step::MergeComm,
        Step::MergeCc,
        Step::CcIo,
    ] {
        let (min, q1, med, q3, max) = res.timings.five_number_summary(step);
        rows.push(vec![
            step.name().to_string(),
            format!("{min:.4}"),
            format!("{q1:.4}"),
            format!("{med:.4}"),
            format!("{q3:.4}"),
            format!("{max:.4}"),
        ]);
    }
    print_table(
        "Figure 8: load balance among 16 tasks, MM (seconds per step)",
        &["Step", "min", "q1", "median", "q3", "max"],
        &rows,
    );

    // The mechanism: per-task tuple counts under the index-driven split.
    let mh = MerHist::build(&data.reads, 27, 8);
    let plan = RangePlan::build(&mh, 4, p, 1);
    let mut counts: Vec<u64> = Vec::new();
    for task in 0..p {
        let mut c = 0u64;
        for pass in 0..4 {
            let (lo, hi) = plan.task_bin_range(pass, task);
            c += mh.count_in_bins(lo, hi);
        }
        counts.push(c);
    }
    let min = *counts.iter().min().expect("nonempty");
    let max = *counts.iter().max().expect("nonempty");
    let avg = counts.iter().sum::<u64>() / p as u64;
    println!(
        "  tuples per task: min={min} avg={avg} max={max} (max/avg = {:.3})",
        max as f64 / avg as f64
    );
}
