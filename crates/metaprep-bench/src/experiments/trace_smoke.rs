//! Trace smoke: run a small pipeline with the in-memory recorder, write
//! the Chrome trace + JSONL stream, and validate both.
//!
//! This is the observability layer's end-to-end gate (driven by
//! `cargo xtask bench-smoke`): the Chrome export must pass the schema
//! validator (Perfetto-loadable by construction), the JSONL stream must
//! round-trip through the parser, and the report rebuilt from the events
//! must reproduce the run's own `StepTimings` to the nanosecond.

use crate::{harness, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_obs::export::{parse_jsonl, validate_chrome, write_chrome, write_jsonl};
use metaprep_obs::{CounterKind, Event, MemRecorder, RunSummary, TraceAnalysis};
use metaprep_synth::DatasetId;

/// Run the smoke check; panics (fails the driver) on any validation
/// error. Writes `BENCH_trace.json` (Chrome) and `BENCH_trace.jsonl`
/// next to it; the base path comes from `METAPREP_BENCH_OUT`.
pub fn run(scale: f64) {
    let tasks = 4usize;
    let data = harness::dataset(DatasetId::Is, scale);
    let cfg = PipelineConfig::builder()
        .k(21)
        .m(6)
        .tasks(tasks)
        .threads(2)
        .passes(2)
        .build();
    let rec = MemRecorder::new(tasks);
    let res = Pipeline::new(cfg)
        .run_reads_recorded(&data.reads, &rec)
        .expect("smoke pipeline must run");

    let mut events = rec.into_events();
    if let Some(hwm) = crate::allocpeak::vm_hwm_bytes() {
        events.push(Event::Counter {
            task: 0,
            kind: CounterKind::VmHwmBytes,
            value: hwm,
        });
    }

    // Chrome export must satisfy the schema validator.
    let chrome = write_chrome(&events);
    validate_chrome(&chrome).expect("chrome trace must validate");

    // JSONL must round-trip, and the rebuilt report must agree with the
    // run's own timings exactly.
    let jsonl = write_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("jsonl must parse");
    let summary = RunSummary::from_events(&parsed);
    assert_eq!(
        summary.index_create_ns,
        res.timings.index_create.as_nanos() as u64,
        "IndexCreate drift between report and run"
    );
    for step in Step::all() {
        let per_task = summary.step_task_ns(step.name()).unwrap_or(&[]);
        for (task, tt) in res.timings.per_task.iter().enumerate() {
            assert_eq!(
                per_task.get(task).copied().unwrap_or(0),
                tt.get(step).as_nanos() as u64,
                "step {} task {task} drift between report and run",
                step.name()
            );
        }
    }

    // Causal analysis gate: the happens-before DAG rebuilt from the
    // parsed stream must be complete (every send matched, Lamport order
    // intact) and its critical path must tile the run interval exactly.
    let analysis = TraceAnalysis::from_events(&parsed);
    analysis
        .check_conservation()
        .expect("every traced send must pair with a recv");
    analysis
        .check_causality()
        .expect("lamport order must hold along every channel");
    assert_eq!(analysis.events_dropped(), 0, "recorder dropped events");
    let path = analysis.critical_path();
    assert!(!path.is_empty(), "critical path must be non-empty");
    assert_eq!(
        path.iter().map(|s| s.dur_ns()).sum::<u64>(),
        analysis.makespan_ns(),
        "critical path must tile the makespan exactly"
    );
    assert!(
        !analysis.pairs().is_empty(),
        "a {tasks}-task run must move traced messages"
    );
    // The Chrome export carries the message edges as flow events.
    assert!(
        chrome.contains("\"ph\":\"s\"") && chrome.contains("\"ph\":\"f\""),
        "chrome trace must contain flow start/finish events"
    );

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/BENCH_trace.json"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out, &chrome).expect("write chrome trace");
    let jsonl_path = out.with_extension("jsonl");
    std::fs::write(&jsonl_path, &jsonl).expect("write jsonl trace");

    let span_events = events
        .iter()
        .filter(|e| matches!(e, Event::Span { .. }))
        .count();
    let rows = vec![
        vec!["tasks".to_string(), summary.tasks.to_string()],
        vec!["span events".to_string(), span_events.to_string()],
        vec![
            "message edges".to_string(),
            analysis.pairs().len().to_string(),
        ],
        vec!["critical path segments".to_string(), path.len().to_string()],
        vec![
            "tuples".to_string(),
            summary
                .counter_total(CounterKind::TuplesEmitted)
                .to_string(),
        ],
        vec![
            "comm bytes".to_string(),
            summary.counter_total(CounterKind::BytesSent).to_string(),
        ],
        vec!["chrome".to_string(), out.display().to_string()],
        vec!["jsonl".to_string(), jsonl_path.display().to_string()],
    ];
    print_table("trace_smoke: telemetry export validation", &["", ""], &rows);
    println!("\n{}", summary.render());
}
