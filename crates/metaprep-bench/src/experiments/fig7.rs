//! Figure 7 — the large IS dataset: 16 tasks / 8 passes vs 64 tasks / 2
//! passes.
//!
//! The paper's point: quadrupling the node count lets the pass count drop
//! from 8 to 2 (more aggregate memory), and the combination yields a 3.25x
//! speedup dominated by KmerGen. Here the pass-count effect on redundant
//! work is directly visible in the KmerGen column and the per-task memory
//! column, independent of core count.

use crate::harness::{dataset, fmt_dur, fmt_gb, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_synth::DatasetId;

/// Run both IS configurations.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Is, scale);
    let mut rows = Vec::new();
    for (p, s) in [(16usize, 8usize), (64, 2)] {
        let cfg = PipelineConfig::builder()
            .k(27)
            .passes(s)
            .tasks(p)
            .threads(1)
            .build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        rows.push(vec![
            format!("P={p}, S={s}"),
            fmt_dur(res.timings.max_of(Step::KmerGenIo)),
            fmt_dur(res.timings.max_of(Step::KmerGen)),
            fmt_dur(res.timings.max_of(Step::KmerGenComm)),
            fmt_dur(res.timings.max_of(Step::LocalSort)),
            fmt_dur(res.timings.max_of(Step::LocalCc)),
            fmt_dur(res.timings.max_of(Step::MergeComm) + res.timings.max_of(Step::MergeCc)),
            fmt_dur(res.timings.total()),
            fmt_gb(res.memory.total_modeled()),
        ]);
    }
    print_table(
        "Figure 7: IS dataset, 16 nodes/8 passes vs 64 nodes/2 passes",
        &[
            "Config",
            "KmerGen-I/O",
            "KmerGen",
            "Comm",
            "LocalSort",
            "LocalCC",
            "Merge",
            "Total (s)",
            "Modeled GB/task",
        ],
        &rows,
    );
    println!("  note: paper reports 3.25x going 16->64 nodes (fewer passes + 4x parallelism)");
}
