//! Extension experiment — sparse Merge-Comm (paper §5's future-work
//! direction, after Iverson et al.'s contraction methods).
//!
//! Dense MergeCC ships a 4-byte entry per read per merge round; the sparse
//! form ships 8 bytes per *non-singleton* entry. Short reads spread over
//! many tasks leave most entries untouched, so sparse wins there; long
//! reads that touch every task favour dense. This harness sweeps task
//! counts on a short-read store and reports both.

use crate::harness::{fmt_mb, print_table};
use metaprep_core::{Pipeline, PipelineConfig};
use metaprep_io::ReadStore;

fn short_read_store(n: usize, len: usize) -> ReadStore {
    let mut reads = ReadStore::new();
    let mut x = 5u64;
    for _ in 0..n {
        let seq: Vec<u8> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                b"ACGT"[(x >> 61) as usize & 3]
            })
            .collect();
        reads.push_single(&seq);
    }
    reads
}

/// Sweep P for dense vs sparse merge payloads.
pub fn run(scale: f64) {
    let n = (20_000.0 * scale) as usize;
    let reads = short_read_store(n.max(1000), 40);
    let mut rows = Vec::new();
    for p in [4usize, 8, 16, 32] {
        let total_bytes = |sparse: bool| {
            let cfg = PipelineConfig::builder()
                .k(27)
                .m(6)
                .tasks(p)
                .merge_sparse(sparse)
                .build();
            let res = Pipeline::new(cfg).run_reads(&reads).expect("pipeline");
            res.comm.iter().map(|s| s.bytes_sent).sum::<u64>()
        };
        let dense = total_bytes(false);
        let sparse = total_bytes(true);
        rows.push(vec![
            p.to_string(),
            fmt_mb(dense),
            fmt_mb(sparse),
            format!("{:.2}x", dense as f64 / sparse as f64),
        ]);
    }
    print_table(
        &format!(
            "Extension: sparse vs dense Merge-Comm payloads ({} 40bp reads)",
            reads.len()
        ),
        &["Tasks", "Dense MB", "Sparse MB", "Reduction"],
        &rows,
    );
    println!("  (total comm bytes incl. the tuple all-to-all, which both variants share)");
}
