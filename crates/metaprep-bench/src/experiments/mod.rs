//! One module per paper table/figure. Each exposes `run(scale)`.

pub mod faults;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod index_create;
pub mod kmergen;
pub mod loom_dpor;
pub mod presolve;
pub mod quality;
pub mod sort_throughput;
pub mod sparse_merge;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8_9;
pub mod trace_smoke;
