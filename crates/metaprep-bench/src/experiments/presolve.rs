//! Presolve tier: peak memory must drop *before tuples exist*.
//!
//! The probabilistic presolve (count-min sketch fused into the streaming
//! IndexCreate scan + a `HighFreqFilter` inside KmerGen) drops k-mers
//! whose estimated occurrence count exceeds a threshold before any
//! tuple is materialised or shipped through the all-to-all. This
//! experiment quantifies the claim on a scaled synthetic community:
//!
//! 1. an exact k-mer count map picks the threshold adaptively, aiming
//!    for roughly 70% surviving tuple volume (the sketch never
//!    under-counts, so the realised survivor set can only be smaller);
//! 2. a baseline run (no filter) and a presolve run with identical
//!    geometry are compared on the *deterministic* peak metric — the
//!    maximum packed tuple bytes resident on any task in any pass —
//!    plus total tuple volume, with the resettable allocator high-water
//!    mark as a secondary, noisier reading;
//! 3. a third run hands the baseline's modeled footprint to
//!    `--memory-budget` so the adaptive pass planner (not `--passes`)
//!    chooses the schedule, demonstrating the budget-driven path.
//!
//! `BENCH_presolve.json` reports `peak_reduction_pct` (gated >= 20 by
//! `cargo xtask bench-smoke`) and `tuple_reduction_pct` (gated > 0),
//! and the binary asserts conservation: every enumerated k-mer is
//! either emitted as a tuple or counted in `presolve_dropped`.

use crate::{allocpeak, harness, print_table};
use metaprep_core::{Pipeline, PipelineConfig, PipelineConfigBuilder};
use metaprep_kmer::{for_each_canonical_kmer, Kmer64};
use metaprep_synth::DatasetId;
use std::collections::HashMap;
use std::time::Instant;

const K: usize = 21;
const M: usize = 6;
const TASKS: usize = 4;
const PASSES: usize = 2;

/// Surviving tuple-volume target the adaptive threshold aims for.
const SURVIVOR_TARGET: f64 = 0.70;

fn cfg() -> PipelineConfigBuilder {
    PipelineConfig::builder()
        .k(K)
        .m(M)
        .passes(PASSES)
        .tasks(TASKS)
        .threads(1)
}

/// Largest threshold whose surviving occurrence volume (k-mers with
/// exact count <= tau keep all their occurrences) stays at or under the
/// target fraction; 1 if even dropping everything above count 1 cannot
/// reach it.
fn adaptive_threshold(counts: &HashMap<u64, u64>, target: f64) -> (u32, u64) {
    let total: u64 = counts.values().sum();
    // Occurrence volume per distinct count value, ascending.
    let mut by_count: Vec<(u64, u64)> = {
        let mut h: HashMap<u64, u64> = HashMap::new();
        for &n in counts.values() {
            *h.entry(n).or_insert(0) += n;
        }
        h.into_iter().collect()
    };
    by_count.sort_unstable();
    let budget = (total as f64 * target) as u64;
    let mut tau = 1u64;
    let mut surviving = 0u64;
    let mut at_tau = 0u64;
    for (count, volume) in by_count {
        if surviving + volume > budget {
            break;
        }
        surviving += volume;
        tau = count;
        at_tau = surviving;
    }
    (tau.clamp(1, u64::from(u32::MAX)) as u32, at_tau)
}

struct Run {
    name: &'static str,
    wall_ms: f64,
    passes: usize,
    tuples: u64,
    dropped: u64,
    peak_tuple_bytes: u64,
    alloc_peak: u64,
}

fn measure(name: &'static str, cfg: PipelineConfig, reads: &metaprep_io::ReadStore) -> Run {
    allocpeak::reset_peak();
    let before = allocpeak::current_bytes() as u64;
    let t0 = Instant::now();
    let res = Pipeline::new(cfg)
        .run_reads(reads)
        .expect("presolve experiment pipeline must run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let alloc_peak = if allocpeak::installed() {
        (allocpeak::peak_bytes() as u64).saturating_sub(before)
    } else {
        0
    };
    Run {
        name,
        wall_ms,
        passes: res.planned_passes,
        tuples: res.tuples_total,
        dropped: res.presolve_dropped,
        peak_tuple_bytes: res.memory.measured_peak_tuple_bytes,
        alloc_peak,
    }
}

/// Run the experiment; writes `BENCH_presolve.json` and returns its path.
pub fn run(scale: f64) -> std::path::PathBuf {
    let data = harness::dataset(DatasetId::Is, scale);

    // Exact counts drive the threshold choice (and the conservation
    // check): the bench must not depend on the sketch it is evaluating.
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for (seq, _) in data.reads.iter() {
        for_each_canonical_kmer::<Kmer64>(seq, K, |v, _| {
            *counts.entry(v).or_insert(0) += 1;
        });
    }
    let total: u64 = counts.values().sum();
    let (tau, surviving_exact) = adaptive_threshold(&counts, SURVIVOR_TARGET);
    // Size the sketch to the dataset (4 counters per distinct k-mer per
    // row): with the default width this scale saturates the sketch and
    // the over-counts drop nearly everything — a false-positive artifact,
    // not the tier being measured.
    let sketch = metaprep_norm::SketchParams {
        width: (counts.len() * 4).next_power_of_two(),
        ..metaprep_norm::SketchParams::default()
    };
    println!(
        "presolve: {} distinct / {} total k-mer occurrences; tau={} keeps {:.1}% exactly \
         (sketch {}x{})",
        counts.len(),
        total,
        tau,
        100.0 * surviving_exact as f64 / total.max(1) as f64,
        sketch.depth,
        sketch.width,
    );

    let baseline = measure("baseline", cfg().build(), &data.reads);
    let presolve = measure(
        "presolve",
        cfg().presolve_threshold(tau).sketch(sketch).build(),
        &data.reads,
    );
    // Budget-driven run: hand the planner the baseline's modeled
    // footprint at the reference pass count, with no explicit --passes,
    // so the adaptive plan (not the config) picks the schedule.
    let modeled = Pipeline::new(cfg().build())
        .run_reads(&data.reads)
        .expect("modeled probe must run")
        .memory
        .total_modeled();
    let planned = measure(
        "budget-planned",
        PipelineConfig::builder()
            .k(K)
            .m(M)
            .tasks(TASKS)
            .threads(1)
            .memory_budget(modeled)
            .presolve_threshold(tau)
            .sketch(sketch)
            .build(),
        &data.reads,
    );

    let runs = [&baseline, &presolve, &planned];
    print_table(
        "presolve: probabilistic tier vs exact baseline",
        &[
            "Run",
            "Wall (ms)",
            "Passes",
            "Tuples",
            "Dropped",
            "Peak tuple MB",
            "Alloc peak MB",
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.1}", r.wall_ms),
                    r.passes.to_string(),
                    r.tuples.to_string(),
                    r.dropped.to_string(),
                    format!("{:.2}", r.peak_tuple_bytes as f64 / 1e6),
                    format!("{:.2}", r.alloc_peak as f64 / 1e6),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Conservation: enumerated == emitted + dropped, against both the
    // exact count map and the unfiltered baseline.
    assert_eq!(baseline.tuples, total, "baseline must emit every k-mer");
    assert_eq!(
        presolve.tuples + presolve.dropped,
        total,
        "presolve conservation: emitted + dropped must equal enumerated"
    );
    assert!(presolve.dropped > 0, "threshold {tau} presolved nothing");

    let pct = |base: u64, now: u64| 100.0 * (1.0 - now as f64 / base.max(1) as f64);
    let tuple_reduction_pct = pct(baseline.tuples, presolve.tuples);
    let peak_reduction_pct = pct(baseline.peak_tuple_bytes, presolve.peak_tuple_bytes);
    println!(
        "presolve: tuple volume -{tuple_reduction_pct:.1}%, peak tuple bytes -{peak_reduction_pct:.1}%"
    );
    assert!(
        peak_reduction_pct >= 20.0,
        "presolve must cut peak tuple bytes by >= 20% (got {peak_reduction_pct:.1}%)"
    );
    assert!(
        tuple_reduction_pct > 0.0,
        "presolve must shrink tuple volume (got {tuple_reduction_pct:.1}%)"
    );
    assert!(
        planned.passes >= 1,
        "budget-planned run must report its planned pass count"
    );

    let mut json = String::from("{\n  \"experiment\": \"presolve\",\n");
    json.push_str(&format!(
        "  \"k\": {K}, \"m\": {M}, \"tasks\": {TASKS}, \"passes\": {PASSES},\n"
    ));
    json.push_str(&format!("  \"threshold\": {tau},\n"));
    json.push_str(&format!(
        "  \"sketch_width\": {}, \"sketch_depth\": {},\n",
        sketch.width, sketch.depth
    ));
    json.push_str(&format!("  \"distinct_kmers\": {},\n", counts.len()));
    json.push_str(&format!("  \"total_occurrences\": {total},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"passes\": {}, \"tuples\": {}, \
             \"dropped\": {}, \"peak_tuple_bytes\": {}, \"alloc_peak_bytes\": {}}}{}\n",
            r.name,
            r.wall_ms,
            r.passes,
            r.tuples,
            r.dropped,
            r.peak_tuple_bytes,
            r.alloc_peak,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"presolve_dropped\": {},\n", presolve.dropped));
    json.push_str(&format!(
        "  \"tuple_reduction_pct\": {tuple_reduction_pct:.3},\n"
    ));
    json.push_str(&format!(
        "  \"peak_reduction_pct\": {peak_reduction_pct:.3},\n"
    ));
    json.push_str(&format!("  \"planner_budget_bytes\": {modeled},\n"));
    json.push_str(&format!("  \"planner_passes\": {}\n}}\n", planned.passes));

    let out = std::env::var("METAPREP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_presolve.json"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out, json).expect("write BENCH_presolve.json");
    println!("wrote {}", out.display());
    out
}
