//! Tables 8 & 9 — assembly time and quality with/without preprocessing.
//!
//! For each dataset the harness assembles:
//!
//! * the whole read set ("No Preproc");
//! * the METAPREP partitions without a filter (LC + Other);
//! * the METAPREP partitions with the `KF < 30` filter.
//!
//! Table 8's speedup = time(No Preproc) / (time(METAPREP) + time(LC with
//! filter)), the paper's definition (LC and Other can be assembled in
//! parallel on two nodes, so the critical path is METAPREP + max(LC,
//! Other) ≈ METAPREP + LC).

use crate::harness::{dataset, fmt_dur, print_table};
use metaprep_assembly::{assemble_multik, AssemblyConfig, AssemblyStats};
use metaprep_core::{partition_reads, Pipeline, PipelineConfig};
use metaprep_io::ReadStore;
use metaprep_synth::DatasetId;
use std::time::Duration;

struct Case {
    label: String,
    stats: AssemblyStats,
    time: Duration,
}

/// MEGAHIT-style multi-k schedule (bounded by the assembler's k <= 32).
const K_LIST: [usize; 6] = [17, 19, 21, 23, 26, 29];

fn assemble_case(label: &str, reads: &ReadStore) -> Case {
    let asm = assemble_multik(
        reads,
        &K_LIST,
        AssemblyConfig {
            k: 0, // per-step override
            min_count: 2,
            max_count: u32::MAX,
            min_contig_len: 100,
        },
    );
    Case {
        label: label.to_string(),
        stats: asm.stats,
        time: asm.elapsed,
    }
}

/// Run both tables for HG, LL, MM.
pub fn run(scale: f64) {
    let mut time_rows = Vec::new();
    let mut quality_rows = Vec::new();

    for id in [DatasetId::Hg, DatasetId::Ll, DatasetId::Mm] {
        let data = dataset(id, scale);

        // No preprocessing.
        let full = assemble_case(&format!("{} No Preproc", id.name()), &data.reads);

        // METAPREP without filter.
        let t0 = std::time::Instant::now();
        let cfg = PipelineConfig::builder().k(27).tasks(1).threads(1).build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        let parts = partition_reads(&data.reads, &res.labels, res.components.largest_root);
        let mp_time = t0.elapsed();
        let lc = assemble_case(&format!("{} LC (no filter)", id.name()), &parts.lc);
        let other = assemble_case(&format!("{} Other (no filter)", id.name()), &parts.other);

        // METAPREP with KF < 30.
        let t0 = std::time::Instant::now();
        let cfg_f = PipelineConfig::builder()
            .k(27)
            .tasks(1)
            .threads(1)
            .kf_filter(1, 29)
            .build();
        let res_f = Pipeline::new(cfg_f)
            .run_reads(&data.reads)
            .expect("pipeline");
        let parts_f = partition_reads(&data.reads, &res_f.labels, res_f.components.largest_root);
        let mp_time_f = t0.elapsed();
        let lc_f = assemble_case(&format!("{} LC (KF<30)", id.name()), &parts_f.lc);
        let other_f = assemble_case(&format!("{} Other (KF<30)", id.name()), &parts_f.other);

        let speedup = full.time.as_secs_f64() / (mp_time_f.as_secs_f64() + lc_f.time.as_secs_f64());
        time_rows.push(vec![
            id.name().to_string(),
            fmt_dur(full.time),
            fmt_dur(lc.time),
            fmt_dur(other.time),
            fmt_dur(lc_f.time),
            fmt_dur(other_f.time),
            fmt_dur(mp_time_f),
            format!("{speedup:.2}x"),
        ]);
        let _ = mp_time;

        for case in [&full, &lc, &other, &lc_f, &other_f] {
            quality_rows.push(vec![
                case.label.clone(),
                format!("{}", case.stats.contigs),
                format!("{:.3}", case.stats.total_bases as f64 / 1e6),
                format!("{}", case.stats.max_contig),
                format!("{}", case.stats.n50),
            ]);
        }
    }

    print_table(
        "Table 8: assembly time with and without preprocessing (seconds)",
        &[
            "Dataset",
            "No Preproc",
            "LC NoFilter",
            "Other NoFilter",
            "LC KF<30",
            "Other KF<30",
            "METAPREP",
            "Speedup",
        ],
        &time_rows,
    );
    println!("  speedup = NoPreproc / (METAPREP + LC-with-filter), the paper's definition");

    print_table(
        "Table 9: assembly quality",
        &["Type", "Contigs", "Total (Mbp)", "Max (bp)", "N50 (bp)"],
        &quality_rows,
    );
}
