//! Table 6 — impact of k (27 vs 63) on single-node execution time (MM).
//!
//! The paper's shape: 63-mers use 20-byte tuples but there are *fewer* of
//! them (l - k + 1 windows per read), so every step except LocalSort gets
//! cheaper; LocalSort slows down because 16 radix passes replace 8.

use crate::harness::{dataset, fmt_dur, fmt_gb, print_table};
use metaprep_core::{Pipeline, PipelineConfig, Step};
use metaprep_synth::DatasetId;

/// Run MM at k = 27 and k = 63.
pub fn run(scale: f64) {
    let data = dataset(DatasetId::Mm, scale);
    let mut rows = Vec::new();
    for k in [27usize, 63] {
        let cfg = PipelineConfig::builder().k(k).tasks(1).threads(2).build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).expect("pipeline");
        rows.push(vec![
            k.to_string(),
            fmt_dur(res.timings.max_of(Step::KmerGen)),
            fmt_dur(res.timings.max_of(Step::LocalSort)),
            fmt_dur(res.timings.max_of(Step::LocalCc)),
            fmt_dur(res.timings.max_of(Step::CcIo)),
            fmt_dur(res.timings.total()),
            format!("{}", res.tuples_total),
            fmt_gb(res.memory.kmer_in_bytes + res.memory.kmer_out_bytes),
        ]);
    }
    print_table(
        "Table 6: impact of k on single-node time, MM",
        &[
            "k",
            "KmerGen",
            "LocalSort",
            "LocalCC-Opt",
            "CC-I/O",
            "Total (s)",
            "Tuples",
            "Tuple buffers GB (modeled)",
        ],
        &rows,
    );
    println!("  note: paper sees fewer 63-mers than 27-mers, faster overall, slower LocalSort");
}
