//! `metaprep` — command-line interface to the METAPREP toolkit.
//!
//! ```text
//! metaprep simulate  --dataset hg --scale 0.5 --seed 1 --output reads.fastq
//! metaprep index     --input reads.fastq --k 27 --m 8 --chunks 64 --outdir idx/
//!                    [--stream] [--index-window 65536] [--threads 4]
//! metaprep partition --input reads.fastq --k 27 --tasks 4 --threads 2
//!                    [--passes 2] [--memory-budget 512M] [--presolve 50]
//!                    [--sketch-width 262144] [--sketch-depth 4]
//!                    [--kf 10:29] [--top 4] [--sparse] --outdir parts/
//!                    [--stream] [--index-window 65536] [--sort-digit-bits 8]
//!                    [--fault-plan "seed=7,drop=0.05,crash=rank1@pass1"]
//!                    [--checkpoint-dir ckpt/] [--max-retries 8]
//!                    [--watchdog-timeout 5000]
//! metaprep normalize --input reads.fastq --target 20 --output norm.fastq
//! metaprep trim      --input reads.fastq --quality 20 --min-len 50
//!                    [--adapter AGATCGGAAGAGC] --output trimmed.fastq
//! metaprep assemble  --input reads.fastq --k 21 --min-count 2 --output contigs.fa
//! metaprep spectrum  --input reads.fastq --k 27
//! metaprep report    --trace trace.jsonl
//! metaprep analyze   --trace trace.jsonl [--top 5] [--folded stacks.txt] [--strict]
//! ```
//!
//! All FASTQ inputs are treated as interleaved paired-end unless
//! `--unpaired` is given.
//!
//! Every subcommand accepts `--simd auto|avx2|neon|scalar` (equivalent
//! to the `METAPREP_SIMD` environment variable): pins the runtime-
//! dispatched kernel family for KmerGen and FASTQ scanning — a testing
//! knob; by default the best backend the CPU supports is used.
//!
//! `index` and `partition` accept `--trace-out <path>` (plus
//! `--trace-format jsonl|chrome`): the run's spans and counters are
//! exported either as a JSONL event stream (feed it back to
//! `metaprep report`) or as Chrome `trace_event` JSON loadable in
//! Perfetto / `chrome://tracing`.

mod args;

use args::{ArgError, Args};
use metaprep_core::{
    partition_reads, partition_top_n, write_multi_partition, write_partitions, Pipeline,
    PipelineConfig, Step,
};
use metaprep_io::{parse_fastq_path, write_fastq_path, ReadStore};
use metaprep_obs::{export, CounterKind, Event, MemRecorder, Recorder, RunSummary, SpanEvent};
use std::io::Write as _;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&argv) {
        // One structured line per failure. The usage text only helps when
        // the *invocation* was wrong (an ArgError); an I/O or pipeline
        // error drowning in a usage dump — or worse, a Debug backtrace —
        // helps nobody.
        eprintln!("error: {e}");
        if e.downcast_ref::<ArgError>().is_some() {
            eprintln!();
            eprintln!("{USAGE}");
        }
        std::process::exit(1);
    }
}

const USAGE: &str =
    "usage: metaprep <simulate|index|partition|normalize|trim|assemble|spectrum|report|analyze> [--options]
run `metaprep <command>` with missing options to see what each needs";

/// Apply `--simd auto|avx2|neon|scalar` before any hot path runs: the
/// kernel family is selected once per process, so the override must land
/// ahead of the first dispatched call (testing/debugging knob; the
/// `METAPREP_SIMD` environment variable does the same without a flag).
fn apply_simd_override(args: &Args) -> Result<(), ArgError> {
    use metaprep_kmer::simd::{force, Backend};
    let Some(v) = args.opt("simd") else {
        return Ok(());
    };
    let backend = match v.as_str() {
        "auto" => return Ok(()),
        "avx2" => Backend::Avx2,
        "neon" => Backend::Neon,
        "scalar" => Backend::Scalar,
        other => {
            return Err(ArgError(format!(
                "--simd {other:?}: expected auto, avx2, neon or scalar"
            )))
        }
    };
    force(backend)
        .map_err(|active| ArgError(format!("--simd: dispatch already resolved to {active}")))
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(argv)?;
    apply_simd_override(&args)?;
    match args.command.as_str() {
        "simulate" => cmd_simulate(&args),
        "index" => cmd_index(&args),
        "partition" => cmd_partition(&args),
        "normalize" => cmd_normalize(&args),
        "trim" => cmd_trim(&args),
        "assemble" => cmd_assemble(&args),
        "spectrum" => cmd_spectrum(&args),
        "report" => cmd_report(&args),
        "analyze" => cmd_analyze(&args),
        other => Err(Box::new(ArgError(format!("unknown subcommand {other:?}")))),
    }
}

/// Trace sink requested via `--trace-out` / `--trace-format`.
struct TraceOpts {
    path: String,
    chrome: bool,
}

fn trace_opts(args: &Args) -> Result<Option<TraceOpts>, ArgError> {
    let Some(path) = args.opt("trace-out") else {
        return Ok(None);
    };
    let fmt = args.get_or("trace-format", "jsonl".to_string())?;
    let chrome = match fmt.as_str() {
        "jsonl" => false,
        "chrome" => true,
        other => {
            return Err(ArgError(format!(
                "--trace-format must be jsonl or chrome, got {other:?}"
            )))
        }
    };
    Ok(Some(TraceOpts { path, chrome }))
}

/// Drain the recorder and write the trace file. The process's VmHWM (when
/// the kernel exposes it) rides along as a counter so the report can put
/// the memory model next to a real measurement.
fn write_trace(rec: MemRecorder, opts: &TraceOpts) -> Result<(), Box<dyn std::error::Error>> {
    let mut events = rec.into_events();
    if let Some(hwm) = metaprep_bench::allocpeak::vm_hwm_bytes() {
        events.push(Event::Counter {
            task: 0,
            kind: CounterKind::VmHwmBytes,
            value: hwm,
        });
    }
    let text = if opts.chrome {
        export::write_chrome(&events)
    } else {
        export::write_jsonl(&events)
    };
    std::fs::write(&opts.path, text)?;
    println!(
        "wrote trace ({}) -> {}",
        if opts.chrome { "chrome" } else { "jsonl" },
        opts.path
    );
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.req("trace")?;
    let src = std::fs::read_to_string(&path)?;
    let events = export::parse_jsonl(&src).map_err(ArgError)?;
    print!("{}", RunSummary::from_events(&events).render());
    Ok(())
}

/// `metaprep analyze --trace trace.jsonl [--top 5] [--folded stacks.txt]
/// [--strict]` — causal trace analysis: critical path, per-stage load
/// imbalance, stragglers, Gantt rows, and bytes over time. `--folded`
/// additionally writes collapsed stacks for flamegraph tooling;
/// `--strict` turns an incomplete or causally inconsistent trace into a
/// non-zero exit instead of a warning.
fn cmd_analyze(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_obs::TraceAnalysis;
    let path = args.req("trace")?;
    let top = args.get_or("top", 5usize)?;
    let src = std::fs::read_to_string(&path)?;
    let events = export::parse_jsonl(&src).map_err(ArgError)?;
    let a = TraceAnalysis::from_events(&events);

    let mut problems: Vec<String> = Vec::new();
    if let Err(e) = a.check_conservation() {
        problems.push(format!("message conservation: {e}"));
    }
    if let Err(e) = a.check_causality() {
        problems.push(format!("lamport causality: {e}"));
    }
    if a.events_dropped() > 0 {
        problems.push(format!(
            "trace is incomplete: {} event(s) dropped by the recorder",
            a.events_dropped()
        ));
    }

    print!("{}", a.render_report(top));

    if let Some(folded) = args.opt("folded") {
        std::fs::write(&folded, a.folded_stacks())?;
        println!("wrote folded stacks -> {folded}");
    }

    for p in &problems {
        eprintln!("warning: {p}");
    }
    if args.flag("strict") && !problems.is_empty() {
        return Err(Box::new(ArgError(format!(
            "--strict: {} problem(s) in the trace",
            problems.len()
        ))));
    }
    Ok(())
}

fn load_reads(args: &Args) -> Result<ReadStore, Box<dyn std::error::Error>> {
    let input = args.req("input")?;
    let paired = !args.flag("unpaired");
    Ok(parse_fastq_path(&input, paired)?)
}

fn cmd_simulate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_synth::{scaled_profile, simulate_community, DatasetId};
    let name = args.get_or("dataset", "hg".to_string())?;
    let id = match name.to_lowercase().as_str() {
        "hg" => DatasetId::Hg,
        "ll" => DatasetId::Ll,
        "mm" => DatasetId::Mm,
        "is" => DatasetId::Is,
        other => return Err(Box::new(ArgError(format!("unknown dataset {other:?}")))),
    };
    let scale = args.get_or("scale", 1.0f64)?;
    let seed = args.get_or("seed", 42u64)?;
    let output = args.req("output")?;
    let data = simulate_community(&scaled_profile(id, scale), seed);
    write_fastq_path(&output, &data.reads)?;
    println!(
        "wrote {} ({} pairs, {} bp, {} species)",
        output,
        data.reads.num_fragments(),
        data.reads.total_bases(),
        data.genomes.len()
    );
    Ok(())
}

fn cmd_index(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_index::serial::{write_fastqpart, write_merhist};
    use metaprep_index::{FastqPart, MerHist};
    let k = args.get_or("k", 27usize)?;
    let m = args.get_or("m", 8usize)?;
    let chunks = args.get_or("chunks", 64usize)?;
    let outdir = std::path::PathBuf::from(args.get_or("outdir", "metaprep_index".to_string())?);
    std::fs::create_dir_all(&outdir)?;
    let trace = trace_opts(args)?;
    // IndexCreate runs on one (driver) "task"; sub-phases of the streaming
    // path show up as their own spans.
    let rec = MemRecorder::new(1);

    let (mh, fp, elapsed) = if args.flag("stream") {
        // Streaming path: never materializes the input file; memory is
        // O(window + in-flight chunk bytes) per thread.
        use metaprep_index::{index_fastq_file_streaming_recorded, StreamingOptions};
        let input = args.req("input")?;
        let paired = !args.flag("unpaired");
        let opts = StreamingOptions {
            window: args.get_or("index-window", 0usize)?,
            threads: args.get_or("threads", 0usize)?,
        };
        let clock = rec.clock();
        let t0 = clock.now_ns();
        let (mh, fp, _total) =
            index_fastq_file_streaming_recorded(&input, paired, chunks, k, m, opts, &rec)?;
        let t1 = clock.now_ns();
        record_index_span(&rec, t0, t1);
        (mh, fp, std::time::Duration::from_nanos(t1 - t0))
    } else {
        let reads = load_reads(args)?;
        let clock = rec.clock();
        let t0 = clock.now_ns();
        let mh = MerHist::build(&reads, k, m);
        let fp = FastqPart::build(&reads, chunks, k, m);
        let t1 = clock.now_ns();
        record_index_span(&rec, t0, t1);
        (mh, fp, std::time::Duration::from_nanos(t1 - t0))
    };

    if let Some(t) = &trace {
        write_trace(rec, t)?;
    }
    write_merhist(outdir.join("merhist.bin"), &mh)?;
    write_fastqpart(outdir.join("fastqpart.bin"), &fp)?;
    println!(
        "indexed {} k-mers into {} chunks ({:.2}s{}) -> {}",
        mh.total(),
        fp.len(),
        elapsed.as_secs_f64(),
        if args.flag("stream") {
            ", streaming"
        } else {
            ""
        },
        outdir.display()
    );
    Ok(())
}

/// Stamp the whole IndexCreate phase as a driver-side span.
fn record_index_span(rec: &MemRecorder, t0_ns: u64, t1_ns: u64) {
    rec.record_span(SpanEvent {
        task: 0,
        name: metaprep_obs::event::INDEX_CREATE,
        pass: None,
        detail: None,
        start_ns: t0_ns,
        end_ns: t1_ns,
        // Driver-side span, outside any task's causal timeline.
        lamport: 0,
    });
}

fn parse_kf(spec: &str) -> Result<(u32, u32), ArgError> {
    let (lo, hi) = spec
        .split_once(':')
        .ok_or_else(|| ArgError(format!("--kf expects lo:hi, got {spec:?}")))?;
    let lo = lo
        .parse()
        .map_err(|_| ArgError(format!("--kf: bad lower bound {lo:?}")))?;
    let hi = hi
        .parse()
        .map_err(|_| ArgError(format!("--kf: bad upper bound {hi:?}")))?;
    Ok((lo, hi))
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024), e.g. `--memory-budget 512M`.
fn parse_bytes(spec: &str) -> Result<u64, ArgError> {
    let bad = || {
        ArgError(format!(
            "--memory-budget: bad byte count {spec:?} (try 512M, 2G)"
        ))
    };
    let (digits, shift) = match spec.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&spec[..spec.len() - 1], 10),
        Some(b'M') | Some(b'm') => (&spec[..spec.len() - 1], 20),
        Some(b'G') | Some(b'g') => (&spec[..spec.len() - 1], 30),
        _ => (spec, 0),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(bad)
}

fn cmd_partition(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut b = PipelineConfig::builder()
        .k(args.get_or("k", 27usize)?)
        .m(args.get_or("m", 8usize)?)
        .tasks(args.get_or("tasks", 1usize)?)
        .threads(args.get_or("threads", 1usize)?)
        .merge_sparse(args.flag("sparse"))
        .x4_kmergen(args.flag("x4"))
        .index_window(args.get_or("index-window", 0usize)?)
        .sort_digit_bits(args.get_or("sort-digit-bits", 8u32)?);
    // `.passes()` marks the pass count *explicit*, which changes how the
    // adaptive planner arbitrates against `--memory-budget` — so only
    // call it when the flag was actually given.
    if args.opt("passes").is_some() {
        b = b.passes(args.get_or("passes", 1usize)?);
    }
    if let Some(spec) = args.opt("memory-budget") {
        b = b.memory_budget(parse_bytes(&spec)?);
        if args.opt("passes").is_some() {
            eprintln!(
                "note: both --passes and --memory-budget given; explicit --passes wins \
                 (the run fails if it does not fit the budget)"
            );
        }
    }
    if let Some(t) = args.opt("presolve") {
        let t: u32 = t
            .parse()
            .map_err(|_| ArgError(format!("--presolve: bad threshold {t:?}")))?;
        b = b.presolve_threshold(t);
    }
    if args.opt("sketch-width").is_some() || args.opt("sketch-depth").is_some() {
        let d = metaprep_norm::SketchParams::default();
        b = b.sketch(metaprep_norm::SketchParams {
            width: args.get_or("sketch-width", d.width)?,
            depth: args.get_or("sketch-depth", d.depth)?,
            ..d
        });
    }
    if let Some(spec) = args.opt("kf") {
        let (lo, hi) = parse_kf(&spec)?;
        b = b.kf_filter(lo, hi);
    }
    // Chaos / recovery knobs: a deterministic fault plan
    // (`--fault-plan "seed=7,drop=0.05,crash=rank1@pass1"`), a checkpoint
    // directory for pass-level restart, a retry-budget override, and the
    // stall watchdog threshold.
    if let Some(spec) = args.opt("fault-plan") {
        let plan = metaprep_dist::FaultPlan::parse_spec(&spec)
            .map_err(|e| ArgError(format!("--fault-plan: {e}")))?;
        b = b.fault_plan(plan);
    }
    if let Some(dir) = args.opt("checkpoint-dir") {
        b = b.checkpoint_dir(dir);
    }
    if let Some(n) = args.opt("max-retries") {
        let n: u32 = n
            .parse()
            .map_err(|_| ArgError(format!("--max-retries: bad count {n:?}")))?;
        b = b.max_retries(n);
    }
    if let Some(ms) = args.opt("watchdog-timeout") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| ArgError(format!("--watchdog-timeout: bad milliseconds {ms:?}")))?;
        b = b.watchdog_timeout_ms(ms);
    }
    let cfg = b.build();
    cfg.validate()?;
    let outdir = args.get_or("outdir", "metaprep_parts".to_string())?;

    let trace = trace_opts(args)?;
    let tasks = cfg.tasks;
    let budgeted = cfg.memory_budget.is_some();

    // `--stream` drives the whole pipeline from the file (streaming
    // IndexCreate, per-chunk reads) instead of loading reads up front —
    // but the partition output step still needs the reads in memory.
    let reads = load_reads(args)?;
    let pipe = Pipeline::new(cfg);
    let run_with = |rec: &dyn Recorder| -> Result<_, Box<dyn std::error::Error>> {
        if args.flag("stream") {
            let input = args.req("input")?;
            let paired = !args.flag("unpaired");
            Ok(pipe.run_fastq_file_recorded(&input, paired, rec)?)
        } else {
            Ok(pipe.run_reads_recorded(&reads, rec)?)
        }
    };
    let res = match &trace {
        // Only collect events when a trace was asked for — the default
        // path keeps the zero-cost no-op recorder.
        Some(t) => {
            let rec = MemRecorder::new(tasks);
            let res = run_with(&rec)?;
            write_trace(rec, t)?;
            res
        }
        None => run_with(&metaprep_obs::NoopRecorder::new())?,
    };
    println!(
        "{} fragments -> {} components; largest = {:.2}% of reads",
        res.labels.len(),
        res.components.components,
        100.0 * res.largest_component_fraction()
    );
    for step in Step::all() {
        println!(
            "  {:<13} {:.3}s",
            step.name(),
            res.timings.max_of(step).as_secs_f64()
        );
    }
    println!(
        "  IndexCreate   {:.3}s   comm {:.2} MB   modeled {:.1} MB/task",
        res.timings.index_create.as_secs_f64(),
        res.comm.iter().map(|s| s.bytes_sent).sum::<u64>() as f64 / 1e6,
        res.memory.total_modeled() as f64 / 1e6
    );
    if budgeted || res.presolve_dropped > 0 {
        println!(
            "  presolve/plan: {} passes planned, {} k-mers dropped before tuple generation",
            res.planned_passes, res.presolve_dropped
        );
    }

    let top = args.get_or("top", 0usize)?;
    if top > 0 {
        let parts = partition_top_n(&reads, &res.labels, top, args.get_or("min-size", 2usize)?);
        write_multi_partition(&outdir, &parts)?;
        println!(
            "wrote {} component files + rest.fastq to {outdir}",
            parts.buckets.len()
        );
    } else {
        let parts = partition_reads(&reads, &res.labels, res.components.largest_root);
        write_partitions(&outdir, &parts)?;
        println!(
            "wrote lc.fastq ({} reads) and other.fastq ({} reads) to {outdir}",
            parts.lc.len(),
            parts.other.len()
        );
    }
    Ok(())
}

fn cmd_normalize(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_norm::{normalize, NormalizeConfig};
    let reads = load_reads(args)?;
    let cfg = NormalizeConfig {
        k: args.get_or("k", 20usize)?,
        target: args.get_or("target", 20u64)?,
        sketch_width: args.get_or("sketch-width", 1usize << 22)?,
        sketch_depth: args.get_or("sketch-depth", 4usize)?,
        seed: args.get_or("seed", 0xD16E57u64)?,
    };
    let output = args.req("output")?;
    let res = normalize(&reads, cfg);
    write_fastq_path(&output, &res.reads)?;
    println!(
        "kept {} / dropped {} fragments ({:.1}% kept, sketch {:.1} MB) -> {}",
        res.kept,
        res.dropped,
        100.0 * res.keep_fraction(),
        res.sketch_bytes as f64 / 1e6,
        output
    );
    Ok(())
}

fn cmd_trim(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_io::{trim_adapter, trim_quality};
    let reads = load_reads(args)?;
    let min_len = args.get_or("min-len", 50usize)?;
    let q = args.get_or("quality", 20u8)?;
    let threshold = q.saturating_add(33); // Phred+33 encoding
    let output = args.req("output")?;

    let (mut out, qstats) = trim_quality(&reads, threshold, min_len);
    let mut astats = None;
    if let Some(adapter) = args.opt("adapter") {
        let (trimmed, st) = trim_adapter(&out, adapter.as_bytes(), 4, min_len);
        out = trimmed;
        astats = Some(st);
    }
    write_fastq_path(&output, &out)?;
    println!(
        "quality trim: kept {} dropped {} fragments, {} bases removed",
        qstats.kept_fragments, qstats.dropped_fragments, qstats.bases_trimmed
    );
    if let Some(st) = astats {
        println!(
            "adapter trim: kept {} dropped {} fragments, {} bases removed",
            st.kept_fragments, st.dropped_fragments, st.bases_trimmed
        );
    }
    println!("wrote {output} ({} reads)", out.len());
    Ok(())
}

fn cmd_assemble(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_assembly::{assemble, AssemblyConfig};
    let reads = load_reads(args)?;
    let cfg = AssemblyConfig {
        k: args.get_or("k", 21usize)?,
        min_count: args.get_or("min-count", 2u32)?,
        max_count: args.get_or("max-count", u32::MAX)?,
        min_contig_len: args.get_or("min-contig", 100usize)?,
    };
    let output = args.req("output")?;
    let asm = assemble(&reads, cfg);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&output)?);
    for (i, contig) in asm.contigs.iter().enumerate() {
        writeln!(f, ">contig_{i} len={}", contig.len())?;
        for line in contig.chunks(80) {
            f.write_all(line)?;
            f.write_all(b"\n")?;
        }
    }
    f.flush()?;
    println!(
        "{} contigs, {} bp total, max {}, N50 {} ({:.2}s) -> {}",
        asm.stats.contigs,
        asm.stats.total_bases,
        asm.stats.max_contig,
        asm.stats.n50,
        asm.elapsed.as_secs_f64(),
        output
    );
    Ok(())
}

fn cmd_spectrum(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use metaprep_kmc::{count_kmers, KmcConfig};
    let reads = load_reads(args)?;
    let res = count_kmers(
        &reads,
        KmcConfig {
            k: args.get_or("k", 27usize)?,
            minimizer_len: args.get_or("minimizer", 7usize)?,
            bins: args.get_or("bins", 256usize)?,
        },
    );
    println!(
        "{} occurrences, {} distinct, max count {}",
        res.total_kmers, res.distinct_kmers, res.max_count
    );
    let mut spectrum = std::collections::BTreeMap::new();
    for bin in &res.counts_per_bin {
        for &(_, c) in bin {
            *spectrum.entry(c).or_insert(0u64) += 1;
        }
    }
    for (c, n) in spectrum.iter().take(30) {
        println!("{c:>6} {n}");
    }
    Ok(())
}
