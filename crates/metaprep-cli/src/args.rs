//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Argument parsing failure with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `argv[1..]`: first token is the subcommand, the rest are
    /// `--key value` pairs or bare `--switch` flags.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let command = argv
            .first()
            .cloned()
            .ok_or_else(|| ArgError("missing subcommand".into()))?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 1;
        while i < argv.len() {
            let tok = &argv[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --option, got {tok:?}")))?;
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                options.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<String, ArgError> {
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Optional string option.
    pub fn opt(&self, key: &str) -> Option<String> {
        self.options.get(key).cloned()
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// Bare `--switch` presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        let v: Vec<String> = toks.iter().map(|s| s.to_string()).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["partition", "--k", "27", "--sparse", "--input", "x.fastq"]);
        assert_eq!(a.command, "partition");
        assert_eq!(a.req("input").unwrap(), "x.fastq");
        assert_eq!(a.get_or("k", 0usize).unwrap(), 27);
        assert!(a.flag("sparse"));
        assert!(!a.flag("paired"));
    }

    #[test]
    fn missing_required_errors() {
        let a = parse(&["index"]);
        assert!(a.req("input").is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["x"]);
        assert_eq!(a.get_or("threads", 4usize).unwrap(), 4);
    }

    #[test]
    fn bad_numbers_error() {
        let a = parse(&["x", "--k", "notanumber"]);
        assert!(a.get_or("k", 1usize).is_err());
    }

    #[test]
    fn empty_argv_errors() {
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn non_option_token_errors() {
        let v = vec!["cmd".to_string(), "oops".to_string()];
        assert!(Args::parse(&v).is_err());
    }
}
