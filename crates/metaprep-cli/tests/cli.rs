//! End-to-end tests of the `metaprep` binary: exit codes, error
//! plumbing, and the chaos quick-start flow (simulate → partition with a
//! fault plan + checkpoints + trace → analyze --strict).

use std::path::PathBuf;
use std::process::{Command, Output};

fn metaprep(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_metaprep"))
        .args(args)
        .output()
        .expect("spawn metaprep")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaprep_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let out = metaprep(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("usage: metaprep"), "{err}");
}

#[test]
fn missing_required_option_shows_usage() {
    let out = metaprep(&["partition"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("usage: metaprep"), "{err}");
}

#[test]
fn io_errors_are_one_structured_line_without_usage_or_backtrace() {
    // A missing input file is an expected runtime failure, not a usage
    // mistake: exactly one `error:` line, no usage dump, no Debug/panic
    // noise.
    let out = metaprep(&["partition", "--input", "/nonexistent/reads.fastq"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
    assert!(!err.contains("usage:"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
    assert!(!err.contains("RUST_BACKTRACE"), "{err}");
}

#[test]
fn bad_fault_plan_spec_is_an_arg_error() {
    let out = metaprep(&[
        "partition",
        "--input",
        "whatever.fastq",
        "--fault-plan",
        "drop=not-a-number",
    ]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--fault-plan"), "{err}");
    assert!(err.contains("usage: metaprep"), "{err}");
}

#[test]
fn chaos_quickstart_partitions_and_analyzes_a_faulted_trace() {
    let dir = tmpdir("chaos");
    let reads = dir.join("reads.fastq");
    let trace = dir.join("trace.jsonl");
    let ckpt = dir.join("ckpt");
    let parts = dir.join("parts");

    let out = metaprep(&[
        "simulate",
        "--dataset",
        "hg",
        "--scale",
        "0.01",
        "--seed",
        "1",
        "--output",
        reads.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    let out = metaprep(&[
        "partition",
        "--input",
        reads.to_str().unwrap(),
        "--k",
        "21",
        "--m",
        "6",
        "--tasks",
        "4",
        "--passes",
        "2",
        "--fault-plan",
        "seed=7,drop=0.05,dup=0.05,reorder=0.05,crash=rank1@pass1",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--watchdog-timeout",
        "20000",
        "--trace-out",
        trace.to_str().unwrap(),
        "--outdir",
        parts.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(ckpt.join("rank1.ckpt").exists(), "no checkpoint written");

    let out = metaprep(&["analyze", "--trace", trace.to_str().unwrap(), "--strict"]);
    assert!(
        out.status.success(),
        "--strict rejected the faulted trace: {}",
        stderr_of(&out)
    );
    let report = stdout_of(&out);
    assert!(report.contains("fault injection & recovery"), "{report}");
    assert!(report.contains("task 1 restarted"), "{report}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn memory_budget_alone_engages_the_planner() {
    let dir = tmpdir("budget");
    let reads = dir.join("reads.fastq");
    let out = metaprep(&[
        "simulate",
        "--scale",
        "0.01",
        "--seed",
        "3",
        "--output",
        reads.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = metaprep(&[
        "partition",
        "--input",
        reads.to_str().unwrap(),
        "--k",
        "21",
        "--m",
        "6",
        "--tasks",
        "2",
        "--memory-budget",
        "1G",
        "--presolve",
        "50",
        "--outdir",
        dir.join("parts").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let report = stdout_of(&out);
    assert!(report.contains("passes planned"), "{report}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explicit_passes_with_budget_warns_and_wins_or_errors() {
    let dir = tmpdir("arbitrate");
    let reads = dir.join("reads.fastq");
    let out = metaprep(&[
        "simulate",
        "--scale",
        "0.01",
        "--seed",
        "3",
        "--output",
        reads.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Consistent pair: explicit --passes fits a huge budget. The run
    // succeeds and the arbitration note lands on stderr.
    let out = metaprep(&[
        "partition",
        "--input",
        reads.to_str().unwrap(),
        "--k",
        "21",
        "--m",
        "6",
        "--tasks",
        "2",
        "--passes",
        "2",
        "--memory-budget",
        "4G",
        "--outdir",
        dir.join("parts").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("explicit --passes wins"),
        "{}",
        stderr_of(&out)
    );

    // Inconsistent pair: one pass cannot fit a 1-byte budget. Config
    // error, one structured line, no usage dump.
    let out = metaprep(&[
        "partition",
        "--input",
        reads.to_str().unwrap(),
        "--k",
        "21",
        "--m",
        "6",
        "--tasks",
        "2",
        "--passes",
        "1",
        "--memory-budget",
        "1",
        "--outdir",
        dir.join("parts2").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("memory budget"), "{err}");
    assert!(!err.contains("usage:"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_memory_budget_suffix_is_an_arg_error() {
    let out = metaprep(&[
        "partition",
        "--input",
        "whatever.fastq",
        "--memory-budget",
        "12Q",
    ]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("--memory-budget"), "{err}");
    assert!(err.contains("usage: metaprep"), "{err}");
}

#[test]
fn crashes_without_checkpoint_dir_are_rejected_up_front() {
    let dir = tmpdir("nockpt");
    let reads = dir.join("reads.fastq");
    let out = metaprep(&[
        "simulate",
        "--scale",
        "0.01",
        "--output",
        reads.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = metaprep(&[
        "partition",
        "--input",
        reads.to_str().unwrap(),
        "--tasks",
        "2",
        "--fault-plan",
        "seed=1,crash=rank0@pass0",
    ]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("checkpoint_dir"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
