//! Three-way property-based differential test: the lock-free
//! [`ConcurrentDisjointSet`] (paper Algorithm 1), the sequential
//! [`DisjointSet`] oracle, and the Cybenko-style critical-section
//! baseline ([`locked_components`]) must agree on the partition for
//! every generated edge stream.
//!
//! This complements the loom model tests (`tests/loom.rs`): loom proves
//! the 2–3 thread micro-schedules exhaustively; this test cross-checks
//! the three implementations over *many* random graphs at real rayon
//! parallelism, where each run is one sampled schedule.

use metaprep_cc::concurrent::ConcurrentDisjointSet;
use metaprep_cc::locked::locked_components;
use metaprep_cc::seq::DisjointSet;
use proptest::prelude::*;

/// Two labelings describe the same partition iff label pairing is a
/// bijection in both directions.
fn same_partition(a: &[u32], b: &[u32]) -> bool {
    assert_eq!(a.len(), b.len());
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

fn sequential(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut ds = DisjointSet::new(n);
    for &(u, v) in edges {
        ds.union(u, v);
    }
    ds.into_component_array()
}

fn concurrent(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let cds = ConcurrentDisjointSet::new(n);
    cds.process_edges_parallel(edges);
    cds.to_component_array()
}

proptest! {
    /// Random multigraphs (self-loops and duplicates included): all
    /// three implementations agree with each other.
    #[test]
    fn prop_three_way_agreement(
        n in 1usize..120,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..300),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let seq = sequential(n, &edges);
        let conc = concurrent(n, &edges);
        let lock = locked_components(n, &edges);
        prop_assert!(same_partition(&conc, &seq), "concurrent vs sequential");
        prop_assert!(same_partition(&lock, &seq), "locked vs sequential");
    }

    /// Contention-heavy shape: star graphs force every union through the
    /// same root, the worst case for the CAS re-verification loop and
    /// the lock alike.
    #[test]
    fn prop_three_way_agreement_star(
        n in 2usize..200,
        extra in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..50),
    ) {
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        edges.extend(extra.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)));
        let seq = sequential(n, &edges);
        let conc = concurrent(n, &edges);
        let lock = locked_components(n, &edges);
        prop_assert!(same_partition(&conc, &seq), "concurrent vs sequential");
        prop_assert!(same_partition(&lock, &seq), "locked vs sequential");
    }

    /// Component-count agreement on sparse graphs (many components
    /// survive, exercising the "no accidental extra unions" direction —
    /// partition bijection already implies it, this pins the count).
    #[test]
    fn prop_component_counts_match(
        n in 1usize..100,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let count = |arr: &[u32]| {
            let mut roots: Vec<u32> = arr.to_vec();
            roots.sort_unstable();
            roots.dedup();
            roots.len()
        };
        let seq = sequential(n, &edges);
        prop_assert_eq!(count(&concurrent(n, &edges)), count(&seq));
        prop_assert_eq!(count(&locked_components(n, &edges)), count(&seq));
    }
}
