//! Loom model tests for the concurrent union-find (paper Algorithm 1).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p metaprep-cc --test loom
//! ```
//!
//! Under that cfg, `metaprep_cc::sync` re-exports the model-checked
//! atomics, so `find` / `try_link` / `process_edge` below run against
//! the *exact* production code while the model exhaustively enumerates
//! every interleaving of their atomic operations. Each test body is
//! re-executed once per distinct schedule; an assertion must hold in
//! all of them.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use metaprep_cc::concurrent::ConcurrentDisjointSet;
use metaprep_cc::seq::DisjointSet;

/// Partition-equality up to relabeling: `a` and `b` group indices
/// identically iff label pairing is a bijection.
fn same_partition(a: &[u32], b: &[u32]) -> bool {
    assert_eq!(a.len(), b.len());
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

fn reference(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut ds = DisjointSet::new(n);
    for &(u, v) in edges {
        ds.union(u, v);
    }
    ds.into_component_array()
}

/// Structural invariant of union-by-index that must hold in EVERY
/// intermediate and final state: parents never decrease, so the forest
/// is acyclic by construction and every `find` terminates.
fn assert_monotone_parents(ds: &ConcurrentDisjointSet) {
    for x in 0..ds.len() as u32 {
        let r = ds.find(x);
        assert!(r >= x, "union-by-index must point upward: find({x}) = {r}");
        assert_eq!(ds.find(r), r, "find must return a root");
    }
}

/// Two concurrent unions racing on the SHARED root 0: thread A links
/// (0,1), thread B links (0,2). Exactly one CAS on `parent[0]` can win;
/// the loser's edge reports "distinct roots" and is re-verified, which
/// is the paper's replacement for Cybenko's critical sections. Across
/// every interleaving the re-verified result must equal the sequential
/// partition {0,1,2}.
#[test]
fn racing_unions_on_shared_root_converge() {
    loom::model(|| {
        let ds = Arc::new(ConcurrentDisjointSet::new(3));
        let edges = [(0u32, 1u32), (0, 2)];

        let handles: Vec<_> = edges
            .iter()
            .map(|&(u, v)| {
                let ds = Arc::clone(&ds);
                thread::spawn(move || ds.process_edge(u, v))
            })
            .collect();
        let pending: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // The racing threads are done; the forest must already be a
        // valid union-by-index forest (no cycles, no lost cells) …
        assert_monotone_parents(&ds);

        // … and at least one of the two unions must have landed: both
        // observed root 0 for vertex 0, and the first CAS on a
        // singleton root cannot fail.
        let arr = ds.to_component_array();
        let merged = arr.iter().filter(|&&r| r != arr[0]).count() < 2;
        assert!(merged, "no union landed despite two attempts: {arr:?}");

        // Re-verify surviving edges exactly as Algorithm 1 does, then
        // the partition must be the sequential one.
        let survivors: Vec<(u32, u32)> = edges
            .iter()
            .zip(&pending)
            .filter(|(_, &p)| p)
            .map(|(&e, _)| e)
            .collect();
        ds.process_edges_serial(&survivors);
        assert!(
            same_partition(&ds.to_component_array(), &reference(3, &edges)),
            "diverged from sequential result"
        );
    });
}

/// Raw `try_link` race: both threads attempt to link the same pair of
/// roots (0,1). Union-by-index CASes `parent[0]` from 0 to 1, so
/// exactly one call may report having performed the link.
#[test]
fn try_link_on_same_roots_has_one_winner() {
    loom::model(|| {
        let ds = Arc::new(ConcurrentDisjointSet::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let ds = Arc::clone(&ds);
                thread::spawn(move || ds.try_link(0, 1))
            })
            .collect();
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one CAS may win: {wins:?}"
        );
        assert_eq!(ds.find(0), 1);
        assert_eq!(ds.find(1), 1);
    });
}

/// Three threads, one `try_link` each, all touching overlapping roots
/// of a chain: (0,1), (1,2), (0,2). Whatever the interleaving, the
/// surviving forest must stay acyclic and monotone, and re-verifying
/// the original edges must connect all of {0,1,2}.
#[test]
fn three_way_link_race_stays_acyclic() {
    loom::model(|| {
        let ds = Arc::new(ConcurrentDisjointSet::new(3));
        let links = [(0u32, 1u32), (1, 2), (0, 2)];
        let handles: Vec<_> = links
            .iter()
            .map(|&(a, b)| {
                let ds = Arc::clone(&ds);
                thread::spawn(move || ds.try_link(a, b))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_monotone_parents(&ds);

        // Algorithm 1 re-verifies every edge until none connects two
        // distinct roots; afterwards this must be one component.
        ds.process_edges_serial(&links);
        let arr = ds.to_component_array();
        assert!(
            arr.iter().all(|&r| r == arr[0]),
            "triangle must collapse to one component: {arr:?}"
        );
    });
}

/// `find` racing with a union on the path it is walking: thread A
/// repeatedly resolves vertex 0 while thread B links (0,1) then (1,2).
/// Every value A observes must be a then-or-earlier root of 0's
/// component (0, 1, or 2) and the final resolution is 2.
#[test]
fn find_races_with_path_growth() {
    loom::model(|| {
        let ds = Arc::new(ConcurrentDisjointSet::new(3));
        let finder = {
            let ds = Arc::clone(&ds);
            thread::spawn(move || ds.find(0))
        };
        let linker = {
            let ds = Arc::clone(&ds);
            thread::spawn(move || {
                ds.try_link(0, 1);
                let r = ds.find(1);
                ds.try_link(r, 2);
            })
        };
        let seen = finder.join().unwrap();
        linker.join().unwrap();
        assert!(seen <= 2, "find(0) returned a vertex outside the chain");
        assert_eq!(ds.find(0), 2, "after both links, 0 resolves to 2");
        assert_monotone_parents(&ds);
    });
}
