//! Shiloach–Vishkin connected components (the AP_LB stand-in).
//!
//! Flick et al. — the paper's Table 4 comparator — parallelize CC with an
//! iterative Shiloach–Vishkin algorithm whose iteration count grows with
//! the graph (they report 19–21 iterations on the paper's datasets, vs the
//! fixed `log P` merge rounds of METAPREP). This implementation counts
//! iterations so the experiment harness can reproduce that comparison.
//!
//! Each iteration performs conditional hooking (roots hook onto the
//! smallest neighbouring label) followed by full pointer jumping
//! (shortcutting), the classic CRCW formulation adapted to shared memory.

use crate::sync::{AtomicBool, AtomicU32, Ordering};
use rayon::prelude::*;

/// Result of a Shiloach–Vishkin run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SvResult {
    /// Final component label per vertex (label = min vertex id of the
    /// component).
    pub labels: Vec<u32>,
    /// Number of hook+jump iterations until stabilization.
    pub iterations: usize,
}

/// Run Shiloach–Vishkin over `n` vertices and an explicit edge list.
pub fn shiloach_vishkin(n: usize, edges: &[(u32, u32)]) -> SvResult {
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut iterations = 0usize;

    loop {
        let changed = AtomicBool::new(false);

        // Hooking: for every edge (u, v), try to hang the *root* of the
        // larger-labeled endpoint onto the smaller label. min-CAS keeps the
        // race benign: labels only ever decrease.
        // ORDERING: Relaxed throughout the hook phase — labels only move
        // monotonically downward via CAS, stale reads merely delay
        // convergence, and the rayon scope join fence publishes the phase's
        // writes before the jump phase reads them.
        edges.par_iter().for_each(|&(u, v)| {
            // ORDERING: Relaxed loads: see phase comment above.
            let pu = parent[u as usize].load(Ordering::Relaxed);
            let pv = parent[v as usize].load(Ordering::Relaxed);
            if pu == pv {
                return;
            }
            let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
            // Hook only roots (parent[hi] == hi), the SV "conditional hook".
            // ORDERING: Relaxed CAS: see phase comment above.
            if parent[hi as usize]
                .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                // ORDERING: Relaxed flag: read only after the scope joins.
                changed.store(true, Ordering::Relaxed);
            }
        });

        // Pointer jumping until every vertex points at a root ("shortcut").
        loop {
            let jumped = AtomicBool::new(false);
            // ORDERING: Relaxed as in the hook phase — pointer jumping is
            // monotone and each round is separated by a scope join fence.
            (0..n).into_par_iter().for_each(|i| {
                // ORDERING: Relaxed: see the jump-phase comment above.
                let p = parent[i].load(Ordering::Relaxed);
                let gp = parent[p as usize].load(Ordering::Relaxed);
                if p != gp {
                    // ORDERING: Relaxed store/flag: monotone jump, read
                    // only after the scope join fence.
                    parent[i].store(gp, Ordering::Relaxed);
                    jumped.store(true, Ordering::Relaxed);
                }
            });
            // ORDERING: Relaxed read after the scope join fence.
            if !jumped.load(Ordering::Relaxed) {
                break;
            }
        }

        iterations += 1;
        // ORDERING: Relaxed read after the scope join fence.
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    SvResult {
        labels: parent.into_iter().map(|a| a.into_inner()).collect(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DisjointSet;
    use proptest::prelude::*;

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    fn reference(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut ds = DisjointSet::new(n);
        for &(u, v) in edges {
            ds.union(u, v);
        }
        ds.into_component_array()
    }

    #[test]
    fn no_edges_single_iteration() {
        let r = shiloach_vishkin(5, &[]);
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn chain_converges_to_min_label() {
        let n = 64;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let r = shiloach_vishkin(n as usize, &edges);
        assert!(r.labels.iter().all(|&l| l == 0));
        // A chain needs multiple hook+jump rounds.
        assert!(r.iterations >= 2, "iterations={}", r.iterations);
    }

    #[test]
    fn iterations_grow_with_chain_length() {
        let run = |n: u32| {
            let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            shiloach_vishkin(n as usize, &edges).iterations
        };
        // The iteration count is the comparator's weakness (Table 4): it
        // grows with graph structure while union-find + merge does not.
        assert!(run(4096) >= run(16));
    }

    #[test]
    fn matches_union_find_partition() {
        let n = 50;
        let edges = vec![(0u32, 10), (10, 20), (5, 6), (30, 40), (40, 41), (41, 30)];
        let r = shiloach_vishkin(n, &edges);
        assert!(same_partition(&r.labels, &reference(n, &edges)));
    }

    #[test]
    fn self_loops_are_harmless() {
        let r = shiloach_vishkin(3, &[(1, 1), (0, 2)]);
        assert!(same_partition(&r.labels, &reference(3, &[(0, 2)])));
    }

    proptest! {
        #[test]
        fn prop_matches_union_find(
            n in 1usize..60,
            raw in proptest::collection::vec((0u32..60, 0u32..60), 0..150),
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let r = shiloach_vishkin(n, &edges);
            prop_assert!(same_partition(&r.labels, &reference(n, &edges)));
            // Labels are fully compressed (point at a fixed point).
            for &l in &r.labels {
                prop_assert_eq!(r.labels[l as usize], l);
            }
        }
    }
}
