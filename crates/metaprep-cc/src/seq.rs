//! Sequential union-find with path splitting and union-by-index.

/// A disjoint-set forest over vertices `0..n` (`n <= u32::MAX`).
///
/// `Find` uses path splitting (every node on the query path is re-pointed
/// to its grandparent — Tarjan & van Leeuwen's one-pass compaction, paper
/// §3.5); `Union` is by index: the root with the *lower* index is attached
/// under the root with the *higher* index. Union-by-index gives up the
/// balanced-tree guarantee but can never create a cycle under concurrent
/// use, and path splitting keeps trees shallow in practice.
#[derive(Clone, Debug)]
pub struct DisjointSet {
    parent: Vec<u32>,
}

impl DisjointSet {
    /// Create `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure has no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `x`'s component, with path splitting.
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = p;
        }
    }

    /// Root of `x`'s component without modifying the structure.
    #[inline]
    pub fn find_readonly(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merge the components of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Union-by-index: lower-index root points to higher-index root.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        true
    }

    /// True if `a` and `b` are in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Fully compress: point every vertex directly at its root, and return
    /// the parent array. This is the component array `p` that MergeCC
    /// exchanges between tasks (paper §3.6).
    pub fn into_component_array(mut self) -> Vec<u32> {
        for x in 0..self.parent.len() as u32 {
            let r = self.find(x);
            self.parent[x as usize] = r;
        }
        self.parent
    }

    /// Compress in place and expose the parent array without consuming.
    pub fn component_array(&mut self) -> &[u32] {
        for x in 0..self.parent.len() as u32 {
            let r = self.find(x);
            self.parent[x as usize] = r;
        }
        &self.parent
    }

    /// Number of components (roots).
    pub fn count_components(&self) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(i, &p)| i as u32 == p)
            .count()
    }

    /// Construct from a raw parent array (for tests and MergeCC).
    ///
    /// # Panics
    /// Panics if any parent index is out of range.
    pub fn from_parent_array(parent: Vec<u32>) -> Self {
        let n = parent.len() as u32;
        assert!(parent.iter().all(|&p| p < n), "parent index out of range");
        Self { parent }
    }

    /// The RAW parent array — no compression, no find. The checkpoint
    /// primitive for the merge phase: restoring this exact tree (via
    /// [`DisjointSet::from_parent_array`]) makes a replay byte-identical,
    /// where a compressed [`DisjointSet::component_array`] snapshot would
    /// change later path-compression order and could legally relabel.
    pub fn raw_parents(&self) -> &[u32] {
        &self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let ds = DisjointSet::new(5);
        assert_eq!(ds.count_components(), 5);
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn union_merges_and_reports() {
        let mut ds = DisjointSet::new(4);
        assert!(ds.union(0, 1));
        assert!(!ds.union(0, 1));
        assert!(ds.connected(0, 1));
        assert!(!ds.connected(0, 2));
        assert_eq!(ds.count_components(), 3);
    }

    #[test]
    fn union_by_index_root_is_max() {
        let mut ds = DisjointSet::new(10);
        ds.union(2, 7);
        assert_eq!(ds.find(2), 7);
        ds.union(7, 3);
        assert_eq!(ds.find(3), 7);
        // Union of roots 7 and 9 -> 9 wins.
        ds.union(2, 9);
        assert_eq!(ds.find(2), 9);
        assert_eq!(ds.find(7), 9);
    }

    #[test]
    fn transitive_connectivity() {
        let mut ds = DisjointSet::new(6);
        ds.union(0, 1);
        ds.union(1, 2);
        ds.union(4, 5);
        assert!(ds.connected(0, 2));
        assert!(!ds.connected(2, 4));
        assert_eq!(ds.count_components(), 3); // {0,1,2}, {3}, {4,5}
    }

    #[test]
    fn component_array_is_fully_compressed() {
        let mut ds = DisjointSet::new(5);
        ds.union(0, 1);
        ds.union(1, 2);
        let arr = ds.component_array().to_vec();
        assert_eq!(arr[0], arr[1]);
        assert_eq!(arr[1], arr[2]);
        assert_eq!(arr[3], 3);
        // Every entry points directly at a root.
        for &p in &arr {
            assert_eq!(arr[p as usize], p);
        }
    }

    #[test]
    fn find_readonly_matches_find() {
        let mut ds = DisjointSet::new(8);
        ds.union(0, 3);
        ds.union(3, 6);
        ds.union(1, 2);
        for x in 0..8u32 {
            assert_eq!(ds.find_readonly(x), ds.clone().find(x));
        }
    }

    #[test]
    fn from_parent_array_roundtrip() {
        let mut ds = DisjointSet::new(4);
        ds.union(0, 2);
        let arr = ds.into_component_array();
        let ds2 = DisjointSet::from_parent_array(arr.clone());
        assert_eq!(ds2.count_components(), 3);
    }

    #[test]
    #[should_panic]
    fn from_parent_array_rejects_out_of_range() {
        DisjointSet::from_parent_array(vec![0, 5]);
    }

    #[test]
    fn raw_parents_expose_the_uncompressed_tree() {
        let mut ds = DisjointSet::new(4);
        ds.union(0, 1);
        ds.union(1, 2);
        // Raw parents roundtrip exactly (checkpoint contract)...
        let raw = ds.raw_parents().to_vec();
        let ds2 = DisjointSet::from_parent_array(raw.clone());
        assert_eq!(ds2.raw_parents(), &raw[..]);
        // ...and are NOT forced into compressed component form: after
        // compression the arrays still answer the same queries.
        let compressed = ds.component_array().to_vec();
        let mut from_raw = DisjointSet::from_parent_array(raw);
        assert_eq!(from_raw.component_array(), &compressed[..]);
    }

    #[test]
    fn empty_set() {
        let ds = DisjointSet::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.count_components(), 0);
    }

    /// Reference connectivity via BFS adjacency.
    fn reference_labels(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if label[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s as u32];
            label[s] = next;
            while let Some(x) = stack.pop() {
                for &y in &adj[x as usize] {
                    if label[y as usize] == usize::MAX {
                        label[y as usize] = next;
                        stack.push(y);
                    }
                }
            }
            next += 1;
        }
        label
    }

    proptest! {
        #[test]
        fn prop_matches_bfs(
            n in 1usize..60,
            edges in proptest::collection::vec((0u32..60, 0u32..60), 0..120),
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let mut ds = DisjointSet::new(n);
            for &(u, v) in &edges {
                ds.union(u, v);
            }
            let want = reference_labels(n, &edges);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(
                        ds.connected(a, b),
                        want[a as usize] == want[b as usize]
                    );
                }
            }
        }
    }
}
