//! Component statistics — the numbers behind paper Tables 7–9.

/// Summary of a component labeling.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of components.
    pub components: usize,
    /// Size of the largest component.
    pub largest: usize,
    /// Root label of the largest component.
    pub largest_root: u32,
    /// Sizes of all components, descending.
    pub sizes_desc: Vec<usize>,
}

impl ComponentStats {
    /// Compute stats from a fully-compressed component array (every entry
    /// points directly at its root, as produced by
    /// [`crate::seq::DisjointSet::component_array`]).
    pub fn from_component_array(arr: &[u32]) -> Self {
        let mut size_of_root = std::collections::HashMap::new();
        for &r in arr {
            *size_of_root.entry(r).or_insert(0usize) += 1;
        }
        let (largest_root, largest) = size_of_root
            .iter()
            .max_by_key(|&(&r, &s)| (s, std::cmp::Reverse(r)))
            .map(|(&r, &s)| (r, s))
            .unwrap_or((0, 0));
        let mut sizes_desc: Vec<usize> = size_of_root.values().copied().collect();
        sizes_desc.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            vertices: arr.len(),
            components: size_of_root.len(),
            largest,
            largest_root,
            sizes_desc,
        }
    }

    /// Fraction of vertices in the largest component — the "LC size
    /// (% Reads)" column of paper Table 7.
    pub fn largest_fraction(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.largest as f64 / self.vertices as f64
        }
    }

    /// Number of singleton components.
    pub fn singletons(&self) -> usize {
        self.sizes_desc.iter().filter(|&&s| s == 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DisjointSet;

    fn stats_of(n: usize, edges: &[(u32, u32)]) -> ComponentStats {
        let mut ds = DisjointSet::new(n);
        for &(u, v) in edges {
            ds.union(u, v);
        }
        ComponentStats::from_component_array(ds.component_array())
    }

    #[test]
    fn all_singletons() {
        let s = stats_of(4, &[]);
        assert_eq!(s.components, 4);
        assert_eq!(s.largest, 1);
        assert_eq!(s.singletons(), 4);
        assert!((s.largest_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn one_giant_component() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let s = stats_of(10, &edges);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest, 10);
        assert_eq!(s.largest_fraction(), 1.0);
        assert_eq!(s.sizes_desc, vec![10]);
    }

    #[test]
    fn mixed_components() {
        let s = stats_of(7, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(s.components, 4); // {0,1,2},{3,4},{5},{6}
        assert_eq!(s.largest, 3);
        assert_eq!(s.sizes_desc, vec![3, 2, 1, 1]);
        assert_eq!(s.singletons(), 2);
    }

    #[test]
    fn largest_root_identifies_the_giant() {
        let mut ds = DisjointSet::new(5);
        ds.union(0, 1);
        ds.union(1, 2);
        let arr = ds.component_array().to_vec();
        let s = ComponentStats::from_component_array(&arr);
        // Vertices 0,1,2 share the largest_root label.
        assert_eq!(arr[0], s.largest_root);
        assert_eq!(arr[1], s.largest_root);
        assert_eq!(arr[2], s.largest_root);
        assert_ne!(arr[3], s.largest_root);
    }

    #[test]
    fn empty_array() {
        let s = ComponentStats::from_component_array(&[]);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.largest_fraction(), 0.0);
    }
}
