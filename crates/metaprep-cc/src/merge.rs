//! MergeCC: absorbing a remote task's component array (paper §3.6).
//!
//! In the distributed merge, a receiving task treats an incoming component
//! array `p'` as a batch of edges: entry `i` encodes the edge `(i, p'[i])`,
//! because vertex `i` and its label are in one component on the sending
//! task. [`absorb_parent_array`] replays those edges into the local forest.
//! The pairwise log₂P schedule that decides who sends to whom lives in the
//! pipeline (`metaprep-core`); this module is the per-step merge kernel.

use crate::seq::DisjointSet;

/// Merge a received component array into `local`.
///
/// # Panics
/// Panics if the arrays disagree on vertex count.
pub fn absorb_parent_array(local: &mut DisjointSet, remote: &[u32]) {
    assert_eq!(
        local.len(),
        remote.len(),
        "component arrays must cover the same vertex set"
    );
    for (i, &p) in remote.iter().enumerate() {
        if p != i as u32 {
            local.union(i as u32, p);
        }
    }
}

/// Sparse form of a component array: only the entries where a vertex is
/// *not* its own root, as `(vertex, root)` pairs.
///
/// This is the communication-reduction direction the paper's §5 points at
/// (component-graph contraction, Iverson et al.): a task that saw only a
/// slice of the k-mer range leaves most reads untouched, so its component
/// array is mostly the identity — sending just the non-trivial entries
/// shrinks Merge-Comm volume. The pipeline exposes it as the
/// `merge_sparse` option; `exp_fig6`-style runs show the byte reduction.
pub fn sparse_pairs(ds: &mut DisjointSet) -> Vec<(u32, u32)> {
    ds.component_array()
        .iter()
        .enumerate()
        .filter(|&(i, &r)| i as u32 != r)
        .map(|(i, &r)| (i as u32, r))
        .collect()
}

/// Merge a received sparse component representation into `local`.
pub fn absorb_sparse_pairs(local: &mut DisjointSet, pairs: &[(u32, u32)]) {
    for &(v, r) in pairs {
        local.union(v, r);
    }
}

/// Merge many component arrays pairwise, mirroring the `ceil(log2 P)`
/// communication rounds of Figure 4: in round `d`, task `t` with
/// `t & (2^d) != 0` sends to task `t - 2^d`. Returns the final component
/// array (what rank 0 holds). Used by tests and the shared-memory path.
pub fn merge_all(mut arrays: Vec<Vec<u32>>) -> Vec<u32> {
    assert!(!arrays.is_empty());
    let p = arrays.len();
    let mut stride = 1usize;
    while stride < p {
        for lo in (0..p).step_by(2 * stride) {
            let hi = lo + stride;
            if hi < p {
                let remote = std::mem::take(&mut arrays[hi]);
                let mut local = DisjointSet::from_parent_array(std::mem::take(&mut arrays[lo]));
                absorb_parent_array(&mut local, &remote);
                arrays[lo] = local.into_component_array();
            }
        }
        stride *= 2;
    }
    arrays.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn array_of(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut ds = DisjointSet::new(n);
        for &(u, v) in edges {
            ds.union(u, v);
        }
        ds.into_component_array()
    }

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn absorb_unions_remote_components() {
        let n = 6;
        let mut local = DisjointSet::from_parent_array(array_of(n, &[(0, 1)]));
        let remote = array_of(n, &[(1, 2), (4, 5)]);
        absorb_parent_array(&mut local, &remote);
        assert!(local.connected(0, 2));
        assert!(local.connected(4, 5));
        assert!(!local.connected(0, 4));
        assert_eq!(local.count_components(), 3); // {0,1,2},{3},{4,5}
    }

    #[test]
    fn merge_all_equals_union_of_edge_sets() {
        let n = 12;
        let parts: Vec<Vec<(u32, u32)>> = vec![
            vec![(0, 1), (2, 3)],
            vec![(3, 4)],
            vec![(6, 7), (8, 9)],
            vec![(9, 10), (1, 2)],
        ];
        let arrays: Vec<Vec<u32>> = parts.iter().map(|e| array_of(n, e)).collect();
        let merged = merge_all(arrays);
        let all: Vec<(u32, u32)> = parts.concat();
        let want = array_of(n, &all);
        assert!(same_partition(&merged, &want));
    }

    #[test]
    fn merge_all_single_array_is_identity() {
        let a = array_of(4, &[(0, 3)]);
        assert_eq!(merge_all(vec![a.clone()]), a);
    }

    #[test]
    fn merge_all_non_power_of_two_task_counts() {
        let n = 10;
        for p in [2usize, 3, 5, 6, 7] {
            let parts: Vec<Vec<(u32, u32)>> = (0..p)
                .map(|t| vec![((t as u32) % n as u32, ((t as u32 * 3) + 1) % n as u32)])
                .collect();
            let arrays: Vec<Vec<u32>> = parts.iter().map(|e| array_of(n, e)).collect();
            let merged = merge_all(arrays);
            let all: Vec<(u32, u32)> = parts.concat();
            assert!(same_partition(&merged, &array_of(n, &all)), "p={p}");
        }
    }

    #[test]
    fn sparse_pairs_roundtrip_equals_dense() {
        let n = 10;
        let mut a = DisjointSet::from_parent_array(array_of(n, &[(0, 1), (2, 3), (3, 4)]));
        let pairs = sparse_pairs(&mut a);
        // Only non-root vertices appear.
        assert!(pairs.iter().all(|&(v, r)| v != r));
        // Components {0,1} (root 1) and {2,3,4} (root 4): vertices 0, 2, 3
        // are non-roots.
        assert_eq!(pairs.len(), 3);
        let mut dense_target = DisjointSet::new(n);
        absorb_parent_array(&mut dense_target, a.component_array());
        let mut sparse_target = DisjointSet::new(n);
        absorb_sparse_pairs(&mut sparse_target, &pairs);
        assert!(same_partition(
            sparse_target.component_array(),
            dense_target.component_array()
        ));
    }

    #[test]
    fn sparse_is_smaller_for_mostly_identity_arrays() {
        let n = 1000;
        let mut ds = DisjointSet::from_parent_array(array_of(n, &[(0, 1), (5, 6)]));
        let pairs = sparse_pairs(&mut ds);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn sparse_empty_for_singletons() {
        let mut ds = DisjointSet::new(5);
        assert!(sparse_pairs(&mut ds).is_empty());
    }

    #[test]
    #[should_panic]
    fn absorb_rejects_length_mismatch() {
        let mut local = DisjointSet::new(3);
        absorb_parent_array(&mut local, &[0, 1]);
    }

    proptest! {
        #[test]
        fn prop_merge_is_edge_union(
            n in 2usize..40,
            seed_edges in proptest::collection::vec(
                proptest::collection::vec((0u32..40, 0u32..40), 0..20), 1..6),
        ) {
            let parts: Vec<Vec<(u32, u32)>> = seed_edges
                .into_iter()
                .map(|es| es.into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect())
                .collect();
            let arrays: Vec<Vec<u32>> = parts.iter().map(|e| array_of(n, e)).collect();
            let merged = merge_all(arrays);
            let all: Vec<(u32, u32)> = parts.concat();
            prop_assert!(same_partition(&merged, &array_of(n, &all)));
        }
    }
}
