//! Concurrent union-find — the paper's Algorithm 1 (LocalCC, §3.5).
//!
//! Threads process disjoint batches of read-graph edges without any
//! synchronization beyond single-word CAS:
//!
//! * `Find` uses path splitting; the splitting write is a CAS so a
//!   concurrent union on the same cell is never overwritten;
//! * `Union` is by index via CAS on the root cell, which cannot create
//!   cycles when races occur (the paper's reason for preferring it over
//!   union-by-size);
//! * every edge whose endpoints had distinct roots is buffered and
//!   re-verified on the next iteration (the paper's replacement for
//!   Cybenko's critical sections); iteration ends when no edge connects two
//!   distinct roots.

#[cfg(not(loom))]
use rayon::prelude::*;

use crate::sync::{AtomicU32, Ordering};

/// Union-find operation counts, accumulated thread-locally by the
/// `_tracked` entry points below (no atomics — each worker owns its own
/// stats and the caller merges them), then surfaced as telemetry
/// counters by the pipeline.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UfOpStats {
    /// `find` calls executed.
    pub finds: u64,
    /// Successful path-splitting CASes inside `find`.
    pub path_splits: u64,
    /// Successful link CASes (each reduces the component count by 1).
    pub unions: u64,
}

impl UfOpStats {
    /// Fold `other` into `self` (merging per-thread partials).
    pub fn merge(&mut self, other: UfOpStats) {
        self.finds += other.finds;
        self.path_splits += other.path_splits;
        self.unions += other.unions;
    }
}

/// A concurrent disjoint-set forest over vertices `0..n`.
pub struct ConcurrentDisjointSet {
    parent: Vec<AtomicU32>,
}

impl ConcurrentDisjointSet {
    /// Create `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `x`'s component with CAS-guarded path splitting. Safe to
    /// call from many threads concurrently.
    #[inline]
    pub fn find(&self, x: u32) -> u32 {
        // The no-op split hook inlines away: `find` compiles to the same
        // loop it always was, while `find_tracked` shares this one body.
        self.find_with(x, || {})
    }

    /// [`ConcurrentDisjointSet::find`] that also counts the operation and
    /// its successful path-splitting CASes into `ops`.
    #[inline]
    pub fn find_tracked(&self, x: u32, ops: &mut UfOpStats) -> u32 {
        ops.finds += 1;
        let splits = &mut ops.path_splits;
        self.find_with(x, || *splits += 1)
    }

    #[inline]
    fn find_with(&self, mut x: u32, mut on_split: impl FnMut()) -> u32 {
        loop {
            // ORDERING: Acquire pairs with the AcqRel link/split CASes so a
            // parent value read here carries the edge that installed it.
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            // ORDERING: Acquire as above; reading a stale grandparent only
            // costs an extra hop, never correctness.
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Split: re-point x at its grandparent. A failed CAS just
                // means someone else already moved it — keep walking.
                // ORDERING: AcqRel publishes the shortcut; Relaxed on failure
                // is fine because the loop re-reads via Acquire loads.
                if self.parent[x as usize]
                    .compare_exchange_weak(p, gp, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    on_split();
                }
            }
            x = p;
        }
    }

    /// Attempt to link roots `ra` and `rb` (union-by-index). Returns `true`
    /// if this call performed the link. Callers must pass *roots*; stale
    /// roots simply fail the CAS and the caller's edge gets re-verified.
    #[inline]
    pub fn try_link(&self, ra: u32, rb: u32) -> bool {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        // ORDERING: AcqRel publishes the union to subsequent Acquire finds;
        // Relaxed on failure because a lost race is handled by re-verifying
        // the edge, not by inspecting the observed value.
        self.parent[lo as usize]
            .compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Process one edge. Returns `true` if the roots were distinct (the
    /// edge must then be re-verified in the next iteration).
    #[inline]
    pub fn process_edge(&self, u: u32, v: u32) -> bool {
        let ru = self.find(u);
        let rv = self.find(v);
        if ru == rv {
            return false;
        }
        self.try_link(ru, rv);
        true
    }

    /// [`ConcurrentDisjointSet::process_edge`] counting finds, path
    /// splits and successful unions into `ops`.
    #[inline]
    pub fn process_edge_tracked(&self, u: u32, v: u32, ops: &mut UfOpStats) -> bool {
        let ru = self.find_tracked(u, ops);
        let rv = self.find_tracked(v, ops);
        if ru == rv {
            return false;
        }
        if self.try_link(ru, rv) {
            ops.unions += 1;
        }
        true
    }

    /// Algorithm 1 of the paper, parallelized with rayon: process all
    /// edges; edges that observed distinct roots are buffered and
    /// re-processed until a full pass performs no unions. Returns the
    /// number of verification iterations executed (>= 1 for nonempty input;
    /// the paper notes the first iteration dominates the running time).
    #[cfg(not(loom))]
    pub fn process_edges_parallel(&self, edges: &[(u32, u32)]) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut iterations = 1usize;
        let mut pending: Vec<(u32, u32)> = edges
            .par_iter()
            .copied()
            .filter(|&(u, v)| self.process_edge(u, v))
            .collect();
        // Termination: an edge survives a pass only if it observed distinct
        // roots; once its link (or a competing one) lands, the next pass
        // sees equal roots and drops it. Component count strictly decreases
        // while any edge survives, so the loop is finite.
        while !pending.is_empty() {
            iterations += 1;
            pending = pending
                .par_iter()
                .copied()
                .filter(|&(u, v)| self.process_edge(u, v))
                .collect();
        }
        iterations
    }

    /// [`ConcurrentDisjointSet::process_edges_parallel`] with operation
    /// counting: edges are split into one chunk per pool thread, each
    /// chunk accumulates a thread-local [`UfOpStats`] (no shared counters
    /// on the per-edge path), and the partials merge into `ops` after
    /// every pass.
    #[cfg(not(loom))]
    pub fn process_edges_parallel_tracked(
        &self,
        edges: &[(u32, u32)],
        ops: &mut UfOpStats,
    ) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let mut iterations = 1usize;
        let mut pending = self.tracked_pass(edges, ops);
        while !pending.is_empty() {
            iterations += 1;
            let next = self.tracked_pass(&pending, ops);
            pending = next;
        }
        iterations
    }

    /// One tracked verification pass: returns the edges that observed
    /// distinct roots and must be re-verified.
    #[cfg(not(loom))]
    fn tracked_pass(&self, edges: &[(u32, u32)], ops: &mut UfOpStats) -> Vec<(u32, u32)> {
        let nthreads = rayon::current_num_threads().max(1);
        let chunk_len = edges.len().div_ceil(nthreads).max(1);
        let chunks: Vec<&[(u32, u32)]> = edges.chunks(chunk_len).collect();
        let partials: Vec<(Vec<(u32, u32)>, UfOpStats)> = chunks
            .par_iter()
            .map(|part| {
                let mut local = UfOpStats::default();
                let mut keep = Vec::new();
                for &(u, v) in *part {
                    if self.process_edge_tracked(u, v, &mut local) {
                        keep.push((u, v));
                    }
                }
                (keep, local)
            })
            .collect();
        let mut pending = Vec::new();
        for (keep, local) in partials {
            pending.extend(keep);
            ops.merge(local);
        }
        pending
    }

    /// Sequential edge processing (used by tests and small merges).
    pub fn process_edges_serial(&self, edges: &[(u32, u32)]) {
        let mut current: Vec<(u32, u32)> = edges.to_vec();
        while !current.is_empty() {
            current.retain(|&(u, v)| self.process_edge(u, v));
        }
    }

    /// Snapshot into a fully-compressed component array.
    pub fn to_component_array(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|x| self.find(x))
            .collect()
    }

    /// Consume into a sequential [`crate::seq::DisjointSet`].
    pub fn into_disjoint_set(self) -> crate::seq::DisjointSet {
        let parent: Vec<u32> = self.parent.into_iter().map(|a| a.into_inner()).collect();
        crate::seq::DisjointSet::from_parent_array(parent)
    }

    /// Snapshot the RAW parent array — no find, no compression.
    ///
    /// This is the checkpoint primitive: replaying a pipeline from a
    /// checkpoint is byte-identical only if the restored structure is
    /// the exact tree the crashed run had (a compressed snapshot like
    /// [`ConcurrentDisjointSet::to_component_array`] answers the same
    /// component queries but changes later path-splitting and union
    /// order, so labels could legally differ). Call only at a quiescent
    /// boundary: concurrent mutators would make the snapshot a torn mix
    /// of old and new parents.
    pub fn parent_snapshot(&self) -> Vec<u32> {
        self.parent
            .iter()
            // ORDERING: Acquire — pairs with the AcqRel link/split CASes so
            // a quiescent-point snapshot observes every completed update;
            // at a true quiescent boundary Relaxed would also do, but the
            // snapshot must not depend on the caller getting that right.
            .map(|a| a.load(Ordering::Acquire))
            .collect()
    }

    /// Rebuild from a raw parent array (the inverse of
    /// [`ConcurrentDisjointSet::parent_snapshot`]): the restored set has
    /// the exact tree structure of the snapshot, so a replay from it is
    /// byte-identical to the run that took it.
    ///
    /// # Panics
    /// Panics if any parent index is out of range.
    pub fn from_parent_array(parent: Vec<u32>) -> Self {
        let n = parent.len() as u32;
        assert!(parent.iter().all(|&p| p < n), "parent index out of range");
        Self {
            parent: parent.into_iter().map(AtomicU32::new).collect(),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::seq::DisjointSet;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn labels_of(arr: &[u32]) -> Vec<u32> {
        arr.to_vec()
    }

    fn reference_array(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut ds = DisjointSet::new(n);
        for &(u, v) in edges {
            ds.union(u, v);
        }
        ds.into_component_array()
    }

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        // Two labelings describe the same partition iff the pairing of
        // labels is a bijection.
        assert_eq!(a.len(), b.len());
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn empty_edges() {
        let ds = ConcurrentDisjointSet::new(4);
        let it = ds.process_edges_parallel(&[]);
        assert_eq!(it, 0);
        assert_eq!(ds.to_component_array(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_connects_everything() {
        let n = 1000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let ds = ConcurrentDisjointSet::new(n as usize);
        ds.process_edges_parallel(&edges);
        let arr = ds.to_component_array();
        assert!(arr.iter().all(|&r| r == arr[0]));
        // Union-by-index: the final root is the max index.
        assert_eq!(arr[0], n - 1);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(5);
        for trial in 0..20 {
            let n = rng.gen_range(2..500);
            let m = rng.gen_range(0..2 * n);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let cds = ConcurrentDisjointSet::new(n);
            cds.process_edges_parallel(&edges);
            let got = cds.to_component_array();
            let want = reference_array(n, &edges);
            assert!(same_partition(&got, &want), "trial {trial}");
        }
    }

    #[test]
    fn serial_processing_matches() {
        let edges = vec![(0, 1), (2, 3), (1, 2), (5, 6)];
        let cds = ConcurrentDisjointSet::new(8);
        cds.process_edges_serial(&edges);
        let got = cds.to_component_array();
        let want = reference_array(8, &edges);
        assert!(same_partition(&labels_of(&got), &want));
    }

    #[test]
    fn into_disjoint_set_preserves_components() {
        let edges = vec![(0, 1), (1, 2)];
        let cds = ConcurrentDisjointSet::new(5);
        cds.process_edges_parallel(&edges);
        let mut ds = cds.into_disjoint_set();
        assert!(ds.connected(0, 2));
        assert!(!ds.connected(0, 3));
        assert_eq!(ds.count_components(), 3);
    }

    #[test]
    fn parent_snapshot_roundtrips_the_exact_tree() {
        let cds = ConcurrentDisjointSet::new(64);
        let edges: Vec<(u32, u32)> = (0..63).map(|i| (i, i + 1)).collect();
        cds.process_edges_serial(&edges);
        let snap = cds.parent_snapshot();
        // The snapshot is the raw tree, not a compressed component array.
        let restored = ConcurrentDisjointSet::from_parent_array(snap.clone());
        assert_eq!(restored.parent_snapshot(), snap, "restore must be exact");
        // And a replayed operation sequence behaves identically: same
        // finds, same resulting structure.
        let more: Vec<(u32, u32)> = vec![(0, 63), (5, 40)];
        let a = ConcurrentDisjointSet::from_parent_array(snap.clone());
        let b = ConcurrentDisjointSet::from_parent_array(snap);
        a.process_edges_serial(&more);
        b.process_edges_serial(&more);
        assert_eq!(a.parent_snapshot(), b.parent_snapshot());
        assert_eq!(a.to_component_array(), b.to_component_array());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parent_array_rejects_out_of_range_parents() {
        let _ = ConcurrentDisjointSet::from_parent_array(vec![0, 5, 1]);
    }

    #[test]
    fn heavy_contention_single_component() {
        // Star graph: every edge touches vertex 0 -> maximal CAS contention.
        let n = 20_000u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
        let cds = ConcurrentDisjointSet::new(n as usize);
        cds.process_edges_parallel(&edges);
        let arr = cds.to_component_array();
        assert!(arr.iter().all(|&r| r == arr[0]));
    }

    #[test]
    fn duplicate_and_self_edges() {
        let edges = vec![(1, 1), (1, 1), (2, 3), (2, 3), (3, 2)];
        let cds = ConcurrentDisjointSet::new(5);
        cds.process_edges_parallel(&edges);
        let mut ds = cds.into_disjoint_set();
        assert_eq!(ds.count_components(), 4); // {0},{1},{2,3},{4}
        assert!(ds.connected(2, 3));
    }

    #[test]
    fn find_is_idempotent_under_concurrency() {
        let n = 10_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let cds = ConcurrentDisjointSet::new(n as usize);
        cds.process_edges_parallel(&edges);
        // Concurrent finds after convergence all agree.
        let roots: Vec<u32> = (0..n).into_par_iter().map(|x| cds.find(x)).collect();
        assert!(roots.iter().all(|&r| r == roots[0]));
    }

    #[test]
    fn tracked_matches_untracked_and_counts_unions_exactly() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..10 {
            let n = rng.gen_range(2..400);
            let m = rng.gen_range(0..2 * n);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let cds = ConcurrentDisjointSet::new(n);
            let mut ops = UfOpStats::default();
            let iterations = cds.process_edges_parallel_tracked(&edges, &mut ops);
            let got = cds.to_component_array();
            let want = reference_array(n, &edges);
            assert!(same_partition(&got, &want), "trial {trial}");
            // Every successful link merges exactly two components, so the
            // union count equals the drop in component count.
            let components = {
                let mut roots = got.clone();
                roots.sort_unstable();
                roots.dedup();
                roots.len()
            };
            assert_eq!(ops.unions, (n - components) as u64, "trial {trial}");
            // Each processed edge performs exactly two finds per pass.
            assert!(ops.finds >= 2 * m as u64, "trial {trial}");
            if m > 0 {
                assert!(iterations >= 1);
            }
        }
    }

    #[test]
    fn tracked_find_counts() {
        let ds = ConcurrentDisjointSet::new(4);
        let mut ops = UfOpStats::default();
        // Build a chain 0->1->2 manually, then find(0) must split paths.
        assert!(ds.try_link(0, 1));
        assert!(ds.try_link(1, 2));
        assert_eq!(ds.find_tracked(0, &mut ops), 2);
        assert_eq!(ops.finds, 1);
        assert!(ops.path_splits >= 1);
        let mut more = UfOpStats::default();
        more.merge(ops);
        assert_eq!(more, ops);
    }

    proptest! {
        #[test]
        fn prop_matches_sequential(
            n in 1usize..80,
            raw in proptest::collection::vec((0u32..80, 0u32..80), 0..200),
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let cds = ConcurrentDisjointSet::new(n);
            cds.process_edges_parallel(&edges);
            let got = cds.to_component_array();
            let want = reference_array(n, &edges);
            prop_assert!(same_partition(&got, &want));
        }
    }
}
