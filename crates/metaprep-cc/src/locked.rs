//! Mutex-protected union-find baseline.
//!
//! Cybenko et al. (the paper's §3.5 reference) made concurrent unions safe
//! by treating each `Union` as a critical section. METAPREP replaces the
//! critical section with CAS + buffered re-verification; this module keeps
//! the critical-section variant alive as the ablation baseline
//! (`bench_unionfind` compares the two under contention).

use crate::seq::DisjointSet;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Compute the component array of a graph by processing `edges` in
/// parallel, with every union executed under a global mutex.
pub fn locked_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let ds = Mutex::new(DisjointSet::new(n));
    edges.par_iter().for_each(|&(u, v)| {
        // Find + union both under the lock: the simplest correct form of
        // the critical-section approach (finds mutate via path splitting,
        // so they cannot be safely lock-free on the plain structure).
        ds.lock().union(u, v);
    });
    ds.into_inner().into_component_array()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentDisjointSet;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn matches_lock_free_implementation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 2000;
        let edges: Vec<(u32, u32)> = (0..4000)
            .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
            .collect();
        let locked = locked_components(n, &edges);
        let cds = ConcurrentDisjointSet::new(n);
        cds.process_edges_parallel(&edges);
        let lock_free = cds.to_component_array();
        assert!(same_partition(&locked, &lock_free));
    }

    #[test]
    fn empty_graph() {
        assert_eq!(locked_components(3, &[]), vec![0, 1, 2]);
    }
}
