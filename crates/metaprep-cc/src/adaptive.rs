//! Adaptive connectivity (after Jain et al., the paper's reference [8]).
//!
//! Jain et al.'s observation: metagenomic read graphs are a giant
//! component plus dust. An *adaptive* algorithm exploits that shape —
//! first peel the giant component with a cheap parallel BFS from a
//! high-degree seed, then run union-find only on the leftover edges
//! (most of which the BFS already covered). The paper cites this as the
//! other distributed-CC approach functionally equivalent to MergeCC; it
//! is implemented here as a third baseline next to union-find and
//! Shiloach–Vishkin.

use crate::seq::DisjointSet;
use crate::sync::{AtomicBool, Ordering};
use rayon::prelude::*;

/// Result of an adaptive CC run.
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// Fully-compressed component label per vertex.
    pub labels: Vec<u32>,
    /// Vertices reached by the BFS phase (giant-component size when the
    /// seed lies inside it).
    pub bfs_reached: usize,
    /// Edges processed by the cleanup union-find phase.
    pub cleanup_edges: usize,
}

/// Compressed sparse adjacency built once from the edge list.
struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    fn build(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n]];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Csr { offsets, targets }
    }

    fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    fn max_degree_vertex(&self) -> Option<u32> {
        (0..self.offsets.len() - 1)
            .max_by_key(|&i| self.offsets[i + 1] - self.offsets[i])
            .map(|i| i as u32)
    }
}

/// Label components adaptively: parallel level-synchronous BFS from the
/// highest-degree vertex, then union-find over edges not internal to the
/// BFS tree's component.
pub fn adaptive_components(n: usize, edges: &[(u32, u32)]) -> AdaptiveResult {
    if n == 0 {
        return AdaptiveResult {
            labels: Vec::new(),
            bfs_reached: 0,
            cleanup_edges: 0,
        };
    }
    let csr = Csr::build(n, edges);
    let seed = csr.max_degree_vertex().unwrap_or(0);

    // Phase 1: parallel BFS. label = seed for reached vertices.
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    // ORDERING: Relaxed everywhere in the BFS — `swap` makes claiming a
    // vertex atomic on the single `visited` word (no other memory is
    // published through it), and the per-level rayon join fences order the
    // levels against each other.
    visited[seed as usize].store(true, Ordering::Relaxed);
    let mut frontier = vec![seed];
    let mut reached = 1usize;
    while !frontier.is_empty() {
        let next: Vec<u32> = frontier
            .par_iter()
            .flat_map_iter(|&v| {
                csr.neighbors(v).iter().copied().filter(|&w| {
                    // ORDERING: Relaxed swap: see BFS comment above.
                    !visited[w as usize].swap(true, Ordering::Relaxed)
                })
            })
            .collect();
        reached += next.len();
        frontier = next;
    }

    // Phase 2: union-find over edges with at least one unreached endpoint.
    let mut ds = DisjointSet::new(n);
    let mut cleanup_edges = 0usize;
    for &(u, v) in edges {
        // ORDERING: Relaxed: the BFS finished (scope joins fenced it); these
        // are now effectively sequential reads.
        if !visited[u as usize].load(Ordering::Relaxed)
            || !visited[v as usize].load(Ordering::Relaxed)
        {
            ds.union(u, v);
            cleanup_edges += 1;
        }
    }

    // Combine. After a completed BFS no edge joins a reached and an
    // unreached vertex (BFS would have crossed it), so the cleanup forest
    // only contains unreached vertices and the two labelings can simply be
    // overlaid: reached vertices share one root (the max reached index, so
    // the label is a fixed point), unreached ones keep union-find roots.
    // ORDERING: Relaxed: post-BFS sequential reads, as above.
    let giant_root: u32 = (0..n as u32)
        .filter(|&v| visited[v as usize].load(Ordering::Relaxed))
        .max()
        .unwrap_or(seed);
    let labels: Vec<u32> = (0..n as u32)
        .map(|v| {
            // ORDERING: Relaxed: post-BFS sequential reads, as above.
            if visited[v as usize].load(Ordering::Relaxed) {
                giant_root
            } else {
                ds.find_readonly(v)
            }
        })
        .collect();
    AdaptiveResult {
        labels,
        bfs_reached: reached,
        cleanup_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut ds = DisjointSet::new(n);
        for &(u, v) in edges {
            ds.union(u, v);
        }
        ds.into_component_array()
    }

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn giant_plus_dust() {
        // Star of 50 + chain of 3 + singletons.
        let mut edges: Vec<(u32, u32)> = (1..50).map(|i| (0, i)).collect();
        edges.push((60, 61));
        edges.push((61, 62));
        let r = adaptive_components(70, &edges);
        assert!(same_partition(&r.labels, &reference(70, &edges)));
        assert_eq!(r.bfs_reached, 50); // the star
        assert_eq!(r.cleanup_edges, 2); // the chain
    }

    #[test]
    fn empty_graph() {
        let r = adaptive_components(4, &[]);
        assert_eq!(r.labels.len(), 4);
        assert!(same_partition(&r.labels, &reference(4, &[])));
        assert_eq!(r.bfs_reached, 1); // just the seed
    }

    #[test]
    fn zero_vertices() {
        let r = adaptive_components(0, &[]);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn single_component_all_bfs() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let r = adaptive_components(100, &edges);
        assert_eq!(r.bfs_reached, 100);
        assert_eq!(r.cleanup_edges, 0);
        assert!(r.labels.iter().all(|&l| l == r.labels[0]));
    }

    #[test]
    fn labels_are_fixed_points() {
        let edges = vec![(0, 1), (2, 3), (3, 4), (6, 7)];
        let r = adaptive_components(9, &edges);
        for &l in &r.labels {
            assert_eq!(r.labels[l as usize], l);
        }
    }

    proptest! {
        #[test]
        fn prop_matches_union_find(
            n in 1usize..80,
            raw in proptest::collection::vec((0u32..80, 0u32..80), 0..200),
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let r = adaptive_components(n, &edges);
            prop_assert!(same_partition(&r.labels, &reference(n, &edges)));
        }
    }
}
