//! Connected components for the read graph (paper §3.5–§3.6).
//!
//! METAPREP labels weakly connected components of the *implicit* read graph
//! with a distributed union-find:
//!
//! * [`seq::DisjointSet`] — sequential union-find with path splitting and
//!   union-by-index (the building block, and MergeCC's workhorse);
//! * [`concurrent::ConcurrentDisjointSet`] — the paper's Algorithm 1:
//!   threads process edges with synchronization-free `Find`/`Union` (CAS on
//!   an atomic parent array), buffering edges that caused a `Union` and
//!   re-verifying them on the next iteration;
//! * [`locked::locked_components`] — Cybenko-style union-in-critical-section
//!   baseline for the ablation bench;
//! * [`sv::shiloach_vishkin`] — iterative Shiloach–Vishkin CC with iteration
//!   counting, standing in for the AP_LB comparator (paper Table 4: the
//!   O(log M)-iteration algorithm METAPREP's log P merge beats);
//! * [`merge`] — MergeCC: absorbing another task's parent array as edges;
//! * [`stats::ComponentStats`] — component counts/sizes/largest fraction,
//!   the numbers behind paper Table 7.
//!
//! Union-by-index (the parent of the lower-index root is set to the
//! higher-index root) is used everywhere, because — as the paper notes —
//! it cannot introduce cycles when edges are processed concurrently.

pub mod adaptive;
pub mod concurrent;
pub mod locked;
pub mod merge;
pub mod seq;
pub mod stats;
pub mod sv;
pub mod sync;

pub use adaptive::{adaptive_components, AdaptiveResult};
pub use concurrent::{ConcurrentDisjointSet, UfOpStats};
pub use merge::{absorb_parent_array, absorb_sparse_pairs, merge_all, sparse_pairs};
pub use seq::DisjointSet;
pub use stats::ComponentStats;
pub use sv::{shiloach_vishkin, SvResult};
