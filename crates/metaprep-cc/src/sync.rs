//! Audited synchronization shim for this crate.
//!
//! Every atomic type used by the concurrent union-find code is imported
//! from here, never from `std` directly. Under normal builds these are
//! the `std::sync::atomic` types; under `RUSTFLAGS="--cfg loom"` they
//! are the model-checked `loom` types, so the exact same algorithm
//! source is explored exhaustively by `tests/loom.rs`.
//!
//! This file is one of the `ORDERING_AUDITED` shims known to
//! `cargo xtask check`: naming a memory ordering anywhere else in the
//! workspace requires a per-site `// ORDERING:` justification. The
//! model checker explores sequential consistency only, so ordering
//! choices are precisely what source review must still cover.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
