//! Random genome construction with repeats and strains.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One species genome.
#[derive(Clone, Debug)]
pub struct Genome {
    /// Sequence bytes (`ACGT` only).
    pub seq: Vec<u8>,
    /// Species index this genome belongs to.
    pub species: u16,
}

/// Generate a uniform random genome of `len` bases.
pub fn random_genome(len: usize, rng: &mut SmallRng) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

/// Overwrite a random window of `genome` with `element`, mutating each base
/// of the copy independently with probability `divergence`. Overwriting (as
/// opposed to inserting) keeps genome length fixed, which keeps coverage
/// math exact; biologically this models a mobile element landing in
/// otherwise unconstrained sequence.
pub fn plant_repeat(genome: &mut [u8], element: &[u8], divergence: f64, rng: &mut SmallRng) {
    if genome.len() < element.len() {
        return;
    }
    let at = rng.gen_range(0..=genome.len() - element.len());
    for (i, &b) in element.iter().enumerate() {
        genome[at + i] = if rng.gen_bool(divergence) {
            mutate_base(b, rng)
        } else {
            b
        };
    }
}

/// Return a base different from `b`, uniformly among the other three.
pub fn mutate_base(b: u8, rng: &mut SmallRng) -> u8 {
    let cur = match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => return b"ACGT"[rng.gen_range(0..4)],
    };
    b"ACGT"[(cur + 1 + rng.gen_range(0..3)) % 4]
}

/// Derive a strain: copy `ancestor` and substitute each base independently
/// with probability `divergence`.
pub fn derive_strain(ancestor: &[u8], divergence: f64, rng: &mut SmallRng) -> Vec<u8> {
    ancestor
        .iter()
        .map(|&b| {
            if rng.gen_bool(divergence) {
                mutate_base(b, rng)
            } else {
                b
            }
        })
        .collect()
}

/// Deterministic per-purpose RNG derivation so each stage of generation is
/// independently reproducible.
pub fn derive_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_genome_has_only_acgt() {
        let mut rng = derive_rng(1, 0);
        let g = random_genome(1000, &mut rng);
        assert_eq!(g.len(), 1000);
        assert!(g.iter().all(|b| b"ACGT".contains(b)));
    }

    #[test]
    fn random_genome_is_reproducible() {
        let a = random_genome(100, &mut derive_rng(7, 3));
        let b = random_genome(100, &mut derive_rng(7, 3));
        assert_eq!(a, b);
        let c = random_genome(100, &mut derive_rng(8, 3));
        assert_ne!(a, c);
    }

    #[test]
    fn plant_repeat_keeps_length_and_embeds_element() {
        let mut rng = derive_rng(2, 0);
        let mut g = random_genome(500, &mut rng);
        let elem: Vec<u8> = std::iter::repeat_n(b'A', 50).collect();
        plant_repeat(&mut g, &elem, 0.0, &mut rng);
        assert_eq!(g.len(), 500);
        // Zero divergence: the exact element must appear.
        assert!(g.windows(50).any(|w| w == &elem[..]));
    }

    #[test]
    fn plant_repeat_divergence_mutates_some_bases() {
        let mut rng = derive_rng(3, 0);
        let mut g = vec![b'C'; 2000];
        let elem = vec![b'A'; 1000];
        plant_repeat(&mut g, &elem, 0.1, &mut rng);
        let planted: usize = g.iter().filter(|&&b| b != b'C').count();
        // ~900 of the 1000 copied bases remain 'A', the rest mutated
        // (possibly back to 'C' is impossible: mutate_base never returns the
        // original, but can return 'C'). Just check it's neither 0 nor all.
        assert!(planted > 800 && planted < 1000, "planted={planted}");
    }

    #[test]
    fn plant_repeat_on_too_short_genome_is_noop() {
        let mut rng = derive_rng(4, 0);
        let mut g = vec![b'C'; 10];
        plant_repeat(&mut g, &[b'A'; 20], 0.0, &mut rng);
        assert_eq!(g, vec![b'C'; 10]);
    }

    #[test]
    fn mutate_base_never_returns_input() {
        let mut rng = derive_rng(5, 0);
        for b in [b'A', b'C', b'G', b'T'] {
            for _ in 0..50 {
                let m = mutate_base(b, &mut rng);
                assert_ne!(m, b);
                assert!(b"ACGT".contains(&m));
            }
        }
    }

    #[test]
    fn derive_strain_divergence_fraction() {
        let mut rng = derive_rng(6, 0);
        let anc = random_genome(20_000, &mut rng);
        let strain = derive_strain(&anc, 0.02, &mut rng);
        assert_eq!(strain.len(), anc.len());
        let diffs = anc.iter().zip(&strain).filter(|(a, b)| a != b).count();
        let rate = diffs as f64 / anc.len() as f64;
        assert!((rate - 0.02).abs() < 0.006, "rate={rate}");
    }

    #[test]
    fn derive_strain_zero_divergence_is_identity() {
        let mut rng = derive_rng(7, 0);
        let anc = random_genome(100, &mut rng);
        assert_eq!(derive_strain(&anc, 0.0, &mut rng), anc);
    }
}
