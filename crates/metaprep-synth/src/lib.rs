//! Synthetic metagenome communities — the dataset substitute.
//!
//! The paper evaluates on four real metagenomes (HG, LL, MM, IS; Table 2)
//! that we cannot redistribute or download here. This crate generates
//! synthetic communities whose *read-graph structure* exercises the same
//! pipeline behaviours:
//!
//! * per-species random genomes with **diverged repeat elements** shared
//!   across species — high-frequency k-mers that glue the read graph into a
//!   giant component exactly as genomic repeats do, and that a k-mer
//!   frequency filter (or a larger `k`, because copies are diverged) cuts;
//! * **strain pairs** (mutated copies of one ancestor genome) contributing
//!   exact shared k-mers between distinct species labels;
//! * log-normal species **abundance**, so coverage depth varies per species
//!   (low-coverage species fall out of the giant component first);
//! * a paired-end **read simulator** with substitution errors and occasional
//!   `N` bases, producing frequency-1 error k-mers for the low-frequency
//!   filter to remove.
//!
//! Every simulated fragment carries its true species label, which the test
//! suite and experiment harnesses use to score partition quality.

pub mod community;
pub mod genome;
pub mod quality;
pub mod reads;

pub use community::{scaled_profile, CommunityProfile, DatasetId, RepeatSpec};
pub use genome::{random_genome, Genome};
pub use quality::{score_partition, PartitionScore};
pub use reads::{simulate_community, SimulatedData};
