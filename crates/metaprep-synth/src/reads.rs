//! Paired-end read simulation over a generated community.

use crate::community::CommunityProfile;
use crate::genome::{derive_rng, derive_strain, mutate_base, plant_repeat, random_genome, Genome};
use metaprep_io::ReadStore;
use rand::rngs::SmallRng;
use rand::Rng;

/// Output of [`simulate_community`].
#[derive(Clone, Debug)]
pub struct SimulatedData {
    /// The simulated reads; each fragment (pair) has one fragment id.
    pub reads: ReadStore,
    /// True species of each fragment (index = fragment id).
    pub species_of_fragment: Vec<u16>,
    /// The generated genomes (index = species).
    pub genomes: Vec<Genome>,
    /// Abundance weight of each species (sums to 1).
    pub abundance: Vec<f64>,
}

impl SimulatedData {
    /// Number of species with at least one simulated fragment.
    pub fn species_observed(&self) -> usize {
        let mut seen = vec![false; self.genomes.len()];
        for &s in &self.species_of_fragment {
            seen[s as usize] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }
}

/// Log-normal-ish abundance weights: `exp(sigma * z)` with `z ~ N(0,1)`
/// (Box-Muller on the provided RNG), normalized to sum to 1.
fn abundances(n: usize, sigma: f64, rng: &mut SmallRng) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n)
        .map(|_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (sigma * z).exp()
        })
        .collect();
    let s: f64 = w.iter().sum();
    for x in &mut w {
        *x /= s;
    }
    w
}

/// Generate the community genomes: base genomes, strain derivations, and
/// planted repeat copies.
fn build_genomes(profile: &CommunityProfile, seed: u64) -> Vec<Genome> {
    let mut rng = derive_rng(seed, 1);
    let repeat_lib: Vec<Vec<u8>> = (0..profile.repeats.elements)
        .map(|_| random_genome(profile.repeats.element_len, &mut rng))
        .collect();

    let n_strains = (profile.species as f64 * profile.strain_fraction) as usize;
    let n_base = profile.species - n_strains;
    let mut genomes: Vec<Genome> = Vec::with_capacity(profile.species);

    for s in 0..n_base {
        let len = rng.gen_range(profile.genome_len.0..profile.genome_len.1);
        let mut seq = random_genome(len, &mut rng);
        plant_repeats(&mut seq, &repeat_lib, profile, &mut rng);
        genomes.push(Genome {
            seq,
            species: s as u16,
        });
    }
    // Strains derive from random base genomes but count as distinct species
    // labels (real strain mixtures are exactly what makes metagenome
    // assembly hard, paper §2(i)).
    for s in n_base..profile.species {
        let anc = rng.gen_range(0..n_base);
        let mut seq = derive_strain(&genomes[anc].seq, profile.strain_divergence, &mut rng);
        plant_repeats(&mut seq, &repeat_lib, profile, &mut rng);
        genomes.push(Genome {
            seq,
            species: s as u16,
        });
    }
    genomes
}

fn plant_repeats(seq: &mut [u8], lib: &[Vec<u8>], profile: &CommunityProfile, rng: &mut SmallRng) {
    if lib.is_empty() {
        return;
    }
    // At least one copy per genome: every genome carries *some* mobile
    // element, which is what makes a single giant component form on real
    // metagenomes (paper §4.4).
    let hi = (2.0 * profile.repeats.copies_per_genome).ceil().max(1.0) as usize;
    let copies = rng.gen_range(1..=hi);
    for _ in 0..copies {
        let elem = &lib[rng.gen_range(0..lib.len())];
        plant_repeat(seq, elem, profile.repeats.divergence, rng);
    }
}

/// Reverse complement for ASCII `ACGTN`.
fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| match b {
            b'A' => b'T',
            b'C' => b'G',
            b'G' => b'C',
            b'T' => b'A',
            other => other,
        })
        .collect()
}

/// Apply the error model to a read in place.
fn apply_errors(read: &mut [u8], profile: &CommunityProfile, rng: &mut SmallRng) {
    for b in read.iter_mut() {
        if rng.gen_bool(profile.n_rate) {
            *b = b'N';
        } else if rng.gen_bool(profile.error_rate) {
            *b = mutate_base(*b, rng);
        }
    }
}

/// Simulate a full community: genomes, abundances, and paired-end reads.
///
/// Deterministic in `(profile, seed)`.
pub fn simulate_community(profile: &CommunityProfile, seed: u64) -> SimulatedData {
    assert!(profile.species >= 1);
    assert!(profile.read_len >= 1);
    assert!(
        profile.insert_size >= 2 * profile.read_len,
        "insert size must cover both mates"
    );

    let genomes = build_genomes(profile, seed);
    let mut rng = derive_rng(seed, 2);
    let abundance = abundances(profile.species, profile.abundance_sigma, &mut rng);

    // Cumulative weights for species sampling, weighted additionally by
    // genome length (longer genomes yield proportionally more fragments at
    // equal molar abundance).
    let weights: Vec<f64> = abundance
        .iter()
        .zip(&genomes)
        .map(|(a, g)| a * g.seq.len() as f64)
        .collect();
    let mut cum: Vec<f64> = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }
    let total_w = acc;

    let mut reads = ReadStore::with_capacity(profile.read_pairs * 2, profile.read_len);
    let mut species_of_fragment = Vec::with_capacity(profile.read_pairs);
    let mut mate1 = vec![0u8; profile.read_len];
    let mut mate2 = vec![0u8; profile.read_len];

    let mut emitted = 0usize;
    while emitted < profile.read_pairs {
        let x = rng.gen_range(0.0..total_w);
        let s = cum.partition_point(|&c| c <= x).min(genomes.len() - 1);
        let g = &genomes[s].seq;

        // Insert size jitter ±10%.
        let jitter = (profile.insert_size / 10).max(1);
        let insert = rng
            .gen_range(profile.insert_size - jitter..=profile.insert_size + jitter)
            .max(2 * profile.read_len);
        if g.len() < insert {
            // Genome shorter than the fragment: sample a single-mate-length
            // fragment instead (tiny genomes in scaled-down profiles).
            if g.len() < 2 * profile.read_len {
                continue;
            }
            let start = rng.gen_range(0..=g.len() - 2 * profile.read_len);
            mate1.copy_from_slice(&g[start..start + profile.read_len]);
            let m2 = revcomp(&g[start + profile.read_len..start + 2 * profile.read_len]);
            mate2.copy_from_slice(&m2);
        } else {
            let start = rng.gen_range(0..=g.len() - insert);
            mate1.copy_from_slice(&g[start..start + profile.read_len]);
            let m2 = revcomp(&g[start + insert - profile.read_len..start + insert]);
            mate2.copy_from_slice(&m2);
        }
        apply_errors(&mut mate1, profile, &mut rng);
        apply_errors(&mut mate2, profile, &mut rng);
        reads.push_pair(&mate1, &mate2);
        species_of_fragment.push(s as u16);
        emitted += 1;
    }

    SimulatedData {
        reads,
        species_of_fragment,
        genomes,
        abundance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::{scaled_profile, DatasetId};

    fn tiny() -> CommunityProfile {
        CommunityProfile {
            read_pairs: 300,
            ..CommunityProfile::quickstart()
        }
    }

    #[test]
    fn produces_requested_pairs() {
        let d = simulate_community(&tiny(), 1);
        assert_eq!(d.reads.num_fragments(), 300);
        assert_eq!(d.reads.len(), 600);
        assert_eq!(d.species_of_fragment.len(), 300);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = simulate_community(&tiny(), 9);
        let b = simulate_community(&tiny(), 9);
        assert_eq!(a.reads.seq(0), b.reads.seq(0));
        assert_eq!(a.species_of_fragment, b.species_of_fragment);
        let c = simulate_community(&tiny(), 10);
        assert_ne!(
            (0..a.reads.len())
                .map(|i| a.reads.seq(i).to_vec())
                .collect::<Vec<_>>(),
            (0..c.reads.len())
                .map(|i| c.reads.seq(i).to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn reads_have_profile_length_and_valid_bases() {
        let p = tiny();
        let d = simulate_community(&p, 2);
        for (seq, _) in d.reads.iter() {
            assert_eq!(seq.len(), p.read_len);
            assert!(seq.iter().all(|b| b"ACGTN".contains(b)));
        }
    }

    #[test]
    fn mates_share_fragment_ids() {
        let d = simulate_community(&tiny(), 3);
        for i in 0..d.reads.num_fragments() as usize {
            assert_eq!(d.reads.frag_id(2 * i), i as u32);
            assert_eq!(d.reads.frag_id(2 * i + 1), i as u32);
        }
    }

    #[test]
    fn error_rate_roughly_respected() {
        let mut p = tiny();
        p.error_rate = 0.01;
        p.n_rate = 0.0;
        p.read_pairs = 2000;
        let d = simulate_community(&p, 4);
        // Count mismatches of mate1 vs its genome is hard without positions;
        // instead check N-rate = 0 means no Ns, and bases are ACGT.
        for (seq, _) in d.reads.iter() {
            assert!(!seq.contains(&b'N'));
        }
    }

    #[test]
    fn n_rate_produces_ns() {
        let mut p = tiny();
        p.n_rate = 0.05;
        p.read_pairs = 500;
        let d = simulate_community(&p, 5);
        let n_count: usize = d
            .reads
            .iter()
            .map(|(s, _)| s.iter().filter(|&&b| b == b'N').count())
            .sum();
        let total: usize = d.reads.total_bases();
        let rate = n_count as f64 / total as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn abundance_sums_to_one() {
        let d = simulate_community(&tiny(), 6);
        let s: f64 = d.abundance.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_abundance_species_get_more_fragments() {
        let mut p = tiny();
        p.abundance_sigma = 1.5;
        p.read_pairs = 3000;
        let d = simulate_community(&p, 7);
        let mut counts = vec![0usize; p.species];
        for &s in &d.species_of_fragment {
            counts[s as usize] += 1;
        }
        // The top-weighted species should beat the bottom-weighted one.
        let weights: Vec<f64> = d
            .abundance
            .iter()
            .zip(&d.genomes)
            .map(|(a, g)| a * g.seq.len() as f64)
            .collect();
        let hi = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let lo = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(counts[hi] > counts[lo]);
    }

    #[test]
    fn genomes_count_matches_profile() {
        let p = scaled_profile(DatasetId::Hg, 0.02);
        let d = simulate_community(&p, 8);
        assert_eq!(d.genomes.len(), p.species);
        assert!(d.species_observed() >= 1);
    }

    #[test]
    fn mate2_is_reverse_complement_strand() {
        // With zero errors, mate2 reverse-complemented must occur in the
        // originating genome.
        let mut p = tiny();
        p.error_rate = 0.0;
        p.n_rate = 0.0;
        p.read_pairs = 50;
        let d = simulate_community(&p, 11);
        for i in 0..d.reads.num_fragments() as usize {
            let s = d.species_of_fragment[i] as usize;
            let g = &d.genomes[s].seq;
            let m2 = d.reads.seq(2 * i + 1);
            let fwd = revcomp(m2);
            let found = g.windows(fwd.len()).any(|w| w == &fwd[..]);
            assert!(found, "fragment {i}: mate2 not found in genome {s}");
        }
    }
}
