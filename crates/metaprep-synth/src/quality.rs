//! Partition quality against the simulated ground truth.
//!
//! The paper's premise (after Howe et al.): a k-mer-based partition assigns
//! "most reads belonging to a species to the same component". With
//! synthetic data the species of every fragment is known, so that claim
//! becomes measurable:
//!
//! * **co-clustering recall** — of all fragment pairs from the same
//!   species, the fraction landing in the same component (high when species
//!   are kept together);
//! * **co-clustering precision** — of all fragment pairs sharing a
//!   component, the fraction from the same species (low when a giant
//!   component glues species together — exactly the paper's motivation for
//!   the KF filter);
//! * **per-species majority fraction** — for each species, the fraction of
//!   its fragments inside its plurality component.
//!
//! Pair counts are computed from contingency tables, not by enumerating
//! pairs, so scoring is linear in the number of fragments.

use std::collections::HashMap;

/// Partition-vs-truth scores.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PartitionScore {
    /// Same-species pairs that share a component / all same-species pairs.
    pub recall: f64,
    /// Same-species pairs that share a component / all same-component pairs.
    pub precision: f64,
    /// Mean over species of (largest single-component share of the
    /// species' fragments).
    pub mean_majority_fraction: f64,
}

/// `n * (n - 1) / 2` without overflow for the sizes seen here.
fn pairs(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Score `labels` (component per fragment) against `species` (true species
/// per fragment). Slices must be equal length.
pub fn score_partition(labels: &[u32], species: &[u16]) -> PartitionScore {
    assert_eq!(labels.len(), species.len());
    if labels.is_empty() {
        return PartitionScore::default();
    }

    // Contingency counts.
    let mut cell: HashMap<(u32, u16), u64> = HashMap::new();
    let mut comp_size: HashMap<u32, u64> = HashMap::new();
    let mut species_size: HashMap<u16, u64> = HashMap::new();
    for (&l, &s) in labels.iter().zip(species) {
        *cell.entry((l, s)).or_insert(0) += 1;
        *comp_size.entry(l).or_insert(0) += 1;
        *species_size.entry(s).or_insert(0) += 1;
    }

    let same_both: u64 = cell.values().map(|&n| pairs(n)).sum();
    let same_comp: u64 = comp_size.values().map(|&n| pairs(n)).sum();
    let same_species: u64 = species_size.values().map(|&n| pairs(n)).sum();

    // Per-species plurality component share.
    let mut best_of_species: HashMap<u16, u64> = HashMap::new();
    for (&(_, s), &n) in &cell {
        let e = best_of_species.entry(s).or_insert(0);
        *e = (*e).max(n);
    }
    let mean_majority_fraction = best_of_species
        .iter()
        .map(|(s, &b)| b as f64 / species_size[s] as f64)
        .sum::<f64>()
        / species_size.len() as f64;

    PartitionScore {
        recall: if same_species == 0 {
            1.0
        } else {
            same_both as f64 / same_species as f64
        },
        precision: if same_comp == 0 {
            1.0
        } else {
            same_both as f64 / same_comp as f64
        },
        mean_majority_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_partition() {
        // Components exactly equal species.
        let labels = vec![0, 0, 1, 1, 2];
        let species = vec![5u16, 5, 7, 7, 9];
        let s = score_partition(&labels, &species);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.mean_majority_fraction, 1.0);
    }

    #[test]
    fn giant_component_has_full_recall_low_precision() {
        // Everything in one component, two species.
        let labels = vec![0; 6];
        let species = vec![1u16, 1, 1, 2, 2, 2];
        let s = score_partition(&labels, &species);
        assert_eq!(s.recall, 1.0);
        // same-species pairs: 3 + 3 = 6 of 15 total pairs.
        assert!((s.precision - 6.0 / 15.0).abs() < 1e-12);
        assert_eq!(s.mean_majority_fraction, 1.0);
    }

    #[test]
    fn shattered_partition_has_low_recall_full_precision() {
        // Every fragment its own component.
        let labels = vec![0, 1, 2, 3];
        let species = vec![1u16, 1, 2, 2];
        let s = score_partition(&labels, &species);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 1.0);
        assert!((s.mean_majority_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_species_majority_fraction() {
        // One species split 3-1 across two components.
        let labels = vec![0, 0, 0, 1];
        let species = vec![4u16, 4, 4, 4];
        let s = score_partition(&labels, &species);
        assert!((s.mean_majority_fraction - 0.75).abs() < 1e-12);
        // recall = pairs kept together (3 of 6).
        assert!((s.recall - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = score_partition(&[], &[]);
        assert_eq!(s, PartitionScore::default());
    }

    #[test]
    fn single_fragment() {
        let s = score_partition(&[0], &[3]);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.mean_majority_fraction, 1.0);
    }
}
