//! Community profiles: the knobs of the simulator plus named, scaled
//! stand-ins for the paper's four datasets (Table 2).

/// Repeat-library parameters.
///
/// Repeat elements are shared across genomes with per-copy divergence. They
/// are the synthetic analogue of the repeats that create high-frequency
/// k-mers in real metagenomes — the glue of the giant component that the
/// `KF` filter (paper Table 7) cuts.
#[derive(Clone, Debug, PartialEq)]
pub struct RepeatSpec {
    /// Number of distinct repeat elements in the library.
    pub elements: usize,
    /// Length of each element in bases.
    pub element_len: usize,
    /// Mean copies planted per genome (each genome gets a Poisson-ish count
    /// in `[0, 2*mean]`).
    pub copies_per_genome: f64,
    /// Per-base substitution probability applied to each planted copy.
    /// Divergence is what makes large `k` break repeat-induced edges
    /// (paper Table 7: `k=63` shrinks the largest component).
    pub divergence: f64,
}

impl Default for RepeatSpec {
    fn default() -> Self {
        Self {
            elements: 4,
            element_len: 400,
            copies_per_genome: 2.0,
            divergence: 0.01,
        }
    }
}

/// Scaled stand-ins for the paper's datasets.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Human gut (SRR341725): moderate diversity, moderate coverage.
    Hg,
    /// Lake Lanier (SRR947737): high diversity, low coverage — the dataset
    /// with the smallest giant component in the paper.
    Ll,
    /// Mock microbial community (SRX200676): few species, very high
    /// coverage — 99.5% giant component.
    Mm,
    /// Iowa continuous corn soil (JGI 402461): the large-scale dataset.
    Is,
}

impl DatasetId {
    /// Short lower-case name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Hg => "HG",
            DatasetId::Ll => "LL",
            DatasetId::Mm => "MM",
            DatasetId::Is => "IS",
        }
    }

    /// All four ids in paper order.
    pub fn all() -> [DatasetId; 4] {
        [DatasetId::Hg, DatasetId::Ll, DatasetId::Mm, DatasetId::Is]
    }
}

/// Full parameter set of one simulated community.
#[derive(Clone, Debug, PartialEq)]
pub struct CommunityProfile {
    /// Display name.
    pub name: String,
    /// Number of species (distinct genomes, counting strains separately).
    pub species: usize,
    /// Genome length range `[lo, hi)` sampled per species.
    pub genome_len: (usize, usize),
    /// σ of the log-normal abundance distribution (0 = uniform).
    pub abundance_sigma: f64,
    /// Number of read *pairs* to simulate.
    pub read_pairs: usize,
    /// Length of each mate in bases.
    pub read_len: usize,
    /// Mean outer distance between mate starts (insert size); sampled
    /// uniformly in ±10%.
    pub insert_size: usize,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Per-base probability of an `N` call.
    pub n_rate: f64,
    /// Fraction of species that are strains of another species (pairs of
    /// near-identical genomes).
    pub strain_fraction: f64,
    /// Strain divergence (per-base substitution vs the ancestor).
    pub strain_divergence: f64,
    /// Repeat library configuration.
    pub repeats: RepeatSpec,
}

impl CommunityProfile {
    /// Tiny profile for doc examples and smoke tests (< 1 s end-to-end).
    pub fn quickstart() -> Self {
        Self {
            name: "quickstart".into(),
            species: 6,
            genome_len: (8_000, 12_000),
            abundance_sigma: 0.5,
            read_pairs: 2_000,
            read_len: 100,
            insert_size: 280,
            error_rate: 0.003,
            n_rate: 0.0005,
            strain_fraction: 0.2,
            strain_divergence: 0.02,
            repeats: RepeatSpec::default(),
        }
    }

    /// Total simulated bases (`M` in the paper's analysis).
    pub fn total_bases(&self) -> usize {
        self.read_pairs * 2 * self.read_len
    }

    /// Mean coverage depth implied by the profile (total read bases over
    /// total genome bases, using the midpoint genome length).
    pub fn mean_coverage(&self) -> f64 {
        let gl = (self.genome_len.0 + self.genome_len.1) as f64 / 2.0;
        self.total_bases() as f64 / (gl * self.species as f64)
    }
}

/// Scaled stand-in profile for one of the paper's datasets.
///
/// `scale` multiplies the number of read pairs (and is meant for quick runs:
/// `scale = 1.0` is the default experiment size, roughly 1/50 000 of the
/// paper's base-pair counts, preserving the *relative* sizes HG < LL < MM
/// << IS and each dataset's diversity/coverage character).
pub fn scaled_profile(id: DatasetId, scale: f64) -> CommunityProfile {
    assert!(scale > 0.0);
    let pairs = |n: usize| ((n as f64 * scale) as usize).max(200);
    match id {
        // HG: moderate diversity, moderate coverage, some strains.
        DatasetId::Hg => CommunityProfile {
            name: "HG".into(),
            species: 16,
            genome_len: (15_000, 30_000),
            abundance_sigma: 0.9,
            read_pairs: pairs(15_000),
            read_len: 100,
            insert_size: 280,
            error_rate: 0.004,
            n_rate: 0.0005,
            strain_fraction: 0.25,
            strain_divergence: 0.015,
            repeats: RepeatSpec {
                elements: 5,
                element_len: 400,
                copies_per_genome: 2.5,
                divergence: 0.004,
            },
        },
        // LL: high diversity, low coverage -> smallest giant component.
        DatasetId::Ll => CommunityProfile {
            name: "LL".into(),
            species: 90,
            genome_len: (12_000, 30_000),
            abundance_sigma: 1.4,
            read_pairs: pairs(28_000),
            read_len: 100,
            insert_size: 280,
            error_rate: 0.004,
            n_rate: 0.0005,
            strain_fraction: 0.1,
            strain_divergence: 0.02,
            repeats: RepeatSpec {
                elements: 6,
                element_len: 350,
                copies_per_genome: 1.2,
                divergence: 0.012,
            },
        },
        // MM: few species, very high coverage -> ~everything connects.
        DatasetId::Mm => CommunityProfile {
            name: "MM".into(),
            species: 10,
            genome_len: (25_000, 40_000),
            abundance_sigma: 0.6,
            read_pairs: pairs(55_000),
            read_len: 100,
            insert_size: 280,
            error_rate: 0.004,
            n_rate: 0.0005,
            strain_fraction: 0.15,
            strain_divergence: 0.015,
            repeats: RepeatSpec {
                elements: 4,
                element_len: 500,
                copies_per_genome: 3.0,
                divergence: 0.008,
            },
        },
        // IS: the big one — many species, long tail of low coverage.
        DatasetId::Is => CommunityProfile {
            name: "IS".into(),
            species: 300,
            genome_len: (10_000, 35_000),
            abundance_sigma: 1.3,
            read_pairs: pairs(250_000),
            read_len: 100,
            insert_size: 280,
            error_rate: 0.005,
            n_rate: 0.001,
            strain_fraction: 0.1,
            strain_divergence: 0.02,
            repeats: RepeatSpec {
                elements: 8,
                element_len: 350,
                copies_per_genome: 1.5,
                divergence: 0.012,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_is_small() {
        let p = CommunityProfile::quickstart();
        assert!(p.total_bases() < 1_000_000);
        assert!(p.mean_coverage() > 1.0);
    }

    #[test]
    fn dataset_relative_sizes_match_paper_order() {
        let sizes: Vec<usize> = DatasetId::all()
            .iter()
            .map(|&id| scaled_profile(id, 1.0).total_bases())
            .collect();
        // HG < LL < MM < IS, as in Table 2.
        assert!(sizes[0] < sizes[1]);
        assert!(sizes[1] < sizes[2]);
        assert!(sizes[2] < sizes[3]);
    }

    #[test]
    fn ll_has_highest_diversity_lowest_coverage() {
        let hg = scaled_profile(DatasetId::Hg, 1.0);
        let ll = scaled_profile(DatasetId::Ll, 1.0);
        let mm = scaled_profile(DatasetId::Mm, 1.0);
        assert!(ll.species > hg.species);
        assert!(ll.mean_coverage() < mm.mean_coverage());
    }

    #[test]
    fn scale_multiplies_pairs() {
        let a = scaled_profile(DatasetId::Hg, 1.0);
        let b = scaled_profile(DatasetId::Hg, 0.5);
        assert!((b.read_pairs as f64 - a.read_pairs as f64 * 0.5).abs() < 2.0);
    }

    #[test]
    fn scale_floors_at_minimum() {
        let p = scaled_profile(DatasetId::Hg, 1e-9);
        assert_eq!(p.read_pairs, 200);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetId::Hg.name(), "HG");
        assert_eq!(DatasetId::Is.name(), "IS");
    }
}
