//! Assembly quality statistics (the columns of paper Table 9).

/// Summary of an assembly's contig length distribution.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Number of contigs.
    pub contigs: usize,
    /// Total assembled bases.
    pub total_bases: usize,
    /// Length of the longest contig ("Max (bp)").
    pub max_contig: usize,
    /// N50: the largest length `L` such that contigs of length `>= L`
    /// cover at least half of `total_bases`.
    pub n50: usize,
}

impl AssemblyStats {
    /// Compute from contig lengths (any order).
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Self {
        let mut ls: Vec<usize> = lengths.into_iter().collect();
        ls.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = ls.iter().sum();
        let max = ls.first().copied().unwrap_or(0);
        let mut acc = 0usize;
        let mut n50 = 0usize;
        for &l in &ls {
            acc += l;
            if 2 * acc >= total && total > 0 {
                n50 = l;
                break;
            }
        }
        Self {
            contigs: ls.len(),
            total_bases: total,
            max_contig: max,
            n50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let s = AssemblyStats::from_lengths([]);
        assert_eq!(s.contigs, 0);
        assert_eq!(s.total_bases, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.max_contig, 0);
    }

    #[test]
    fn single_contig() {
        let s = AssemblyStats::from_lengths([500]);
        assert_eq!(s.contigs, 1);
        assert_eq!(s.n50, 500);
        assert_eq!(s.max_contig, 500);
    }

    #[test]
    fn textbook_n50() {
        // Lengths 10,9,8,7,6,5: total 45, half 22.5; 10+9=19 < 22.5,
        // 10+9+8=27 >= 22.5 -> N50 = 8.
        let s = AssemblyStats::from_lengths([7, 10, 5, 8, 9, 6]);
        assert_eq!(s.n50, 8);
        assert_eq!(s.total_bases, 45);
        assert_eq!(s.max_contig, 10);
    }

    #[test]
    fn equal_lengths() {
        let s = AssemblyStats::from_lengths([100, 100, 100, 100]);
        assert_eq!(s.n50, 100);
    }

    #[test]
    fn dominated_by_one_giant() {
        let s = AssemblyStats::from_lengths([1000, 1, 1, 1]);
        assert_eq!(s.n50, 1000);
    }

    #[test]
    fn n50_at_exact_half() {
        // 6+4 = 10, total 20, exactly half at the second contig (6+4=10).
        let s = AssemblyStats::from_lengths([6, 4, 5, 5]);
        // sorted: 6,5,5,4; acc 6 (<10), 11 (>=10) -> n50 = 5.
        assert_eq!(s.n50, 5);
    }
}
