//! Unitig construction over the canonical de Bruijn graph.

use crate::stats::AssemblyStats;
use metaprep_io::ReadStore;
use metaprep_kmer::{decode_base, for_each_canonical_kmer, Kmer, Kmer128, Kmer64};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Assembler configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AssemblyConfig {
    /// de Bruijn graph k-mer length (`2..=63`; odd values avoid
    /// palindromes; `k <= 32` uses 64-bit nodes, larger k 128-bit).
    pub k: usize,
    /// Minimum k-mer count to be *solid* (error filtering; every dBG
    /// assembler has this knob — MEGAHIT's `--min-count` defaults to 2).
    pub min_count: u32,
    /// Maximum k-mer count (drop ultra-high-frequency repeat k-mers; the
    /// default keeps everything).
    pub max_count: u32,
    /// Contigs shorter than this are dropped from the output.
    pub min_contig_len: usize,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        Self {
            k: 21,
            min_count: 2,
            max_count: u32::MAX,
            min_contig_len: 100,
        }
    }
}

/// Assembly output.
#[derive(Clone, Debug)]
pub struct Assembly {
    /// Assembled contigs (ASCII bases), longest first.
    pub contigs: Vec<Vec<u8>>,
    /// Summary statistics over the kept contigs.
    pub stats: AssemblyStats,
    /// Number of solid k-mers in the graph.
    pub solid_kmers: u64,
    /// Wall time of counting + graph + walking.
    pub elapsed: Duration,
}

/// Assemble `reads` into unitigs at the single k of `cfg`.
pub fn assemble(reads: &ReadStore, cfg: AssemblyConfig) -> Assembly {
    if cfg.k <= 32 {
        assemble_with_seeds::<Kmer64>(reads, &[], cfg)
    } else {
        assemble_with_seeds::<Kmer128>(reads, &[], cfg)
    }
}

/// MEGAHIT-style multi-k assembly: assemble at each k of `ks` in turn,
/// feeding the previous round's contigs back in as trusted "virtual
/// reads". Small k recovers low-coverage regions, large k resolves
/// repeats — the reason MEGAHIT iterates over a k list (paper §2), and
/// the reason its running time is a multiple of one dBG construction.
pub fn assemble_multik(reads: &ReadStore, ks: &[usize], cfg: AssemblyConfig) -> Assembly {
    assert!(!ks.is_empty(), "need at least one k");
    assert!(ks.windows(2).all(|w| w[0] < w[1]), "k list must increase");
    let t0 = Instant::now();
    let mut contigs: Vec<Vec<u8>> = Vec::new();
    let mut solid_total = 0u64;
    for &k in ks {
        let step_cfg = AssemblyConfig { k, ..cfg };
        let step = if k <= 32 {
            assemble_with_seeds::<Kmer64>(reads, &contigs, step_cfg)
        } else {
            assemble_with_seeds::<Kmer128>(reads, &contigs, step_cfg)
        };
        solid_total = step.solid_kmers;
        contigs = step.contigs;
    }
    contigs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let stats = AssemblyStats::from_lengths(contigs.iter().map(|c| c.len()));
    Assembly {
        contigs,
        stats,
        solid_kmers: solid_total,
        elapsed: t0.elapsed(),
    }
}

/// Assemble with additional trusted sequences (`seeds`) whose k-mers are
/// solid regardless of read support. Generic over the k-mer width so the
/// same walker serves `k <= 32` (64-bit nodes) and `k <= 63`.
fn assemble_with_seeds<K: Kmer>(
    reads: &ReadStore,
    seeds: &[Vec<u8>],
    cfg: AssemblyConfig,
) -> Assembly {
    assert!(
        cfg.k >= 2 && cfg.k <= K::MAX_K,
        "k out of range for this width"
    );
    assert!(cfg.min_count >= 1 && cfg.min_count <= cfg.max_count);
    let t0 = Instant::now();

    // ---- count k-mers, keep the solid ones ----
    let mut counts: HashMap<K::Repr, u32> = HashMap::new();
    for (seq, _) in reads.iter() {
        for_each_canonical_kmer::<K>(seq, cfg.k, |v, _| {
            *counts.entry(v).or_insert(0) += 1;
        });
    }
    let mut solid: HashSet<K::Repr> = counts
        .iter()
        .filter(|&(_, &c)| c >= cfg.min_count && c <= cfg.max_count)
        .map(|(&v, _)| v)
        .collect();
    // Seed sequences (previous-round contigs) are trusted verbatim.
    for seed in seeds {
        for_each_canonical_kmer::<K>(seed, cfg.k, |v, _| {
            solid.insert(v);
        });
    }
    drop(counts);

    // Deterministic seed order (HashSet iteration order is randomized).
    let mut seeds: Vec<K::Repr> = solid.iter().copied().collect();
    seeds.sort_unstable();

    // ---- walk maximal non-branching paths ----
    let mut visited: HashSet<K::Repr> = HashSet::with_capacity(solid.len());
    let mut contigs: Vec<Vec<u8>> = Vec::new();
    for &c in &seeds {
        if visited.contains(&c) {
            continue;
        }
        visited.insert(c);
        let seed = K::from_value(cfg.k, c);
        let right = extend::<K>(seed, &solid, &mut visited);
        let left = extend::<K>(seed.flipped(), &solid, &mut visited);

        // Contig = revcomp(left walk) + seed + right walk.
        let mut contig: Vec<u8> = Vec::with_capacity(left.len() + cfg.k + right.len());
        for &b in left.iter().rev() {
            contig.push(decode_base(b ^ 3)); // complement of the rc-walk base
        }
        contig.extend(seed.to_ascii());
        for &b in &right {
            contig.push(decode_base(b));
        }
        if contig.len() >= cfg.min_contig_len {
            contigs.push(contig);
        }
    }
    contigs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));

    let stats = AssemblyStats::from_lengths(contigs.iter().map(|c| c.len()));
    Assembly {
        contigs,
        stats,
        solid_kmers: solid.len() as u64,
        elapsed: t0.elapsed(),
    }
}

/// Extend `cur` rightwards while the extension is unique in both directions
/// and unvisited; returns the appended base codes and marks the consumed
/// k-mers visited.
fn extend<K: Kmer>(
    mut cur: K,
    solid: &HashSet<K::Repr>,
    visited: &mut HashSet<K::Repr>,
) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let mut next: Option<(u8, K)> = None;
        let mut n_succ = 0;
        for b in 0..4u8 {
            let mut y = cur;
            y.roll(b);
            if solid.contains(&y.canonical_value()) {
                n_succ += 1;
                next = Some((b, y));
            }
        }
        if n_succ != 1 {
            break; // dead end or branch
        }
        // EXPECT: `n_succ == 1` above guarantees the loop stored exactly one candidate.
        let (b, y) = next.expect("exactly one successor");
        // The successor must have a unique predecessor (us); otherwise it
        // starts a new unitig. Predecessors of y = successors of flip(y).
        let mut n_pred = 0;
        for pb in 0..4u8 {
            let mut z = y.flipped();
            z.roll(pb);
            if solid.contains(&z.canonical_value()) {
                n_pred += 1;
            }
        }
        if n_pred != 1 {
            break;
        }
        let cy = y.canonical_value();
        if visited.contains(&cy) {
            break; // cycle or already-consumed unitig
        }
        visited.insert(cy);
        out.push(b);
        cur = y;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_kmer::alphabet::reverse_complement_ascii;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_genome(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// Tile `genome` with overlapping error-free reads.
    fn tile_reads(genome: &[u8], read_len: usize, step: usize) -> ReadStore {
        let mut s = ReadStore::new();
        let mut at = 0;
        while at + read_len <= genome.len() {
            s.push_single(&genome[at..at + read_len]);
            at += step;
        }
        // Ensure the tail is covered.
        s.push_single(&genome[genome.len() - read_len..]);
        s
    }

    #[test]
    fn perfect_coverage_reassembles_the_genome() {
        let g = random_genome(3000, 1);
        let reads = tile_reads(&g, 80, 20);
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        assert_eq!(asm.contigs.len(), 1, "stats: {:?}", asm.stats);
        let contig = &asm.contigs[0];
        assert_eq!(contig.len(), g.len());
        assert!(contig == &g || *contig == reverse_complement_ascii(&g));
    }

    #[test]
    fn min_count_drops_singleton_error_kmers() {
        let g = random_genome(2000, 2);
        let mut reads = tile_reads(&g, 80, 10);
        // One read with an error in the middle (singleton k-mers).
        let mut bad = g[500..580].to_vec();
        bad[40] = if bad[40] == b'A' { b'C' } else { b'A' };
        reads.push_single(&bad);
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 2,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        // The error k-mers are filtered; assembly stays a single contig.
        // (The ~10 leading genome k-mers appear in only one tiled read and
        // are also dropped by min_count, so allow a trimmed start.)
        assert_eq!(asm.contigs.len(), 1);
        let len = asm.contigs[0].len();
        assert!(len >= g.len() - 30 && len <= g.len(), "len={len}");
    }

    #[test]
    fn two_genomes_two_contigs() {
        let g1 = random_genome(1500, 3);
        let g2 = random_genome(1500, 4);
        let mut reads = tile_reads(&g1, 80, 20);
        reads.append(&tile_reads(&g2, 80, 20));
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        assert_eq!(asm.contigs.len(), 2);
        assert_eq!(asm.stats.total_bases, 3000);
    }

    #[test]
    fn shared_segment_breaks_contigs() {
        // Two genomes sharing an exact middle segment -> branch nodes ->
        // more, shorter contigs.
        let shared = random_genome(300, 5);
        let mut g1 = random_genome(800, 6);
        let mut g2 = random_genome(800, 7);
        g1.extend_from_slice(&shared);
        g1.extend(random_genome(800, 8));
        g2.extend_from_slice(&shared);
        g2.extend(random_genome(800, 9));
        let mut reads = tile_reads(&g1, 80, 20);
        reads.append(&tile_reads(&g2, 80, 20));
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 50,
            },
        );
        assert!(asm.contigs.len() >= 4, "contigs: {}", asm.contigs.len());
    }

    #[test]
    fn min_contig_len_filters_short_output() {
        let g = random_genome(150, 10);
        let reads = tile_reads(&g, 60, 10);
        let long = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 1000,
            },
        );
        assert!(long.contigs.is_empty());
        let short = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        assert_eq!(short.contigs.len(), 1);
    }

    #[test]
    fn empty_input() {
        let asm = assemble(&ReadStore::new(), AssemblyConfig::default());
        assert!(asm.contigs.is_empty());
        assert_eq!(asm.solid_kmers, 0);
        assert_eq!(asm.stats.contigs, 0);
    }

    #[test]
    fn contigs_sorted_longest_first() {
        let g1 = random_genome(2000, 11);
        let g2 = random_genome(700, 12);
        let mut reads = tile_reads(&g1, 80, 20);
        reads.append(&tile_reads(&g2, 80, 20));
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 21,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 50,
            },
        );
        assert!(asm.contigs.windows(2).all(|w| w[0].len() >= w[1].len()));
        assert_eq!(asm.stats.max_contig, asm.contigs[0].len());
    }

    #[test]
    fn multik_never_shrinks_the_assembly() {
        // A genome at mixed coverage: multi-k should recover at least as
        // much sequence as the largest single k alone.
        let g = random_genome(4000, 20);
        let reads = tile_reads(&g, 80, 25);
        let cfg = AssemblyConfig {
            k: 0, // overridden per step
            min_count: 1,
            max_count: u32::MAX,
            min_contig_len: 60,
        };
        let single = assemble(&reads, AssemblyConfig { k: 31, ..cfg });
        let multi = assemble_multik(&reads, &[21, 25, 31], cfg);
        assert!(
            multi.stats.total_bases >= single.stats.total_bases,
            "multi {} < single {}",
            multi.stats.total_bases,
            single.stats.total_bases
        );
        assert!(multi.stats.max_contig >= single.stats.max_contig);
    }

    #[test]
    fn multik_resolves_shared_segments_better_than_small_k() {
        // Two genomes sharing a segment longer than the small k but shorter
        // than the large k's resolving power window: multi-k ends with the
        // large-k graph, where fewer branch points survive.
        let shared = random_genome(40, 21);
        let mut g1 = random_genome(1200, 22);
        let mut g2 = random_genome(1200, 23);
        g1.extend_from_slice(&shared);
        g1.extend(random_genome(1200, 24));
        g2.extend_from_slice(&shared);
        g2.extend(random_genome(1200, 25));
        let mut reads = tile_reads(&g1, 90, 15);
        reads.append(&tile_reads(&g2, 90, 15));
        let cfg = AssemblyConfig {
            k: 0,
            min_count: 1,
            max_count: u32::MAX,
            min_contig_len: 60,
        };
        let small = assemble(&reads, AssemblyConfig { k: 21, ..cfg });
        let multi = assemble_multik(&reads, &[21, 31], cfg);
        assert!(
            multi.stats.n50 >= small.stats.n50,
            "multi N50 {} < small-k N50 {}",
            multi.stats.n50,
            small.stats.n50
        );
    }

    #[test]
    #[should_panic]
    fn multik_rejects_unsorted_k_list() {
        let reads = tile_reads(&random_genome(500, 26), 80, 20);
        let _ = assemble_multik(
            &reads,
            &[31, 21],
            AssemblyConfig {
                k: 0,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 60,
            },
        );
    }

    #[test]
    fn wide_k_assembly_reassembles_genome() {
        // k = 45 > 32 exercises the 128-bit node path.
        let g = random_genome(3000, 30);
        let reads = tile_reads(&g, 100, 20);
        let asm = assemble(
            &reads,
            AssemblyConfig {
                k: 45,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        assert_eq!(asm.contigs.len(), 1);
        assert_eq!(asm.contigs[0].len(), g.len());
        assert!(asm.contigs[0] == g || asm.contigs[0] == reverse_complement_ascii(&g));
    }

    #[test]
    fn multik_crossing_the_width_boundary() {
        // k list spanning the 64-bit / 128-bit node widths.
        let g = random_genome(2500, 31);
        let reads = tile_reads(&g, 100, 20);
        let asm = assemble_multik(
            &reads,
            &[21, 31, 41],
            AssemblyConfig {
                k: 0,
                min_count: 1,
                max_count: u32::MAX,
                min_contig_len: 100,
            },
        );
        assert_eq!(asm.stats.max_contig, g.len());
    }

    #[test]
    fn deterministic_output() {
        let g = random_genome(2500, 13);
        let reads = tile_reads(&g, 80, 15);
        let cfg = AssemblyConfig {
            k: 21,
            min_count: 1,
            max_count: u32::MAX,
            min_contig_len: 50,
        };
        let a = assemble(&reads, cfg);
        let b = assemble(&reads, cfg);
        assert_eq!(a.contigs, b.contigs);
    }
}
