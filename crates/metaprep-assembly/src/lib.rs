//! Compact de Bruijn graph unitig assembler — the MEGAHIT stand-in.
//!
//! Tables 8 and 9 of the paper measure how METAPREP partitioning affects a
//! downstream assembler's running time and output quality. MEGAHIT itself
//! is a large external C++ program; this crate implements the smallest
//! assembler with the properties those tables exercise:
//!
//! * k-mer counting with a solid-k-mer frequency threshold (every dBG
//!   assembler filters low-coverage k-mers, which is also why the paper's
//!   `KF` filters "result in improved assembly quality");
//! * unitig construction: maximal non-branching paths of the canonical de
//!   Bruijn graph, walked in both orientations;
//! * assembly statistics: contig count, total bases, longest contig, and
//!   N50 — exactly the columns of Table 9.
//!
//! Runtime grows with input size and graph complexity, so partition-and-
//! assemble-separately reproduces the Table 8 speedup shape.

pub mod assembler;
pub mod stats;

pub use assembler::{assemble, assemble_multik, Assembly, AssemblyConfig};
pub use stats::AssemblyStats;
