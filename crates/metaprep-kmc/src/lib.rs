//! KMC2-style two-stage k-mer counter — the paper's §4.2.1 comparator.
//!
//! KMC 2 (Deorowicz et al., 2015) counts k-mers in two stages:
//!
//! * **Stage 1**: scan the reads, split them into *super-k-mers* (maximal
//!   runs of consecutive k-mers sharing a minimizer) and append each
//!   super-k-mer to the bin selected by its minimizer. Super-k-mers
//!   compress the intermediate data: a run of `c` k-mers costs `k + c - 1`
//!   bases instead of `c·k`.
//! * **Stage 2**: per bin, expand the super-k-mers back into k-mers, sort,
//!   and compact into `(k-mer, count)` pairs.
//!
//! Figure 9 of the METAPREP paper compares KmerGen+Comm (Stage 1) and
//! LocalSort (Stage 2) against this structure; [`count_kmers`] reports the
//! same per-stage split. The trade-off the paper observes — KMC2 pays extra
//! in Stage 1 to find super-k-mers but sorts *fewer, compressed* records in
//! Stage 2 — emerges from this implementation for the same reason.

use metaprep_io::ReadStore;
use metaprep_kmer::{superkmers, Kmer64};
use metaprep_sort::{is_sorted_by_key, lsb_radix_sort};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Configuration of the counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KmcConfig {
    /// k-mer length (`<= 32`; the comparator was only run at `k = 27`).
    pub k: usize,
    /// Minimizer length (KMC2 uses 7 by default; must be `<= k`).
    pub minimizer_len: usize,
    /// Number of bins (KMC2 uses a few hundred).
    pub bins: usize,
}

impl Default for KmcConfig {
    fn default() -> Self {
        Self {
            k: 27,
            minimizer_len: 7,
            bins: 256,
        }
    }
}

/// Output of a counting run.
#[derive(Clone, Debug)]
pub struct KmcResult {
    /// Total k-mer occurrences counted.
    pub total_kmers: u64,
    /// Number of distinct canonical k-mers.
    pub distinct_kmers: u64,
    /// Highest count of any k-mer.
    pub max_count: u64,
    /// Total super-k-mer records produced by Stage 1.
    pub superkmer_records: u64,
    /// Total bases stored in bins (the compressed intermediate size).
    pub binned_bases: u64,
    /// Stage 1 wall time (scan + bin).
    pub stage1: Duration,
    /// Stage 2 wall time (expand + sort + compact).
    pub stage2: Duration,
    /// Per-bin `(k-mer, count)` outputs, sorted by k-mer within each bin.
    pub counts_per_bin: Vec<Vec<(u64, u32)>>,
}

impl KmcResult {
    /// Count of one canonical k-mer value (linear scan over its bin;
    /// intended for tests and spot checks).
    pub fn count_of(&self, kmer: u64) -> u32 {
        for bin in &self.counts_per_bin {
            if let Ok(i) = bin.binary_search_by_key(&kmer, |&(v, _)| v) {
                return bin[i].1;
            }
        }
        0
    }

    /// Flatten into a sorted `(k-mer, count)` list.
    pub fn all_counts(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.counts_per_bin.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Count canonical k-mers of `store` with the two-stage minimizer method.
pub fn count_kmers(store: &ReadStore, cfg: KmcConfig) -> KmcResult {
    assert!(cfg.k >= 1 && cfg.k <= 32, "KMC baseline supports k <= 32");
    assert!(cfg.minimizer_len >= 1 && cfg.minimizer_len <= cfg.k);
    assert!(cfg.bins >= 1);

    // ---- Stage 1: super-k-mer binning -----------------------------------
    let t1 = Instant::now();
    let n = store.len();
    let chunk = n.div_ceil(rayon::current_num_threads().max(1)).max(1);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();

    // Each worker fills its own bin set: bins[b] is a byte stream of
    // records [len: u16 LE][bases...].
    let partials: Vec<(Vec<Vec<u8>>, u64, u64)> = ranges
        .par_iter()
        .map(|&(lo, hi)| {
            let mut bins: Vec<Vec<u8>> = (0..cfg.bins).map(|_| Vec::new()).collect();
            let mut records = 0u64;
            let mut bases = 0u64;
            for i in lo..hi {
                let seq = store.seq(i);
                for sk in superkmers(seq, cfg.k, cfg.minimizer_len) {
                    let b = bin_of_minimizer(sk.minimizer, cfg.bins);
                    let bytes = &seq[sk.start..sk.start + sk.len];
                    bins[b].extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                    bins[b].extend_from_slice(bytes);
                    records += 1;
                    bases += bytes.len() as u64;
                }
            }
            (bins, records, bases)
        })
        .collect();

    let mut bins: Vec<Vec<u8>> = (0..cfg.bins).map(|_| Vec::new()).collect();
    let mut superkmer_records = 0u64;
    let mut binned_bases = 0u64;
    for (partial, records, bases) in partials {
        superkmer_records += records;
        binned_bases += bases;
        for (b, mut v) in partial.into_iter().enumerate() {
            bins[b].append(&mut v);
        }
    }
    let stage1 = t1.elapsed();

    // ---- Stage 2: expand, sort, compact ---------------------------------
    let t2 = Instant::now();
    let counts_per_bin: Vec<Vec<(u64, u32)>> = bins
        .par_iter()
        .map(|bin| {
            let mut kmers: Vec<u64> = Vec::new();
            let mut at = 0usize;
            while at < bin.len() {
                let len = u16::from_le_bytes([bin[at], bin[at + 1]]) as usize;
                at += 2;
                let bytes = &bin[at..at + len];
                at += len;
                metaprep_kmer::for_each_canonical_kmer::<Kmer64>(bytes, cfg.k, |v, _| {
                    kmers.push(v)
                });
            }
            let mut scratch = vec![0u64; kmers.len()];
            lsb_radix_sort(&mut kmers, &mut scratch, 8, 2 * cfg.k as u32);
            debug_assert!(is_sorted_by_key(&kmers));
            compact(&kmers)
        })
        .collect();
    let stage2 = t2.elapsed();

    let mut total = 0u64;
    let mut distinct = 0u64;
    let mut max_count = 0u64;
    for bin in &counts_per_bin {
        distinct += bin.len() as u64;
        for &(_, c) in bin {
            total += c as u64;
            max_count = max_count.max(c as u64);
        }
    }

    KmcResult {
        total_kmers: total,
        distinct_kmers: distinct,
        max_count,
        superkmer_records,
        binned_bases,
        stage1,
        stage2,
        counts_per_bin,
    }
}

/// Bin index of a minimizer value: multiplicative hash then modulo, so
/// adjacent minimizers spread across bins.
#[inline]
fn bin_of_minimizer(minimizer: u64, bins: usize) -> usize {
    (minimizer.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % bins
}

/// Run-length compact a sorted k-mer list into `(k-mer, count)` pairs.
fn compact(sorted: &[u64]) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sorted.len() {
        let v = sorted[i];
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == v {
            j += 1;
        }
        out.push((v, (j - i) as u32));
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_kmer::for_each_canonical_kmer;
    use std::collections::HashMap;

    fn naive_counts(store: &ReadStore, k: usize) -> HashMap<u64, u32> {
        let mut m = HashMap::new();
        for (seq, _) in store.iter() {
            for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| *m.entry(v).or_insert(0) += 1);
        }
        m
    }

    fn store() -> ReadStore {
        let mut s = ReadStore::new();
        let mut x = 3u64;
        for _ in 0..60 {
            let seq: Vec<u8> = (0..70)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                    b"ACGT"[(x >> 61) as usize & 3]
                })
                .collect();
            s.push_single(&seq);
        }
        // Add repeated reads to create high-frequency k-mers.
        let rep: Vec<u8> = b"ACGTTGCA".iter().cycle().take(50).copied().collect();
        for _ in 0..5 {
            s.push_single(&rep);
        }
        s
    }

    #[test]
    fn matches_naive_hashmap_counts() {
        let s = store();
        let cfg = KmcConfig {
            k: 15,
            minimizer_len: 5,
            bins: 32,
        };
        let res = count_kmers(&s, cfg);
        let want = naive_counts(&s, 15);
        assert_eq!(res.distinct_kmers as usize, want.len());
        assert_eq!(
            res.total_kmers,
            want.values().map(|&c| c as u64).sum::<u64>()
        );
        for (&k, &c) in &want {
            assert_eq!(res.count_of(k), c, "k-mer {k:#x}");
        }
    }

    #[test]
    fn all_counts_sorted_and_complete() {
        let s = store();
        let res = count_kmers(
            &s,
            KmcConfig {
                k: 11,
                minimizer_len: 4,
                bins: 8,
            },
        );
        let all = res.all_counts();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(all.len() as u64, res.distinct_kmers);
    }

    #[test]
    fn superkmers_compress_the_intermediate() {
        let s = store();
        let cfg = KmcConfig {
            k: 21,
            minimizer_len: 7,
            bins: 64,
        };
        let res = count_kmers(&s, cfg);
        // Binned bases must be much less than total k-mer bases (k * count)
        // and at least the read bases that contain k-mers.
        assert!(res.binned_bases < res.total_kmers * cfg.k as u64 / 2);
        assert!(res.superkmer_records > 0);
    }

    #[test]
    fn handles_reads_with_n() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGTACGTNNACGTACGTACGT");
        let res = count_kmers(
            &s,
            KmcConfig {
                k: 5,
                minimizer_len: 3,
                bins: 4,
            },
        );
        let want = naive_counts(&s, 5);
        assert_eq!(
            res.total_kmers,
            want.values().map(|&c| c as u64).sum::<u64>()
        );
    }

    #[test]
    fn empty_store() {
        let res = count_kmers(&ReadStore::new(), KmcConfig::default());
        assert_eq!(res.total_kmers, 0);
        assert_eq!(res.distinct_kmers, 0);
    }

    #[test]
    fn repeated_read_has_high_count() {
        let s = store();
        let res = count_kmers(
            &s,
            KmcConfig {
                k: 15,
                minimizer_len: 5,
                bins: 16,
            },
        );
        // The repeated read appears 5 times; its k-mers count >= 5.
        assert!(res.max_count >= 5);
    }

    #[test]
    fn single_bin_still_correct() {
        let s = store();
        let res = count_kmers(
            &s,
            KmcConfig {
                k: 9,
                minimizer_len: 3,
                bins: 1,
            },
        );
        let want = naive_counts(&s, 9);
        assert_eq!(res.distinct_kmers as usize, want.len());
    }
}
