//! Task spawning, per-pair channels, and the task context.
//!
//! # Concurrency correctness
//!
//! The simulator carries its own runtime misuse detectors (tentpole of
//! the concurrency-correctness layer; see DESIGN.md "Safety &
//! verification"):
//!
//! * **Deadlock watchdog** — every blocking receive polls with a short
//!   timeout and publishes the task's state (running / at barrier /
//!   blocked on a specific peer). When a poll expires, the task checks
//!   whether *every* live task is blocked while every awaited inbox is
//!   empty — a condition that is stable (a blocked task cannot send), so
//!   observing it once proves no future progress. Instead of hanging,
//!   the run aborts with a per-task state report.
//! * **Message conservation** — sends and receives are counted per
//!   task; at the end of a run the harness asserts
//!   `sent == received + still-queued`, so a lost or duplicated message
//!   in the channel layer cannot go unnoticed.
//! * **Schedule exploration** — [`explore_schedules`] re-runs a cluster
//!   body under deterministic per-task timing jitter so that
//!   order-dependent bugs surface without a model checker; the
//!   exhaustive version of the same idea lives in `tests/loom.rs`
//!   against the `crate::sync` loom shim.

use crate::delivery::DedupState;
#[cfg(not(loom))]
use crate::delivery::Offer;
use crate::faults::{Boundary, FaultPlan, FaultReport, FaultReportKind, FaultTally, SendDecision};
use crate::stats::CommStats;
#[cfg(not(loom))]
use crate::sync::channel::{DepthProbe, RecvTimeoutError};
use crate::sync::channel::{Receiver, Sender};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::Payload;
use metaprep_obs::TaskObs;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex};

/// The logical message: the payload plus the sender's Lamport clock at
/// the send and the per-pair sequence number. Clock and seq are tracing
/// metadata — they cost two `u64`s per message and are NOT counted as
/// communication volume (`CommStats` stays the single source of truth
/// for modeled bytes). Untraced sends ship clock 0, which is the
/// identity for the receiver's `max(local, sender) + 1` merge. The seq
/// is what the receive-side `(src, dst, seq)` dedup keys on.
struct Envelope<M> {
    msg: M,
    clock: u64,
    // Read by the non-loom dedup/stash receive path only; under loom the
    // fault plane is inert and delivery is plain FIFO.
    #[cfg_attr(loom, allow(dead_code))]
    seq: u64,
}

/// What actually travels on a channel. Without fault injection every
/// wire item is `Env`. A `Duplicate` fault ships a `Dup` ghost right
/// after the real envelope (payloads are owned buffers, so a real
/// second copy cannot exist), and the receiver discards it — exactly
/// what an idempotent receiver does to a retransmitted datagram. The
/// ghost needs no sequence number: it rides directly behind the
/// envelope it duplicates on the same FIFO channel, so its position is
/// its identity.
enum Wire<M> {
    Env(Envelope<M>),
    Dup,
}

/// Default stall threshold: how long a peer may go without making any
/// channel progress before a task blocked on it escalates a
/// [`FaultReport`]. Deliberately far above the deadlock watchdog's poll
/// interval — a computing task makes no channel progress, so this must
/// exceed the longest legitimate compute phase between communications.
const DEFAULT_WATCHDOG_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Cluster shape: `tasks` simulated MPI ranks, each owning a rayon pool of
/// `threads_per_task` threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of simulated MPI tasks (`P`).
    pub tasks: usize,
    /// Threads per task (`T`).
    pub threads_per_task: usize,
    /// Stall threshold: a task blocked receiving from a peer that has
    /// made no channel progress for longer than this aborts the run
    /// with a structured stall report (see `DEFAULT_WATCHDOG_TIMEOUT`).
    pub watchdog_timeout: std::time::Duration,
}

impl ClusterConfig {
    /// Convenience constructor (default watchdog timeout).
    pub fn new(tasks: usize, threads_per_task: usize) -> Self {
        assert!(tasks >= 1 && threads_per_task >= 1);
        Self {
            tasks,
            threads_per_task,
            watchdog_timeout: DEFAULT_WATCHDOG_TIMEOUT,
        }
    }

    /// Override the stall threshold (see [`ClusterConfig::watchdog_timeout`]).
    pub fn with_watchdog_timeout(mut self, timeout: std::time::Duration) -> Self {
        assert!(!timeout.is_zero(), "watchdog timeout must be nonzero");
        self.watchdog_timeout = timeout;
        self
    }
}

/// Cluster-level fault/recovery totals, summed over all ranks. All
/// zero on a fault-free run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Send attempts suppressed by a drop rule.
    pub drops: u64,
    /// Delivery retries made after drops (equals `drops` on a run that
    /// completed, since every drop is eventually retried).
    pub retries: u64,
    /// Sends that slept under an injected delay.
    pub delays: u64,
    /// Duplicate wire copies shipped.
    pub duplicates_sent: u64,
    /// Duplicate wire items discarded by receive-side dedup.
    pub duplicates_discarded: u64,
    /// Receive-side reorder injections that fired.
    pub reorders: u64,
    /// Envelopes held out-of-order in a stash at some point.
    pub stashed: u64,
}

/// Results of a cluster run: per-task return values and communication
/// statistics, both indexed by rank.
#[derive(Debug)]
pub struct ClusterResult<R> {
    /// Per-task return values.
    pub results: Vec<R>,
    /// Per-task communication statistics.
    pub stats: Vec<CommStats>,
    /// Fault-injection totals (all zero without a fault plan).
    pub faults: FaultStats,
}

/// Task-state word: the task is executing user code.
const STATE_RUNNING: u64 = u64::MAX;
/// Task-state word: the task body returned.
const STATE_DONE: u64 = u64::MAX - 1;
/// Task-state word: the task is waiting at the cluster barrier.
const STATE_AT_BARRIER: u64 = u64::MAX - 2;
// Any other value `v` means "blocked receiving from rank `v`".

/// Watchdog poll interval for blocking receives.
#[cfg(not(loom))]
const WATCHDOG_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// A barrier whose waiters poll an abort flag, so a watchdog-triggered
/// abort also unwinds tasks parked at a barrier instead of hanging the
/// scope join. (`std::sync::Barrier` waits are uninterruptible.)
struct AbortableBarrier {
    lock: Mutex<BarrierGen>,
    cv: Condvar,
    parties: usize,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
}

impl AbortableBarrier {
    fn new(parties: usize) -> Self {
        Self {
            lock: Mutex::new(BarrierGen {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Wait for all parties; panics (releasing the caller) if `aborted`
    /// becomes true while waiting.
    fn wait(&self, aborted: &AtomicBool) {
        // EXPECT: poisoning means a task panicked holding the barrier lock; propagating that panic is the abort path.
        let mut g = self.lock.lock().expect("barrier lock poisoned");
        g.arrived += 1;
        if g.arrived == self.parties {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = g.generation;
        while g.generation == gen {
            // ORDERING: Relaxed — the abort flag is a monitoring signal; no
            // data is published through it.
            if aborted.load(Ordering::Relaxed) {
                drop(g);
                panic!("cluster aborted while task waited at barrier");
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(25))
                // EXPECT: poisoning, as above, is the abort path.
                .expect("barrier lock poisoned");
            g = guard;
        }
    }
}

struct SharedState {
    barrier: AbortableBarrier,
    bytes_sent: Vec<AtomicU64>,
    messages_sent: Vec<AtomicU64>,
    bytes_received: Vec<AtomicU64>,
    messages_received: Vec<AtomicU64>,
    /// Per-task state word (see the `STATE_*` constants).
    task_state: Vec<AtomicU64>,
    /// Set by the watchdog (or a panicking task) to release every
    /// blocked task so the scope join can complete.
    aborted: AtomicBool,
    /// `inbox_depth[to][from]`: queue-depth probe of the channel from
    /// `from` into `to`, readable by the watchdog from any task.
    #[cfg(not(loom))]
    inbox_depth: Vec<Vec<DepthProbe>>,
    /// Time origin for the stall watchdog's progress stamps.
    #[cfg(not(loom))]
    epoch: std::time::Instant,
    /// `last_progress[rank]`: nanoseconds since `epoch` at the rank's
    /// most recent channel progress (send delivered, message received,
    /// barrier passed). Stamp 0 means "no progress yet" — tasks get the
    /// full stall budget from cluster start.
    #[cfg(not(loom))]
    last_progress: Vec<AtomicU64>,
    /// Stall threshold in nanoseconds (`ClusterConfig::watchdog_timeout`).
    #[cfg(not(loom))]
    stall_after_ns: u64,
    // Fault-injection tallies (see `FaultStats`). Plain statistics
    // counters like the conservation counters above; all stay zero
    // without a fault plan.
    drops: AtomicU64,
    retries: AtomicU64,
    delays: AtomicU64,
    dup_pushed: AtomicU64,
    dup_consumed: AtomicU64,
    reorders: AtomicU64,
    stash_held: AtomicU64,
}

impl SharedState {
    /// Deadlock test, run by a task whose receive just timed out.
    ///
    /// Returns a report if **every** task is done or blocked while every
    /// recv-blocked task's awaited inbox is empty. The condition is
    /// stable once observed: a blocked or done task sends nothing, so no
    /// awaited inbox can become non-empty — the cluster can never make
    /// progress again and aborting is sound. (A task observed RUNNING
    /// may still send, so the watchdog stays quiet and retries.)
    #[cfg(not(loom))]
    fn deadlock_report(&self) -> Option<String> {
        let p = self.task_state.len();
        let mut any_blocked_recv = false;
        // ORDERING: Relaxed — state words and depth probes are monitoring
        // data; the decision only needs each value to be *eventually*
        // current, and the re-poll loop provides that.
        for rank in 0..p {
            // ORDERING: Relaxed — monitoring only, as above.
            match self.task_state[rank].load(Ordering::Relaxed) {
                STATE_DONE | STATE_AT_BARRIER => {}
                STATE_RUNNING => return None,
                from => {
                    if !self.inbox_depth[rank][from as usize].is_empty() {
                        return None; // a message is waiting; progress possible
                    }
                    any_blocked_recv = true;
                }
            }
        }
        if !any_blocked_recv {
            // Everyone is done or at the barrier; barriers complete on
            // their own once all live tasks arrive.
            return None;
        }
        let mut lines =
            vec!["cluster DEADLOCK: all tasks blocked, all awaited inboxes empty".to_string()];
        for rank in 0..p {
            // ORDERING: Relaxed — report rendering; monitoring only.
            let desc = match self.task_state[rank].load(Ordering::Relaxed) {
                STATE_DONE => "done".to_string(),
                STATE_RUNNING => "running".to_string(),
                STATE_AT_BARRIER => "waiting at barrier".to_string(),
                from => format!(
                    "blocked on recv from task {from} (inbox empty, {} sent / {} received)",
                    self.messages_sent[rank].load(Ordering::Relaxed),
                    self.messages_received[rank].load(Ordering::Relaxed),
                ),
            };
            lines.push(format!("  task {rank}: {desc}"));
        }
        Some(lines.join("\n"))
    }

    /// Nanoseconds since the cluster epoch.
    #[cfg(not(loom))]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Stamp `rank`'s progress clock (called on every send delivery,
    /// receive, and barrier completion).
    #[cfg(not(loom))]
    fn note_progress(&self, rank: usize) {
        // ORDERING: Relaxed — monitoring stamp, read only by the
        // watchdog whose decision tolerates staleness (it re-polls).
        self.last_progress[rank].store(self.now_ns(), Ordering::Relaxed);
    }

    /// Stall test, run by task `rank` whose receive from `from` just
    /// timed out: has `from` made no channel progress for longer than
    /// the configured watchdog timeout while its inbox to us is empty?
    /// Unlike the deadlock test this also catches a peer that is
    /// *running* but wedged (an injected stall, an accidental infinite
    /// loop) or that exited without sending — at the cost of a false
    /// positive if a legitimate compute phase outlasts the timeout,
    /// which is why the threshold is configurable and defaults high.
    #[cfg(not(loom))]
    fn stall_report(&self, rank: usize, from: usize) -> Option<FaultReport> {
        if !self.inbox_depth[rank][from].is_empty() {
            return None; // a message is waiting; we will make progress
        }
        // ORDERING: Relaxed — monitoring stamp, as in `note_progress`.
        let idle_ns = self
            .now_ns()
            .saturating_sub(self.last_progress[from].load(Ordering::Relaxed));
        if idle_ns <= self.stall_after_ns {
            return None;
        }
        let mut detail = String::new();
        for (r, state) in self.task_state.iter().enumerate() {
            // ORDERING: Relaxed — report rendering; monitoring only.
            let desc = match state.load(Ordering::Relaxed) {
                STATE_DONE => "done".to_string(),
                STATE_RUNNING => "running".to_string(),
                STATE_AT_BARRIER => "waiting at barrier".to_string(),
                f => format!("blocked on recv from task {f}"),
            };
            detail.push_str(&format!("\n  task {r}: {desc}"));
        }
        Some(FaultReport {
            kind: FaultReportKind::Stall,
            rank,
            peer: from,
            seq: 0,
            attempts: 0,
            detail,
        })
    }
}

/// The view a task body gets of the cluster: its rank, its channels, its
/// thread pool.
pub struct TaskCtx<M: Payload> {
    rank: usize,
    size: usize,
    /// senders[to] — channel into task `to`'s inbox from this task.
    senders: Vec<Sender<Wire<M>>>,
    /// receivers[from] — this task's inbox from task `from`.
    receivers: Vec<Receiver<Wire<M>>>,
    shared: Arc<SharedState>,
    pool: rayon::ThreadPool,
    /// Schedule-jitter PRNG state; 0 disables jitter (the default).
    jitter: Cell<u64>,
    /// send_seq[to] — messages sent to `to` so far. Channels are per-pair
    /// FIFO, so both endpoints can derive matching 0-based sequence
    /// numbers independently; every send bumps it, traced or not, which
    /// keeps the two sides aligned even in mixed traced/untraced runs.
    send_seq: Vec<Cell<u64>>,
    /// recv_seq[from] — messages received from `from` so far (see above).
    recv_seq: Vec<Cell<u64>>,
    /// The fault schedule, cloned per rank; `None` (the fast path)
    /// without injection.
    fault_plan: Option<FaultPlan>,
    /// dedup[from] — receive-side `(src, dst, seq)` dedup/reorder state.
    #[cfg_attr(loom, allow(dead_code))]
    dedup: Vec<RefCell<DedupState>>,
    /// stash[from] — envelopes that arrived ahead of order, keyed by
    /// seq, held until their turn (`DedupState` tracks which are held).
    #[cfg_attr(loom, allow(dead_code))]
    stash: Vec<RefCell<BTreeMap<u64, Envelope<M>>>>,
    /// Crash boundaries already taken (each declared crash fires once —
    /// the restarted attempt must run through the boundary).
    crashes_fired: RefCell<BTreeSet<Boundary>>,
    /// This rank's injected-fault count (drops, delays, dups, reorders,
    /// crashes), surfaced to the observability layer.
    injected: Cell<u64>,
    /// This rank's delivery-retry count, surfaced like `injected`.
    retries: Cell<u64>,
}

impl<M: Payload> TaskCtx<M> {
    /// This task's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of tasks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The task-local rayon pool (the "OpenMP threads" of this rank).
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Is a fault plan active on this run?
    pub fn faults_enabled(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// This rank's injected-fault and retry tallies so far; `None`
    /// without a fault plan.
    pub fn fault_tally(&self) -> Option<FaultTally> {
        self.fault_plan.as_ref().map(|_| FaultTally {
            injected: self.injected.get(),
            retries: self.retries.get(),
        })
    }

    /// Crash-injection point: panics with [`crate::faults::InjectedCrash`]
    /// if the active plan declares a crash for this rank at boundary
    /// `at` and it has not fired yet. The supervisor
    /// ([`crate::supervisor::run_supervised`]) catches exactly this
    /// payload and restarts the task body; the boundary is marked fired
    /// so the restarted attempt runs through it.
    pub fn maybe_crash(&self, at: Boundary) {
        let Some(plan) = &self.fault_plan else {
            return;
        };
        if plan.crashes_at(self.rank, at) && self.crashes_fired.borrow_mut().insert(at) {
            self.injected.set(self.injected.get() + 1);
            std::panic::panic_any(crate::faults::InjectedCrash {
                rank: self.rank as u32,
                at,
            });
        }
    }

    /// Under [`explore_schedules`], perturb OS scheduling with a burst of
    /// deterministic-length yields before a visible operation.
    fn jitter_point(&self) {
        let s = self.jitter.get();
        if s == 0 {
            return;
        }
        // xorshift64* step — deterministic per (seed, call sequence).
        let mut x = s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.set(x);
        for _ in 0..(x % 4) {
            std::thread::yield_now();
        }
    }

    /// Send `msg` to task `to`. Never blocks (channels are unbounded; the
    /// simulation models volume, not backpressure).
    pub fn send(&self, to: usize, msg: M) {
        // Untraced sends carry Lamport clock 0 — the identity under the
        // receiver's max-merge, so traced and untraced traffic can mix.
        self.send_env(to, msg, 0);
    }

    /// Traced send: records a `MessageSend` edge on `obs` (advancing its
    /// Lamport clock) and ships the clock on the wire so the receiver can
    /// merge it. Byte volume still flows only through `CommStats`.
    pub fn send_traced(
        &self,
        to: usize,
        msg: M,
        obs: &mut TaskObs<'_>,
        stage: &'static str,
        round: Option<u32>,
    ) {
        let seq = self.send_seq[to].get();
        let clock = obs.record_send(to as u32, stage, round, msg.size_bytes() as u64, seq);
        self.send_env(to, msg, clock);
    }

    /// Shared send path: counts volume, bumps the per-pair sequence
    /// counter, and delivers the envelope — through the fault plane
    /// when one is active. A `Drop` decision suppresses the push; the
    /// sender sleeps a deterministic bounded-exponential backoff and
    /// retries (the channel is the ack: in-process delivery is reliable
    /// once pushed, so retrying the push IS the retransmit). Logical
    /// counters are bumped once per message regardless of attempts.
    fn send_env(&self, to: usize, msg: M, clock: u64) {
        self.jitter_point();
        let seq = self.send_seq[to].get();
        self.send_seq[to].set(seq + 1);
        // ORDERING: Relaxed — pure statistics counters; the channel itself
        // synchronizes the payload, and counters are only read after the
        // thread scope joins (or by the monitoring-only watchdog).
        self.shared.bytes_sent[self.rank].fetch_add(msg.size_bytes() as u64, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, as above.
        self.shared.messages_sent[self.rank].fetch_add(1, Ordering::Relaxed);
        let env = Envelope { msg, clock, seq };
        let Some(plan) = &self.fault_plan else {
            self.senders[to]
                .send(Wire::Env(env))
                // EXPECT: receivers live until the thread scope joins; a disconnect means the peer already panicked and this panic surfaces it.
                .expect("receiving task exited before message was delivered");
            self.note_progress();
            return;
        };
        let mut attempt = 0u32;
        loop {
            match plan.decide_send(self.rank, to, seq, attempt) {
                SendDecision::Drop => {
                    // ORDERING: Relaxed — statistics counter, as above.
                    self.shared.drops.fetch_add(1, Ordering::Relaxed);
                    self.injected.set(self.injected.get() + 1);
                    if attempt >= plan.delivery.max_retries {
                        // Escalate: release blocked peers, then panic with
                        // the structured report.
                        // ORDERING: Relaxed — peers poll the abort flag.
                        self.shared.aborted.store(true, Ordering::Relaxed);
                        let report = FaultReport {
                            kind: FaultReportKind::RetriesExhausted,
                            rank: self.rank,
                            peer: to,
                            seq,
                            attempts: attempt + 1,
                            detail: String::new(),
                        };
                        panic!("{report}");
                    }
                    attempt += 1;
                    self.retries.set(self.retries.get() + 1);
                    // ORDERING: Relaxed — statistics counter, as above.
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    #[cfg(not(loom))]
                    std::thread::sleep(std::time::Duration::from_micros(
                        plan.backoff_us(self.rank, to, seq, attempt),
                    ));
                }
                SendDecision::Deliver {
                    delay_us,
                    duplicate,
                } => {
                    if delay_us > 0 {
                        // ORDERING: Relaxed — statistics counter, as above.
                        self.shared.delays.fetch_add(1, Ordering::Relaxed);
                        self.injected.set(self.injected.get() + 1);
                        #[cfg(not(loom))]
                        std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    }
                    self.senders[to]
                        .send(Wire::Env(env))
                        // EXPECT: receivers live until the thread scope joins; a disconnect means the peer already panicked and this panic surfaces it.
                        .expect("receiving task exited before message was delivered");
                    if duplicate {
                        self.senders[to]
                            .send(Wire::Dup)
                            // EXPECT: receivers live until the thread scope joins, as above.
                            .expect("receiving task exited before message was delivered");
                        // ORDERING: Relaxed — statistics counter, as above.
                        self.shared.dup_pushed.fetch_add(1, Ordering::Relaxed);
                        self.injected.set(self.injected.get() + 1);
                    }
                    self.note_progress();
                    return;
                }
            }
        }
    }

    /// Stamp this rank's progress clock for the stall watchdog (no-op
    /// under loom, where the model's scheduler owns liveness).
    fn note_progress(&self) {
        #[cfg(not(loom))]
        self.shared.note_progress(self.rank);
    }

    /// Blocking receive of the next message from task `from`.
    ///
    /// Never hangs on a deadlocked cluster: the receive polls, publishes
    /// this task's blocked state, and runs the watchdog's deadlock test
    /// on every expiry (see the module docs). A detected deadlock aborts
    /// the run with a per-task report.
    #[cfg(not(loom))]
    pub fn recv_from(&self, from: usize) -> M {
        self.recv_env_from(from).msg
    }

    /// Traced receive: records a `MessageRecv` edge on `obs` and merges
    /// the sender's Lamport clock (`max(local, sender) + 1`). Blocking
    /// semantics are identical to [`TaskCtx::recv_from`].
    pub fn recv_from_traced(
        &self,
        from: usize,
        obs: &mut TaskObs<'_>,
        stage: &'static str,
        round: Option<u32>,
    ) -> M {
        // The sequence number identifies THIS message: the count of
        // messages received from `from` before it (FIFO channel), read
        // before `recv_env_from` bumps the counter.
        let seq = self.recv_seq[from].get();
        let env = self.recv_env_from(from);
        obs.record_recv(
            from as u32,
            stage,
            round,
            env.msg.size_bytes() as u64,
            seq,
            env.clock,
        );
        env.msg
    }

    /// Bookkeeping for a delivered envelope: counters, sequence bump,
    /// progress stamp. `env.seq` is always the expected next sequence
    /// number (the dedup layer guarantees in-order delivery).
    #[cfg(not(loom))]
    fn finish_delivery(&self, from: usize, env: Envelope<M>) -> Envelope<M> {
        // ORDERING: Relaxed — monitoring state word + statistics counters;
        // the channel synchronized the payload itself.
        self.shared.task_state[self.rank].store(STATE_RUNNING, Ordering::Relaxed);
        self.shared.messages_received[self.rank].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, same reasoning as above.
        self.shared.bytes_received[self.rank]
            .fetch_add(env.msg.size_bytes() as u64, Ordering::Relaxed);
        self.recv_seq[from].set(self.recv_seq[from].get() + 1);
        self.note_progress();
        env
    }

    /// Shared blocking-receive path (watchdog variant); returns the raw
    /// envelope so traced receives can see the sender's clock.
    ///
    /// With a fault plan active this is the idempotent-receive side of
    /// the delivery protocol: every wire item is classified against the
    /// next expected `(src, dst)` sequence number — duplicates are
    /// discarded, early arrivals (from reorder injection) are stashed
    /// and delivered at their turn, and only the expected envelope is
    /// returned. Delivery to the caller is therefore always in-order,
    /// exactly once, no matter what the fault plane did to the wire.
    #[cfg(not(loom))]
    fn recv_env_from(&self, from: usize) -> Envelope<M> {
        self.jitter_point();
        loop {
            let next = self.recv_seq[from].get();
            // A stashed envelope whose turn has come is delivered before
            // touching the channel, so the stash can never starve.
            if self.fault_plan.is_some() && self.dedup[from].borrow_mut().take_ready(next) {
                let env = self.stash[from]
                    .borrow_mut()
                    .remove(&next)
                    // EXPECT: `take_ready` returning true means exactly this seq was recorded as stashed, and every Stash classification stores the envelope under its seq.
                    .expect("stashed envelope missing for ready seq");
                return self.finish_delivery(from, env);
            }
            // ORDERING: Relaxed on all state words — monitoring only; see
            // `SharedState::deadlock_report` for why stale reads are safe.
            self.shared.task_state[self.rank].store(from as u64, Ordering::Relaxed);
            let wire = loop {
                match self.receivers[from].recv_timeout(WATCHDOG_POLL) {
                    Ok(w) => break w,
                    Err(RecvTimeoutError::Timeout) => {
                        // ORDERING: Relaxed — abort flag is poll-only; the
                        // panic/unwind path needs no payload ordering.
                        if self.shared.aborted.load(Ordering::Relaxed) {
                            panic!("cluster aborted while task {} waited on recv", self.rank);
                        }
                        if let Some(report) = self.shared.deadlock_report() {
                            // First observer wins; others unwind via `aborted`.
                            // ORDERING: Relaxed — peers poll the flag, as above.
                            self.shared.aborted.store(true, Ordering::Relaxed);
                            panic!("{report}");
                        }
                        if let Some(report) = self.shared.stall_report(self.rank, from) {
                            // ORDERING: Relaxed — peers poll the flag, as above.
                            self.shared.aborted.store(true, Ordering::Relaxed);
                            panic!("{report}");
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        panic!("sending task exited before sending")
                    }
                }
            };
            let Wire::Env(env) = wire else {
                // A duplicate ghost: discard and keep waiting.
                // ORDERING: Relaxed — statistics counter, as in `send_env`.
                self.shared.dup_consumed.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let Some(plan) = &self.fault_plan else {
                return self.finish_delivery(from, env);
            };
            // Reorder injection: opportunistically pull the wire behind
            // `env` off the channel early. Receiver-side by design — a
            // sender-side holdback could starve a dst the sender never
            // writes to again, whereas pulling ahead here always leaves
            // the expected envelope reachable (it is stashed and served
            // at its turn by the loop head), so this cannot deadlock.
            let mut pending = vec![env];
            if plan.decide_reorder(from, self.rank, next) {
                if let Ok(w2) = self.receivers[from].try_recv() {
                    // ORDERING: Relaxed — statistics counter, as above.
                    self.shared.reorders.fetch_add(1, Ordering::Relaxed);
                    self.injected.set(self.injected.get() + 1);
                    match w2 {
                        // ORDERING: Relaxed — statistics counter, as above.
                        Wire::Dup => {
                            self.shared.dup_consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        Wire::Env(e2) => pending.push(e2),
                    }
                }
            }
            let mut deliver = None;
            for e in pending {
                match self.dedup[from].borrow_mut().classify(next, e.seq) {
                    Offer::Deliver => deliver = Some(e),
                    Offer::Stash => {
                        self.stash[from].borrow_mut().insert(e.seq, e);
                        // ORDERING: Relaxed — statistics counter, as above.
                        self.shared.stash_held.fetch_add(1, Ordering::Relaxed);
                    }
                    // A duplicate real envelope cannot occur (dups ship as
                    // ghosts), but the protocol discards it idempotently.
                    // ORDERING: Relaxed — statistics counter, as above.
                    Offer::Duplicate => {
                        self.shared.dup_consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if let Some(env) = deliver {
                return self.finish_delivery(from, env);
            }
        }
    }

    /// Blocking receive under the loom model: the model's scheduler does
    /// the deadlock detection (it reports when every modeled thread is
    /// blocked), so the runtime watchdog machinery is not needed.
    #[cfg(loom)]
    pub fn recv_from(&self, from: usize) -> M {
        self.recv_env_from(from).msg
    }

    /// Shared blocking-receive path (loom variant); see the non-loom
    /// `recv_env_from` for the envelope rationale. Fault plans are
    /// never active under loom (the model owns the schedule), so every
    /// wire item is a plain envelope.
    #[cfg(loom)]
    fn recv_env_from(&self, from: usize) -> Envelope<M> {
        let wire = self.receivers[from]
            .recv()
            // EXPECT: under loom every modeled task runs to completion (or the model reports deadlock), so a disconnect can only follow a modeled panic.
            .expect("sending task exited before sending");
        let Wire::Env(env) = wire else {
            unreachable!("duplicate ghosts are never injected under loom")
        };
        // ORDERING: Relaxed — statistics counters, as in `send`.
        self.shared.messages_received[self.rank].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, same reasoning as above.
        self.shared.bytes_received[self.rank]
            .fetch_add(env.msg.size_bytes() as u64, Ordering::Relaxed);
        self.recv_seq[from].set(self.recv_seq[from].get() + 1);
        env
    }

    /// Synchronize all tasks.
    pub fn barrier(&self) {
        self.jitter_point();
        // ORDERING: Relaxed — monitoring-only state word, as in recv_from.
        self.shared.task_state[self.rank].store(STATE_AT_BARRIER, Ordering::Relaxed);
        self.shared.barrier.wait(&self.shared.aborted);
        self.shared.task_state[self.rank].store(STATE_RUNNING, Ordering::Relaxed);
        self.note_progress();
    }

    /// Bytes this task has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        // ORDERING: Relaxed — reading own counter on the writing thread.
        self.shared.bytes_sent[self.rank].load(Ordering::Relaxed)
    }
}

/// Best-effort view of a panic payload as a string (for classifying
/// secondary "cluster aborted" unwinds when re-raising a task failure).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        ""
    }
}

/// Run `body` on every rank of a simulated cluster and collect results.
///
/// Panics in any task propagate (the run fails loudly, like an MPI abort).
pub fn run_cluster<M, R, F>(config: ClusterConfig, body: F) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    run_cluster_with_jitter(config, 0, body)
}

/// [`run_cluster`] with deterministic schedule jitter: when `seed != 0`,
/// every task yields a pseudo-random number of times before each send,
/// receive, and barrier, perturbing the interleaving reproducibly.
pub fn run_cluster_with_jitter<M, R, F>(
    config: ClusterConfig,
    seed: u64,
    body: F,
) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    run_cluster_inner(config, seed, None, body)
}

/// [`run_cluster`] under a deterministic fault plan: every send/recv
/// passes through the injection plane of [`crate::faults`], and the
/// run's fault totals come back in [`ClusterResult::faults`]. The
/// conservation accounting still holds (generalized over duplicates
/// and stashes), so a protocol bug cannot hide behind the chaos.
#[cfg(not(loom))]
pub fn run_cluster_faulted<M, R, F>(
    config: ClusterConfig,
    plan: &FaultPlan,
    body: F,
) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    run_cluster_inner(config, 0, Some(plan), body)
}

fn run_cluster_inner<M, R, F>(
    config: ClusterConfig,
    seed: u64,
    plan: Option<&FaultPlan>,
    body: F,
) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    let p = config.tasks;
    // Channel matrix: matrix[from][to].
    let mut senders: Vec<Vec<Sender<Wire<M>>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Wire<M>>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for from in 0..p {
        for rx_row in receivers.iter_mut() {
            let (s, r) = crate::sync::channel::unbounded();
            senders[from].push(s);
            rx_row[from] = Some(r);
        }
    }
    #[cfg(not(loom))]
    let inbox_depth: Vec<Vec<DepthProbe>> = receivers
        .iter()
        .map(|row| {
            row.iter()
                // EXPECT: the wiring loop above fills all p*p receiver slots.
                .map(|r| r.as_ref().expect("filled").depth_probe())
                .collect()
        })
        .collect();

    let shared = Arc::new(SharedState {
        barrier: AbortableBarrier::new(p),
        bytes_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
        messages_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
        bytes_received: (0..p).map(|_| AtomicU64::new(0)).collect(),
        messages_received: (0..p).map(|_| AtomicU64::new(0)).collect(),
        task_state: (0..p).map(|_| AtomicU64::new(STATE_RUNNING)).collect(),
        aborted: AtomicBool::new(false),
        #[cfg(not(loom))]
        inbox_depth,
        #[cfg(not(loom))]
        epoch: std::time::Instant::now(),
        #[cfg(not(loom))]
        last_progress: (0..p).map(|_| AtomicU64::new(0)).collect(),
        #[cfg(not(loom))]
        stall_after_ns: config.watchdog_timeout.as_nanos() as u64,
        drops: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        delays: AtomicU64::new(0),
        dup_pushed: AtomicU64::new(0),
        dup_consumed: AtomicU64::new(0),
        reorders: AtomicU64::new(0),
        stash_held: AtomicU64::new(0),
    });

    let mut ctxs: Vec<TaskCtx<M>> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (s, r))| TaskCtx {
            rank,
            size: p,
            senders: s,
            // EXPECT: the wiring loop filled all p*p receiver slots.
            receivers: r.into_iter().map(|o| o.expect("filled")).collect(),
            shared: Arc::clone(&shared),
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(config.threads_per_task)
                .build()
                // EXPECT: pool build fails only when the OS cannot spawn threads, unrecoverable for a compute cluster.
                .expect("failed to build task thread pool"),
            // Distinct non-zero stream per task (splitmix-style spread);
            // seed 0 disables jitter entirely.
            jitter: Cell::new(if seed == 0 {
                0
            } else {
                seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }),
            send_seq: (0..p).map(|_| Cell::new(0)).collect(),
            recv_seq: (0..p).map(|_| Cell::new(0)).collect(),
            fault_plan: plan.cloned(),
            dedup: (0..p).map(|_| RefCell::new(DedupState::new())).collect(),
            stash: (0..p).map(|_| RefCell::new(BTreeMap::new())).collect(),
            crashes_fired: RefCell::new(BTreeSet::new()),
            injected: Cell::new(0),
            retries: Cell::new(0),
        })
        .collect();

    let body = &body;
    let shared_for_tasks = &shared;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| {
                scope.spawn(move || {
                    let rank = ctx.rank;
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ctx)));
                    // ORDERING: Relaxed — monitoring-only state word.
                    shared_for_tasks.task_state[rank].store(STATE_DONE, Ordering::Relaxed);
                    if out.is_err() {
                        // Release peers blocked in recv/barrier so the scope
                        // join below completes and the panic propagates.
                        shared_for_tasks.aborted.store(true, Ordering::Relaxed);
                    }
                    out
                })
            })
            .collect();
        let outs: Vec<std::thread::Result<R>> = handles
            .into_iter()
            // EXPECT: the closure catches its own panics (the inner `thread::Result`), so `join` can only fail on a non-unwinding abort.
            .map(|h| h.join().expect("task thread died"))
            .collect();
        if outs.iter().any(Result::is_err) {
            // Re-raise the root cause: prefer any payload that is NOT a
            // secondary "cluster aborted" unwind (tasks released by the
            // abort flag after another task already failed).
            let mut secondary = None;
            for out in outs {
                if let Err(payload) = out {
                    // `&*payload`: downcast the payload itself, not the Box.
                    if panic_message(&*payload).starts_with("cluster aborted") {
                        secondary.get_or_insert(payload);
                    } else {
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            // EXPECT: this branch runs only when some task returned Err, and every payload either resumed already or was stashed in `secondary`.
            std::panic::resume_unwind(secondary.expect("some task panicked"));
        }
        outs.into_iter()
            // EXPECT: the branch above resume-unwinds if any entry is Err, so all remaining are Ok.
            .map(|o| o.expect("checked above"))
            .collect()
    });

    // ORDERING: Relaxed — the thread scope join above is the
    // synchronization point; every read through this closure is
    // sequential afterwards.
    let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let faults = FaultStats {
        drops: ld(&shared.drops),
        retries: ld(&shared.retries),
        delays: ld(&shared.delays),
        duplicates_sent: ld(&shared.dup_pushed),
        duplicates_discarded: ld(&shared.dup_consumed),
        reorders: ld(&shared.reorders),
        stashed: ld(&shared.stash_held),
    };

    // Message conservation, generalized over the fault plane: every
    // logical send and every duplicate ghost was either consumed, is
    // still queued on a channel, or sits in a receive stash. Reduces to
    // `sent == received + queued` on a fault-free run. A failure here is
    // a channel/delivery-layer bug, never a user error, so it asserts
    // unconditionally.
    #[cfg(not(loom))]
    {
        // ORDERING: Relaxed — sequential read after the join, as above.
        let sent: u64 = (0..p)
            .map(|r| shared.messages_sent[r].load(Ordering::Relaxed))
            .sum();
        // ORDERING: Relaxed — sequential read after the join, as above.
        let received: u64 = (0..p)
            .map(|r| shared.messages_received[r].load(Ordering::Relaxed))
            .sum();
        let queued: u64 = shared
            .inbox_depth
            .iter()
            .flatten()
            .map(|d| d.len() as u64)
            .sum();
        let stash_outstanding: u64 = ctxs
            .iter()
            .map(|c| c.stash.iter().map(|s| s.borrow().len() as u64).sum::<u64>())
            .sum();
        assert_eq!(
            sent + faults.duplicates_sent,
            received + faults.duplicates_discarded + queued + stash_outstanding,
            "message conservation violated: {sent} sent + {} dup-pushed != {received} received \
             + {} dup-discarded + {queued} queued + {stash_outstanding} stashed",
            faults.duplicates_sent,
            faults.duplicates_discarded,
        );
        // Every drop decision on a completed run was answered by a retry
        // (the alternative is the retries-exhausted escalation, which
        // unwinds before reaching this point).
        assert_eq!(
            faults.drops, faults.retries,
            "delivery bookkeeping violated: {} drops != {} retries",
            faults.drops, faults.retries,
        );
        // Byte conservation: once every inbox and stash drained, every
        // sent byte was received exactly once — duplicate ghosts carry
        // no payload, so the logical totals must match. (With messages
        // still queued the byte totals legitimately differ — the depth
        // probes count messages, not payload bytes.)
        if queued == 0 && stash_outstanding == 0 {
            // ORDERING: Relaxed — sequential read after the join, as above.
            let bytes_sent: u64 = (0..p)
                .map(|r| shared.bytes_sent[r].load(Ordering::Relaxed))
                .sum();
            // ORDERING: Relaxed — sequential read after the join, as above.
            let bytes_received: u64 = (0..p)
                .map(|r| shared.bytes_received[r].load(Ordering::Relaxed))
                .sum();
            assert_eq!(
                bytes_sent, bytes_received,
                "byte conservation violated: {bytes_sent} sent != {bytes_received} received"
            );
        }
    }

    let stats = (0..p)
        .map(|r| CommStats {
            // ORDERING: Relaxed — read after the scope join, as above.
            bytes_sent: shared.bytes_sent[r].load(Ordering::Relaxed),
            messages_sent: shared.messages_sent[r].load(Ordering::Relaxed),
            bytes_received: shared.bytes_received[r].load(Ordering::Relaxed),
            messages_received: shared.messages_received[r].load(Ordering::Relaxed),
        })
        .collect();

    ClusterResult {
        results,
        stats,
        faults,
    }
}

/// Run `body` once per seed under deterministic schedule jitter and
/// return every run's result. The caller asserts cross-run invariants
/// (e.g. that results are schedule-independent); the harness itself
/// already enforces deadlock-freedom and message conservation on every
/// run via the watchdog machinery above.
pub fn explore_schedules<M, R, F>(
    config: ClusterConfig,
    seeds: &[u64],
    body: F,
) -> Vec<ClusterResult<R>>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    seeds
        .iter()
        .map(|&s| run_cluster_with_jitter(config, s.max(1), &body))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(1, 1), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42usize
        });
        assert_eq!(r.results, vec![42]);
        assert_eq!(r.stats[0].bytes_sent, 0);
    }

    #[test]
    fn ranks_are_distinct_and_complete() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(8, 1), |ctx| ctx.rank());
        let mut got = r.results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // results are rank-indexed
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_roundtrip() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1, 2, 3]);
                ctx.recv_from(1)
            } else {
                let v = ctx.recv_from(0);
                let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
                ctx.send(0, doubled.clone());
                doubled
            }
        });
        assert_eq!(r.results[0], vec![2, 4, 6]);
    }

    #[test]
    fn byte_accounting() {
        let r = run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![0u64; 100]); // 800 bytes
            } else {
                let _ = ctx.recv_from(0);
            }
            ctx.barrier();
        });
        assert_eq!(r.stats[0].bytes_sent, 800);
        assert_eq!(r.stats[0].messages_sent, 1);
        assert_eq!(r.stats[1].bytes_sent, 0);
        // Receive side mirrors it on the other rank.
        assert_eq!(r.stats[1].bytes_received, 800);
        assert_eq!(r.stats[1].messages_received, 1);
        assert_eq!(r.stats[0].bytes_received, 0);
        let sent: u64 = r.stats.iter().map(|s| s.bytes_sent).sum();
        let received: u64 = r.stats.iter().map(|s| s.bytes_received).sum();
        assert_eq!(sent, received);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(4, 1), |ctx| {
            // ORDERING: SeqCst — this test asserts cross-task visibility
            // through the barrier alone, so the counter must not reorder.
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every task must observe all 4 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(r.results.iter().all(|&x| x == 4));
    }

    #[test]
    fn task_pools_have_requested_threads() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 3), |ctx| {
            ctx.pool().current_num_threads()
        });
        assert_eq!(r.results, vec![3, 3]);
    }

    #[test]
    fn messages_queue_in_order() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10u32 {
                    ctx.send(1, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| ctx.recv_from(0)[0]).collect()
            }
        });
        assert_eq!(r.results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "DEADLOCK")]
    fn cross_recv_deadlock_is_reported_not_hung() {
        // Both tasks wait for a message the other never sends. The
        // watchdog must turn the hang into a per-task report.
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            let peer = 1 - ctx.rank();
            let _ = ctx.recv_from(peer);
        });
    }

    #[test]
    #[should_panic(expected = "DEADLOCK")]
    fn recv_vs_barrier_deadlock_is_reported() {
        // Task 0 waits at the barrier, task 1 waits for a message from
        // task 0: neither can proceed.
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.barrier();
            } else {
                let _ = ctx.recv_from(0);
            }
        });
    }

    #[test]
    fn watchdog_quiet_on_slow_but_live_cluster() {
        // A sender that dawdles past several watchdog polls must not be
        // declared deadlocked: its RUNNING state keeps the watchdog off.
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(120));
                ctx.send(1, vec![9]);
                0u8
            } else {
                ctx.recv_from(0)[0]
            }
        });
        assert_eq!(r.results, vec![0, 9]);
    }

    #[cfg(not(loom))]
    fn chaos_plan(seed: u64) -> crate::faults::FaultPlan {
        use crate::faults::FaultKind;
        crate::faults::FaultPlan::new(seed)
            .with_rule(FaultKind::Drop, 150_000)
            .with_rule(FaultKind::Delay, 100_000)
            .with_rule(FaultKind::Duplicate, 150_000)
            .with_rule(FaultKind::Reorder, 200_000)
    }

    #[test]
    #[cfg(not(loom))]
    fn faulted_exchange_delivers_in_order_exactly_once() {
        for seed in [1u64, 2, 3, 42] {
            let mut plan = chaos_plan(seed);
            plan.delivery.max_retries = 64;
            plan.delay_max_us = 50;
            let r = run_cluster_faulted::<Vec<u32>, _, _>(ClusterConfig::new(3, 1), &plan, |ctx| {
                // Every rank sends 40 tagged messages to every peer and
                // checks it receives each peer's stream in order.
                let p = ctx.size();
                for i in 0..40u32 {
                    for to in 0..p {
                        if to != ctx.rank() {
                            ctx.send(to, vec![ctx.rank() as u32, i]);
                        }
                    }
                }
                for from in 0..p {
                    if from == ctx.rank() {
                        continue;
                    }
                    for i in 0..40u32 {
                        let got = ctx.recv_from(from);
                        assert_eq!(got, vec![from as u32, i]);
                    }
                }
            });
            // The plan's probabilities make at least some injection all
            // but certain over 240 messages; the real guarantees (order,
            // exactly-once, conservation) asserted above and by the
            // harness are what matter.
            let f = r.faults;
            assert!(
                f.drops + f.delays + f.duplicates_sent + f.reorders > 0,
                "seed {seed}: no faults fired"
            );
            assert_eq!(f.drops, f.retries);
        }
    }

    #[test]
    #[cfg(not(loom))]
    fn duplicates_are_discarded_idempotently() {
        use crate::faults::{FaultKind, FaultPlan};
        // Every message duplicated; every duplicate must be discarded.
        let plan = FaultPlan::new(5).with_rule(FaultKind::Duplicate, crate::faults::PPM);
        let r = run_cluster_faulted::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), &plan, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..20u32 {
                    ctx.send(1, vec![i]);
                }
                Vec::new()
            } else {
                (0..20).map(|_| ctx.recv_from(0)[0]).collect()
            }
        });
        assert_eq!(r.results[1], (0..20).collect::<Vec<_>>());
        assert_eq!(r.faults.duplicates_sent, 20);
        // The ghost behind the 20th envelope is never popped (the
        // receiver stops after its 20th delivery), so it stays queued —
        // the generalized conservation assert in the harness balances
        // it; only the 19 ghosts *between* deliveries get discarded.
        assert_eq!(r.faults.duplicates_discarded, 19);
        assert_eq!(r.stats[1].messages_received, 20);
    }

    #[test]
    #[cfg(not(loom))]
    #[should_panic(expected = "FAULT REPORT")]
    fn retry_exhaustion_escalates_a_structured_report() {
        use crate::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new(1).with_rule(FaultKind::Drop, crate::faults::PPM);
        plan.delivery.max_retries = 3;
        plan.delivery.backoff_base_us = 1;
        plan.delivery.backoff_cap_us = 10;
        run_cluster_faulted::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), &plan, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1]);
            } else {
                let _ = ctx.recv_from(0);
            }
        });
    }

    #[test]
    #[cfg(not(loom))]
    #[should_panic(expected = "STALL")]
    fn stalled_task_trips_the_configured_watchdog() {
        // Rank 0 wedges (no channel progress) for far longer than the
        // configured timeout; rank 1, blocked on it, must escalate a
        // structured stall report instead of waiting forever.
        let config =
            ClusterConfig::new(2, 1).with_watchdog_timeout(std::time::Duration::from_millis(40));
        run_cluster::<Vec<u8>, _, _>(config, |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(400));
                ctx.send(1, vec![1]);
            } else {
                let _ = ctx.recv_from(0);
            }
        });
    }

    #[test]
    fn watchdog_timeout_is_configurable() {
        let config =
            ClusterConfig::new(2, 1).with_watchdog_timeout(std::time::Duration::from_secs(30));
        assert_eq!(config.watchdog_timeout, std::time::Duration::from_secs(30));
        // And a generous timeout keeps a slow-but-live cluster quiet.
        let r = run_cluster::<Vec<u8>, _, _>(config, |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(60));
                ctx.send(1, vec![7]);
                0u8
            } else {
                ctx.recv_from(0)[0]
            }
        });
        assert_eq!(r.results, vec![0, 7]);
    }

    #[test]
    fn jittered_runs_agree() {
        let all = explore_schedules::<Vec<u32>, _, _>(
            ClusterConfig::new(3, 1),
            &[1, 2, 3, 4, 5, 6, 7, 8],
            |ctx| {
                // Ring exchange: send rank to the right, receive from left.
                let right = (ctx.rank() + 1) % ctx.size();
                let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
                ctx.send(right, vec![ctx.rank() as u32]);
                ctx.recv_from(left)[0]
            },
        );
        for run in &all {
            assert_eq!(run.results, vec![2, 0, 1]);
        }
    }
}
