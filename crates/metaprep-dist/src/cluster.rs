//! Task spawning, per-pair channels, and the task context.
//!
//! # Concurrency correctness
//!
//! The simulator carries its own runtime misuse detectors (tentpole of
//! the concurrency-correctness layer; see DESIGN.md "Safety &
//! verification"):
//!
//! * **Deadlock watchdog** — every blocking receive polls with a short
//!   timeout and publishes the task's state (running / at barrier /
//!   blocked on a specific peer). When a poll expires, the task checks
//!   whether *every* live task is blocked while every awaited inbox is
//!   empty — a condition that is stable (a blocked task cannot send), so
//!   observing it once proves no future progress. Instead of hanging,
//!   the run aborts with a per-task state report.
//! * **Message conservation** — sends and receives are counted per
//!   task; at the end of a run the harness asserts
//!   `sent == received + still-queued`, so a lost or duplicated message
//!   in the channel layer cannot go unnoticed.
//! * **Schedule exploration** — [`explore_schedules`] re-runs a cluster
//!   body under deterministic per-task timing jitter so that
//!   order-dependent bugs surface without a model checker; the
//!   exhaustive version of the same idea lives in `tests/loom.rs`
//!   against the `crate::sync` loom shim.

use crate::stats::CommStats;
#[cfg(not(loom))]
use crate::sync::channel::{DepthProbe, RecvTimeoutError};
use crate::sync::channel::{Receiver, Sender};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::Payload;
use metaprep_obs::TaskObs;
use std::cell::Cell;
use std::sync::{Arc, Condvar, Mutex};

/// What actually travels on a channel: the payload plus the sender's
/// Lamport clock at the send. The clock is tracing metadata — it costs
/// one `u64` per message and is NOT counted as communication volume
/// (`CommStats` stays the single source of truth for modeled bytes).
/// Untraced sends ship clock 0, which is the identity for the receiver's
/// `max(local, sender) + 1` merge.
struct Envelope<M> {
    msg: M,
    clock: u64,
}

/// Cluster shape: `tasks` simulated MPI ranks, each owning a rayon pool of
/// `threads_per_task` threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of simulated MPI tasks (`P`).
    pub tasks: usize,
    /// Threads per task (`T`).
    pub threads_per_task: usize,
}

impl ClusterConfig {
    /// Convenience constructor.
    pub fn new(tasks: usize, threads_per_task: usize) -> Self {
        assert!(tasks >= 1 && threads_per_task >= 1);
        Self {
            tasks,
            threads_per_task,
        }
    }
}

/// Results of a cluster run: per-task return values and communication
/// statistics, both indexed by rank.
#[derive(Debug)]
pub struct ClusterResult<R> {
    /// Per-task return values.
    pub results: Vec<R>,
    /// Per-task communication statistics.
    pub stats: Vec<CommStats>,
}

/// Task-state word: the task is executing user code.
const STATE_RUNNING: u64 = u64::MAX;
/// Task-state word: the task body returned.
const STATE_DONE: u64 = u64::MAX - 1;
/// Task-state word: the task is waiting at the cluster barrier.
const STATE_AT_BARRIER: u64 = u64::MAX - 2;
// Any other value `v` means "blocked receiving from rank `v`".

/// Watchdog poll interval for blocking receives.
#[cfg(not(loom))]
const WATCHDOG_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// A barrier whose waiters poll an abort flag, so a watchdog-triggered
/// abort also unwinds tasks parked at a barrier instead of hanging the
/// scope join. (`std::sync::Barrier` waits are uninterruptible.)
struct AbortableBarrier {
    lock: Mutex<BarrierGen>,
    cv: Condvar,
    parties: usize,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
}

impl AbortableBarrier {
    fn new(parties: usize) -> Self {
        Self {
            lock: Mutex::new(BarrierGen {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Wait for all parties; panics (releasing the caller) if `aborted`
    /// becomes true while waiting.
    fn wait(&self, aborted: &AtomicBool) {
        // EXPECT: poisoning means a task panicked holding the barrier lock; propagating that panic is the abort path.
        let mut g = self.lock.lock().expect("barrier lock poisoned");
        g.arrived += 1;
        if g.arrived == self.parties {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = g.generation;
        while g.generation == gen {
            // ORDERING: Relaxed — the abort flag is a monitoring signal; no
            // data is published through it.
            if aborted.load(Ordering::Relaxed) {
                drop(g);
                panic!("cluster aborted while task waited at barrier");
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(25))
                // EXPECT: poisoning, as above, is the abort path.
                .expect("barrier lock poisoned");
            g = guard;
        }
    }
}

struct SharedState {
    barrier: AbortableBarrier,
    bytes_sent: Vec<AtomicU64>,
    messages_sent: Vec<AtomicU64>,
    bytes_received: Vec<AtomicU64>,
    messages_received: Vec<AtomicU64>,
    /// Per-task state word (see the `STATE_*` constants).
    task_state: Vec<AtomicU64>,
    /// Set by the watchdog (or a panicking task) to release every
    /// blocked task so the scope join can complete.
    aborted: AtomicBool,
    /// `inbox_depth[to][from]`: queue-depth probe of the channel from
    /// `from` into `to`, readable by the watchdog from any task.
    #[cfg(not(loom))]
    inbox_depth: Vec<Vec<DepthProbe>>,
}

impl SharedState {
    /// Deadlock test, run by a task whose receive just timed out.
    ///
    /// Returns a report if **every** task is done or blocked while every
    /// recv-blocked task's awaited inbox is empty. The condition is
    /// stable once observed: a blocked or done task sends nothing, so no
    /// awaited inbox can become non-empty — the cluster can never make
    /// progress again and aborting is sound. (A task observed RUNNING
    /// may still send, so the watchdog stays quiet and retries.)
    #[cfg(not(loom))]
    fn deadlock_report(&self) -> Option<String> {
        let p = self.task_state.len();
        let mut any_blocked_recv = false;
        // ORDERING: Relaxed — state words and depth probes are monitoring
        // data; the decision only needs each value to be *eventually*
        // current, and the re-poll loop provides that.
        for rank in 0..p {
            // ORDERING: Relaxed — monitoring only, as above.
            match self.task_state[rank].load(Ordering::Relaxed) {
                STATE_DONE | STATE_AT_BARRIER => {}
                STATE_RUNNING => return None,
                from => {
                    if !self.inbox_depth[rank][from as usize].is_empty() {
                        return None; // a message is waiting; progress possible
                    }
                    any_blocked_recv = true;
                }
            }
        }
        if !any_blocked_recv {
            // Everyone is done or at the barrier; barriers complete on
            // their own once all live tasks arrive.
            return None;
        }
        let mut lines =
            vec!["cluster DEADLOCK: all tasks blocked, all awaited inboxes empty".to_string()];
        for rank in 0..p {
            // ORDERING: Relaxed — report rendering; monitoring only.
            let desc = match self.task_state[rank].load(Ordering::Relaxed) {
                STATE_DONE => "done".to_string(),
                STATE_RUNNING => "running".to_string(),
                STATE_AT_BARRIER => "waiting at barrier".to_string(),
                from => format!(
                    "blocked on recv from task {from} (inbox empty, {} sent / {} received)",
                    self.messages_sent[rank].load(Ordering::Relaxed),
                    self.messages_received[rank].load(Ordering::Relaxed),
                ),
            };
            lines.push(format!("  task {rank}: {desc}"));
        }
        Some(lines.join("\n"))
    }
}

/// The view a task body gets of the cluster: its rank, its channels, its
/// thread pool.
pub struct TaskCtx<M: Payload> {
    rank: usize,
    size: usize,
    /// senders[to] — channel into task `to`'s inbox from this task.
    senders: Vec<Sender<Envelope<M>>>,
    /// receivers[from] — this task's inbox from task `from`.
    receivers: Vec<Receiver<Envelope<M>>>,
    shared: Arc<SharedState>,
    pool: rayon::ThreadPool,
    /// Schedule-jitter PRNG state; 0 disables jitter (the default).
    jitter: Cell<u64>,
    /// send_seq[to] — messages sent to `to` so far. Channels are per-pair
    /// FIFO, so both endpoints can derive matching 0-based sequence
    /// numbers independently; every send bumps it, traced or not, which
    /// keeps the two sides aligned even in mixed traced/untraced runs.
    send_seq: Vec<Cell<u64>>,
    /// recv_seq[from] — messages received from `from` so far (see above).
    recv_seq: Vec<Cell<u64>>,
}

impl<M: Payload> TaskCtx<M> {
    /// This task's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of tasks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The task-local rayon pool (the "OpenMP threads" of this rank).
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Under [`explore_schedules`], perturb OS scheduling with a burst of
    /// deterministic-length yields before a visible operation.
    fn jitter_point(&self) {
        let s = self.jitter.get();
        if s == 0 {
            return;
        }
        // xorshift64* step — deterministic per (seed, call sequence).
        let mut x = s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.set(x);
        for _ in 0..(x % 4) {
            std::thread::yield_now();
        }
    }

    /// Send `msg` to task `to`. Never blocks (channels are unbounded; the
    /// simulation models volume, not backpressure).
    pub fn send(&self, to: usize, msg: M) {
        // Untraced sends carry Lamport clock 0 — the identity under the
        // receiver's max-merge, so traced and untraced traffic can mix.
        self.send_env(to, msg, 0);
    }

    /// Traced send: records a `MessageSend` edge on `obs` (advancing its
    /// Lamport clock) and ships the clock on the wire so the receiver can
    /// merge it. Byte volume still flows only through `CommStats`.
    pub fn send_traced(
        &self,
        to: usize,
        msg: M,
        obs: &mut TaskObs<'_>,
        stage: &'static str,
        round: Option<u32>,
    ) {
        let seq = self.send_seq[to].get();
        let clock = obs.record_send(to as u32, stage, round, msg.size_bytes() as u64, seq);
        self.send_env(to, msg, clock);
    }

    /// Shared send path: counts volume, bumps the per-pair sequence
    /// counter, and delivers the envelope.
    fn send_env(&self, to: usize, msg: M, clock: u64) {
        self.jitter_point();
        // ORDERING: Relaxed — pure statistics counters; the channel itself
        // synchronizes the payload, and counters are only read after the
        // thread scope joins (or by the monitoring-only watchdog).
        self.shared.bytes_sent[self.rank].fetch_add(msg.size_bytes() as u64, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, as above.
        self.shared.messages_sent[self.rank].fetch_add(1, Ordering::Relaxed);
        self.send_seq[to].set(self.send_seq[to].get() + 1);
        self.senders[to]
            .send(Envelope { msg, clock })
            // EXPECT: receivers live until the thread scope joins; a disconnect means the peer already panicked and this panic surfaces it.
            .expect("receiving task exited before message was delivered");
    }

    /// Blocking receive of the next message from task `from`.
    ///
    /// Never hangs on a deadlocked cluster: the receive polls, publishes
    /// this task's blocked state, and runs the watchdog's deadlock test
    /// on every expiry (see the module docs). A detected deadlock aborts
    /// the run with a per-task report.
    #[cfg(not(loom))]
    pub fn recv_from(&self, from: usize) -> M {
        self.recv_env_from(from).msg
    }

    /// Traced receive: records a `MessageRecv` edge on `obs` and merges
    /// the sender's Lamport clock (`max(local, sender) + 1`). Blocking
    /// semantics are identical to [`TaskCtx::recv_from`].
    pub fn recv_from_traced(
        &self,
        from: usize,
        obs: &mut TaskObs<'_>,
        stage: &'static str,
        round: Option<u32>,
    ) -> M {
        // The sequence number identifies THIS message: the count of
        // messages received from `from` before it (FIFO channel), read
        // before `recv_env_from` bumps the counter.
        let seq = self.recv_seq[from].get();
        let env = self.recv_env_from(from);
        obs.record_recv(
            from as u32,
            stage,
            round,
            env.msg.size_bytes() as u64,
            seq,
            env.clock,
        );
        env.msg
    }

    /// Shared blocking-receive path (watchdog variant); returns the raw
    /// envelope so traced receives can see the sender's clock.
    #[cfg(not(loom))]
    fn recv_env_from(&self, from: usize) -> Envelope<M> {
        self.jitter_point();
        // ORDERING: Relaxed on all state words — monitoring only; see
        // `SharedState::deadlock_report` for why stale reads are safe.
        self.shared.task_state[self.rank].store(from as u64, Ordering::Relaxed);
        let env = loop {
            match self.receivers[from].recv_timeout(WATCHDOG_POLL) {
                Ok(m) => break m,
                Err(RecvTimeoutError::Timeout) => {
                    // ORDERING: Relaxed — abort flag is poll-only; the
                    // panic/unwind path needs no payload ordering.
                    if self.shared.aborted.load(Ordering::Relaxed) {
                        panic!("cluster aborted while task {} waited on recv", self.rank);
                    }
                    if let Some(report) = self.shared.deadlock_report() {
                        // First observer wins; others unwind via `aborted`.
                        // ORDERING: Relaxed — peers poll the flag, as above.
                        self.shared.aborted.store(true, Ordering::Relaxed);
                        panic!("{report}");
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("sending task exited before sending")
                }
            }
        };
        // ORDERING: Relaxed — monitoring state word + statistics counters;
        // the channel synchronized the payload itself.
        self.shared.task_state[self.rank].store(STATE_RUNNING, Ordering::Relaxed);
        self.shared.messages_received[self.rank].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, same reasoning as above.
        self.shared.bytes_received[self.rank]
            .fetch_add(env.msg.size_bytes() as u64, Ordering::Relaxed);
        self.recv_seq[from].set(self.recv_seq[from].get() + 1);
        env
    }

    /// Blocking receive under the loom model: the model's scheduler does
    /// the deadlock detection (it reports when every modeled thread is
    /// blocked), so the runtime watchdog machinery is not needed.
    #[cfg(loom)]
    pub fn recv_from(&self, from: usize) -> M {
        self.recv_env_from(from).msg
    }

    /// Shared blocking-receive path (loom variant); see the non-loom
    /// `recv_env_from` for the envelope rationale.
    #[cfg(loom)]
    fn recv_env_from(&self, from: usize) -> Envelope<M> {
        let env = self.receivers[from]
            .recv()
            // EXPECT: under loom every modeled task runs to completion (or the model reports deadlock), so a disconnect can only follow a modeled panic.
            .expect("sending task exited before sending");
        // ORDERING: Relaxed — statistics counters, as in `send`.
        self.shared.messages_received[self.rank].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter, same reasoning as above.
        self.shared.bytes_received[self.rank]
            .fetch_add(env.msg.size_bytes() as u64, Ordering::Relaxed);
        self.recv_seq[from].set(self.recv_seq[from].get() + 1);
        env
    }

    /// Synchronize all tasks.
    pub fn barrier(&self) {
        self.jitter_point();
        // ORDERING: Relaxed — monitoring-only state word, as in recv_from.
        self.shared.task_state[self.rank].store(STATE_AT_BARRIER, Ordering::Relaxed);
        self.shared.barrier.wait(&self.shared.aborted);
        self.shared.task_state[self.rank].store(STATE_RUNNING, Ordering::Relaxed);
    }

    /// Bytes this task has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        // ORDERING: Relaxed — reading own counter on the writing thread.
        self.shared.bytes_sent[self.rank].load(Ordering::Relaxed)
    }
}

/// Best-effort view of a panic payload as a string (for classifying
/// secondary "cluster aborted" unwinds when re-raising a task failure).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        ""
    }
}

/// Run `body` on every rank of a simulated cluster and collect results.
///
/// Panics in any task propagate (the run fails loudly, like an MPI abort).
pub fn run_cluster<M, R, F>(config: ClusterConfig, body: F) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    run_cluster_with_jitter(config, 0, body)
}

/// [`run_cluster`] with deterministic schedule jitter: when `seed != 0`,
/// every task yields a pseudo-random number of times before each send,
/// receive, and barrier, perturbing the interleaving reproducibly.
pub fn run_cluster_with_jitter<M, R, F>(
    config: ClusterConfig,
    seed: u64,
    body: F,
) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    let p = config.tasks;
    // Channel matrix: matrix[from][to].
    let mut senders: Vec<Vec<Sender<Envelope<M>>>> =
        (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Envelope<M>>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for from in 0..p {
        for rx_row in receivers.iter_mut() {
            let (s, r) = crate::sync::channel::unbounded();
            senders[from].push(s);
            rx_row[from] = Some(r);
        }
    }
    #[cfg(not(loom))]
    let inbox_depth: Vec<Vec<DepthProbe>> = receivers
        .iter()
        .map(|row| {
            row.iter()
                // EXPECT: the wiring loop above fills all p*p receiver slots.
                .map(|r| r.as_ref().expect("filled").depth_probe())
                .collect()
        })
        .collect();

    let shared = Arc::new(SharedState {
        barrier: AbortableBarrier::new(p),
        bytes_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
        messages_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
        bytes_received: (0..p).map(|_| AtomicU64::new(0)).collect(),
        messages_received: (0..p).map(|_| AtomicU64::new(0)).collect(),
        task_state: (0..p).map(|_| AtomicU64::new(STATE_RUNNING)).collect(),
        aborted: AtomicBool::new(false),
        #[cfg(not(loom))]
        inbox_depth,
    });

    let mut ctxs: Vec<TaskCtx<M>> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (s, r))| TaskCtx {
            rank,
            size: p,
            senders: s,
            // EXPECT: the wiring loop filled all p*p receiver slots.
            receivers: r.into_iter().map(|o| o.expect("filled")).collect(),
            shared: Arc::clone(&shared),
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(config.threads_per_task)
                .build()
                // EXPECT: pool build fails only when the OS cannot spawn threads, unrecoverable for a compute cluster.
                .expect("failed to build task thread pool"),
            // Distinct non-zero stream per task (splitmix-style spread);
            // seed 0 disables jitter entirely.
            jitter: Cell::new(if seed == 0 {
                0
            } else {
                seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }),
            send_seq: (0..p).map(|_| Cell::new(0)).collect(),
            recv_seq: (0..p).map(|_| Cell::new(0)).collect(),
        })
        .collect();

    let body = &body;
    let shared_for_tasks = &shared;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| {
                scope.spawn(move || {
                    let rank = ctx.rank;
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ctx)));
                    // ORDERING: Relaxed — monitoring-only state word.
                    shared_for_tasks.task_state[rank].store(STATE_DONE, Ordering::Relaxed);
                    if out.is_err() {
                        // Release peers blocked in recv/barrier so the scope
                        // join below completes and the panic propagates.
                        shared_for_tasks.aborted.store(true, Ordering::Relaxed);
                    }
                    out
                })
            })
            .collect();
        let outs: Vec<std::thread::Result<R>> = handles
            .into_iter()
            // EXPECT: the closure catches its own panics (the inner `thread::Result`), so `join` can only fail on a non-unwinding abort.
            .map(|h| h.join().expect("task thread died"))
            .collect();
        if outs.iter().any(Result::is_err) {
            // Re-raise the root cause: prefer any payload that is NOT a
            // secondary "cluster aborted" unwind (tasks released by the
            // abort flag after another task already failed).
            let mut secondary = None;
            for out in outs {
                if let Err(payload) = out {
                    // `&*payload`: downcast the payload itself, not the Box.
                    if panic_message(&*payload).starts_with("cluster aborted") {
                        secondary.get_or_insert(payload);
                    } else {
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            // EXPECT: this branch runs only when some task returned Err, and every payload either resumed already or was stashed in `secondary`.
            std::panic::resume_unwind(secondary.expect("some task panicked"));
        }
        outs.into_iter()
            // EXPECT: the branch above resume-unwinds if any entry is Err, so all remaining are Ok.
            .map(|o| o.expect("checked above"))
            .collect()
    });

    // Message conservation: every send was either received or is still
    // queued in an inbox. A failure here is a channel-layer bug, never a
    // user error, so it asserts unconditionally.
    #[cfg(not(loom))]
    {
        // ORDERING: Relaxed — the thread scope join above is the
        // synchronization point; these reads are sequential afterwards.
        let sent: u64 = (0..p)
            .map(|r| shared.messages_sent[r].load(Ordering::Relaxed))
            .sum();
        // ORDERING: Relaxed — sequential read after the join, as above.
        let received: u64 = (0..p)
            .map(|r| shared.messages_received[r].load(Ordering::Relaxed))
            .sum();
        let queued: u64 = shared
            .inbox_depth
            .iter()
            .flatten()
            .map(|d| d.len() as u64)
            .sum();
        assert_eq!(
            sent,
            received + queued,
            "message conservation violated: {sent} sent != {received} received + {queued} queued"
        );
        // Byte conservation: once every inbox drained, every sent byte
        // was received exactly once. (With messages still queued the
        // byte totals legitimately differ — the depth probes count
        // messages, not payload bytes.)
        if queued == 0 {
            // ORDERING: Relaxed — sequential read after the join, as above.
            let bytes_sent: u64 = (0..p)
                .map(|r| shared.bytes_sent[r].load(Ordering::Relaxed))
                .sum();
            // ORDERING: Relaxed — sequential read after the join, as above.
            let bytes_received: u64 = (0..p)
                .map(|r| shared.bytes_received[r].load(Ordering::Relaxed))
                .sum();
            assert_eq!(
                bytes_sent, bytes_received,
                "byte conservation violated: {bytes_sent} sent != {bytes_received} received"
            );
        }
    }

    let stats = (0..p)
        .map(|r| CommStats {
            // ORDERING: Relaxed — read after the scope join, as above.
            bytes_sent: shared.bytes_sent[r].load(Ordering::Relaxed),
            messages_sent: shared.messages_sent[r].load(Ordering::Relaxed),
            bytes_received: shared.bytes_received[r].load(Ordering::Relaxed),
            messages_received: shared.messages_received[r].load(Ordering::Relaxed),
        })
        .collect();

    ClusterResult { results, stats }
}

/// Run `body` once per seed under deterministic schedule jitter and
/// return every run's result. The caller asserts cross-run invariants
/// (e.g. that results are schedule-independent); the harness itself
/// already enforces deadlock-freedom and message conservation on every
/// run via the watchdog machinery above.
pub fn explore_schedules<M, R, F>(
    config: ClusterConfig,
    seeds: &[u64],
    body: F,
) -> Vec<ClusterResult<R>>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    seeds
        .iter()
        .map(|&s| run_cluster_with_jitter(config, s.max(1), &body))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(1, 1), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42usize
        });
        assert_eq!(r.results, vec![42]);
        assert_eq!(r.stats[0].bytes_sent, 0);
    }

    #[test]
    fn ranks_are_distinct_and_complete() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(8, 1), |ctx| ctx.rank());
        let mut got = r.results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // results are rank-indexed
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_roundtrip() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1, 2, 3]);
                ctx.recv_from(1)
            } else {
                let v = ctx.recv_from(0);
                let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
                ctx.send(0, doubled.clone());
                doubled
            }
        });
        assert_eq!(r.results[0], vec![2, 4, 6]);
    }

    #[test]
    fn byte_accounting() {
        let r = run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![0u64; 100]); // 800 bytes
            } else {
                let _ = ctx.recv_from(0);
            }
            ctx.barrier();
        });
        assert_eq!(r.stats[0].bytes_sent, 800);
        assert_eq!(r.stats[0].messages_sent, 1);
        assert_eq!(r.stats[1].bytes_sent, 0);
        // Receive side mirrors it on the other rank.
        assert_eq!(r.stats[1].bytes_received, 800);
        assert_eq!(r.stats[1].messages_received, 1);
        assert_eq!(r.stats[0].bytes_received, 0);
        let sent: u64 = r.stats.iter().map(|s| s.bytes_sent).sum();
        let received: u64 = r.stats.iter().map(|s| s.bytes_received).sum();
        assert_eq!(sent, received);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(4, 1), |ctx| {
            // ORDERING: SeqCst — this test asserts cross-task visibility
            // through the barrier alone, so the counter must not reorder.
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every task must observe all 4 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(r.results.iter().all(|&x| x == 4));
    }

    #[test]
    fn task_pools_have_requested_threads() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 3), |ctx| {
            ctx.pool().current_num_threads()
        });
        assert_eq!(r.results, vec![3, 3]);
    }

    #[test]
    fn messages_queue_in_order() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10u32 {
                    ctx.send(1, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| ctx.recv_from(0)[0]).collect()
            }
        });
        assert_eq!(r.results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "DEADLOCK")]
    fn cross_recv_deadlock_is_reported_not_hung() {
        // Both tasks wait for a message the other never sends. The
        // watchdog must turn the hang into a per-task report.
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            let peer = 1 - ctx.rank();
            let _ = ctx.recv_from(peer);
        });
    }

    #[test]
    #[should_panic(expected = "DEADLOCK")]
    fn recv_vs_barrier_deadlock_is_reported() {
        // Task 0 waits at the barrier, task 1 waits for a message from
        // task 0: neither can proceed.
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.barrier();
            } else {
                let _ = ctx.recv_from(0);
            }
        });
    }

    #[test]
    fn watchdog_quiet_on_slow_but_live_cluster() {
        // A sender that dawdles past several watchdog polls must not be
        // declared deadlocked: its RUNNING state keeps the watchdog off.
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(120));
                ctx.send(1, vec![9]);
                0u8
            } else {
                ctx.recv_from(0)[0]
            }
        });
        assert_eq!(r.results, vec![0, 9]);
    }

    #[test]
    fn jittered_runs_agree() {
        let all = explore_schedules::<Vec<u32>, _, _>(
            ClusterConfig::new(3, 1),
            &[1, 2, 3, 4, 5, 6, 7, 8],
            |ctx| {
                // Ring exchange: send rank to the right, receive from left.
                let right = (ctx.rank() + 1) % ctx.size();
                let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
                ctx.send(right, vec![ctx.rank() as u32]);
                ctx.recv_from(left)[0]
            },
        );
        for run in &all {
            assert_eq!(run.results, vec![2, 0, 1]);
        }
    }
}
