//! Task spawning, per-pair channels, and the task context.

use crate::stats::CommStats;
use crate::Payload;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Cluster shape: `tasks` simulated MPI ranks, each owning a rayon pool of
/// `threads_per_task` threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of simulated MPI tasks (`P`).
    pub tasks: usize,
    /// Threads per task (`T`).
    pub threads_per_task: usize,
}

impl ClusterConfig {
    /// Convenience constructor.
    pub fn new(tasks: usize, threads_per_task: usize) -> Self {
        assert!(tasks >= 1 && threads_per_task >= 1);
        Self {
            tasks,
            threads_per_task,
        }
    }
}

/// Results of a cluster run: per-task return values and communication
/// statistics, both indexed by rank.
#[derive(Debug)]
pub struct ClusterResult<R> {
    /// Per-task return values.
    pub results: Vec<R>,
    /// Per-task communication statistics.
    pub stats: Vec<CommStats>,
}

struct SharedState {
    barrier: Barrier,
    bytes_sent: Vec<AtomicU64>,
    messages_sent: Vec<AtomicU64>,
}

/// The view a task body gets of the cluster: its rank, its channels, its
/// thread pool.
pub struct TaskCtx<M: Payload> {
    rank: usize,
    size: usize,
    /// senders[to] — channel into task `to`'s inbox from this task.
    senders: Vec<Sender<M>>,
    /// receivers[from] — this task's inbox from task `from`.
    receivers: Vec<Receiver<M>>,
    shared: Arc<SharedState>,
    pool: rayon::ThreadPool,
}

impl<M: Payload> TaskCtx<M> {
    /// This task's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of tasks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The task-local rayon pool (the "OpenMP threads" of this rank).
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Send `msg` to task `to`. Never blocks (channels are unbounded; the
    /// simulation models volume, not backpressure).
    pub fn send(&self, to: usize, msg: M) {
        self.shared.bytes_sent[self.rank].fetch_add(msg.size_bytes() as u64, Ordering::Relaxed);
        self.shared.messages_sent[self.rank].fetch_add(1, Ordering::Relaxed);
        self.senders[to]
            .send(msg)
            .expect("receiving task exited before message was delivered");
    }

    /// Blocking receive of the next message from task `from`.
    pub fn recv_from(&self, from: usize) -> M {
        self.receivers[from]
            .recv()
            .expect("sending task exited before sending")
    }

    /// Synchronize all tasks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Bytes this task has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.shared.bytes_sent[self.rank].load(Ordering::Relaxed)
    }
}

/// Run `body` on every rank of a simulated cluster and collect results.
///
/// Panics in any task propagate (the run fails loudly, like an MPI abort).
pub fn run_cluster<M, R, F>(config: ClusterConfig, body: F) -> ClusterResult<R>
where
    M: Payload,
    R: Send,
    F: Fn(&mut TaskCtx<M>) -> R + Sync,
{
    let p = config.tasks;
    // Channel matrix: matrix[from][to].
    let mut senders: Vec<Vec<Sender<M>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Option<Receiver<M>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for from in 0..p {
        for to in 0..p {
            let (s, r) = unbounded();
            senders[from].push(s);
            receivers[to][from] = Some(r);
        }
    }

    let shared = Arc::new(SharedState {
        barrier: Barrier::new(p),
        bytes_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
        messages_sent: (0..p).map(|_| AtomicU64::new(0)).collect(),
    });

    let mut ctxs: Vec<TaskCtx<M>> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (s, r))| TaskCtx {
            rank,
            size: p,
            senders: s,
            receivers: r.into_iter().map(|o| o.expect("filled")).collect(),
            shared: Arc::clone(&shared),
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(config.threads_per_task)
                .build()
                .expect("failed to build task thread pool"),
        })
        .collect();

    let body = &body;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| scope.spawn(move || body(ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("task panicked"))
            .collect()
    });

    let stats = (0..p)
        .map(|r| CommStats {
            bytes_sent: shared.bytes_sent[r].load(Ordering::Relaxed),
            messages_sent: shared.messages_sent[r].load(Ordering::Relaxed),
        })
        .collect();

    ClusterResult { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(1, 1), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42usize
        });
        assert_eq!(r.results, vec![42]);
        assert_eq!(r.stats[0].bytes_sent, 0);
    }

    #[test]
    fn ranks_are_distinct_and_complete() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(8, 1), |ctx| ctx.rank());
        let mut got = r.results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // results are rank-indexed
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_roundtrip() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1, 2, 3]);
                ctx.recv_from(1)
            } else {
                let v = ctx.recv_from(0);
                let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
                ctx.send(0, doubled.clone());
                doubled
            }
        });
        assert_eq!(r.results[0], vec![2, 4, 6]);
    }

    #[test]
    fn byte_accounting() {
        let r = run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![0u64; 100]); // 800 bytes
            } else {
                let _ = ctx.recv_from(0);
            }
            ctx.barrier();
        });
        assert_eq!(r.stats[0].bytes_sent, 800);
        assert_eq!(r.stats[0].messages_sent, 1);
        assert_eq!(r.stats[1].bytes_sent, 0);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(4, 1), |ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every task must observe all 4 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(r.results.iter().all(|&x| x == 4));
    }

    #[test]
    fn task_pools_have_requested_threads() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 3), |ctx| {
            ctx.pool().current_num_threads()
        });
        assert_eq!(r.results, vec![3, 3]);
    }

    #[test]
    fn messages_queue_in_order() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10u32 {
                    ctx.send(1, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| ctx.recv_from(0)[0]).collect()
            }
        });
        assert_eq!(r.results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task panicked")]
    fn task_panic_propagates() {
        run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
