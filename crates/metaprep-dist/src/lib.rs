//! Simulated distributed-memory cluster.
//!
//! The paper runs METAPREP with MPI across up to 64 Edison nodes. This
//! crate substitutes an in-process simulation that preserves the
//! *algorithmic* structure of the distributed implementation:
//!
//! * each MPI task is an OS thread with **private state** — tasks share
//!   nothing except the explicit message channels (so any forgotten
//!   communication is a compile error or a deadlock, not silent sharing);
//! * point-to-point messages move owned buffers between tasks over
//!   per-pair channels, and every send is **byte-accounted**, so the
//!   communication-volume columns of the scaling figures are exact even
//!   though wall-clock network time is not simulated;
//! * the custom `P`-stage all-to-all of paper §3.3 (stage `i`: task `p`
//!   sends to `(p + i) mod P`) is implemented verbatim — including the
//!   reason it exists: MPI's `Alltoallv` 32-bit count limitation does not
//!   apply here, but the staged structure is what the paper measures;
//! * each task owns a rayon thread pool of `T` threads for its OpenMP-style
//!   intra-task parallelism.

pub mod cluster;
pub mod collectives;
pub mod delivery;
pub mod faults;
pub mod netmodel;
pub mod stats;
pub mod supervisor;
pub mod sync;

pub use cluster::{
    explore_schedules, run_cluster, run_cluster_with_jitter, ClusterConfig, ClusterResult, TaskCtx,
};
#[cfg(not(loom))]
pub use cluster::{run_cluster_faulted, FaultStats};
pub use collectives::{alltoall, alltoall_naive, alltoall_obs, broadcast, gather, stage_peers};
pub use delivery::{DedupState, DeliveryPolicy, Offer};
pub use faults::{
    Boundary, CrashSpec, FaultKind, FaultPlan, FaultReport, FaultRule, FaultScope, FaultTally,
    InjectedCrash, SendDecision,
};
pub use netmodel::NetworkModel;
pub use stats::{check_conservation, CommStats};
pub use supervisor::run_supervised;

/// Payload types that can be sent between tasks with byte accounting.
pub trait Payload: Send + 'static {
    /// Wire size of this message in bytes (the quantity an MPI
    /// implementation would move).
    fn size_bytes(&self) -> usize;
}

impl<T: Send + 'static> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for () {
    fn size_bytes(&self) -> usize {
        0
    }
}
