//! Delivery policy and idempotent receive-side dedup.
//!
//! The simulated transport is a reliable FIFO channel per `(src, dst)`
//! pair; the fault plane ([`crate::faults`]) makes it lossy. This module
//! holds the two pure pieces the cluster layers on top:
//!
//! * [`DeliveryPolicy`] — retry budget and bounded exponential backoff
//!   parameters for dropped sends;
//! * [`DedupState`] — `(src, dst, seq)`-keyed idempotent receive: every
//!   arriving envelope is classified against the next expected sequence
//!   number as deliver / stash (arrived early, hold until its turn) /
//!   duplicate (already delivered, discard).
//!
//! Both are plain data with no channel or clock dependencies, so the
//! loom model in `tests/loom.rs` and the proptest gate in
//! `tests/fault_props.rs` can pin the protocol exhaustively. The next
//! expected seq is passed in by the caller — `TaskCtx`'s `recv_seq`
//! counters stay the single source of truth.

use std::collections::BTreeSet;

/// Retry/timeout/backoff parameters for one cluster run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeliveryPolicy {
    /// Delivery attempts allowed per message beyond the first; once
    /// exhausted the sender escalates a `FaultReport`.
    pub max_retries: u32,
    /// Backoff window for the first retry, microseconds.
    pub backoff_base_us: u64,
    /// Upper bound the exponential window saturates at, microseconds.
    pub backoff_cap_us: u64,
}

impl Default for DeliveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            backoff_base_us: 50,
            backoff_cap_us: 5_000,
        }
    }
}

impl DeliveryPolicy {
    /// Full backoff window before retry `attempt` (1-based — attempt 0
    /// is the initial send and has no backoff): `base << (attempt-1)`,
    /// saturating at `backoff_cap_us`. The actual sleep is drawn from
    /// the upper half of this window by `FaultPlan::backoff_us`.
    pub fn backoff_window_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        if shift >= 64 {
            return self.backoff_cap_us;
        }
        self.backoff_base_us
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_us)
    }
}

/// How the receiver should treat an arriving sequence number.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Offer {
    /// `seq` is the next expected message: deliver it now.
    Deliver,
    /// `seq` arrived ahead of order: hold it until its turn.
    Stash,
    /// `seq` was already delivered or already stashed: discard.
    Duplicate,
}

/// Receive-side dedup/reorder state for one `(src, dst)` channel.
#[derive(Clone, Debug, Default)]
pub struct DedupState {
    /// Sequence numbers currently held out-of-order.
    stashed: BTreeSet<u64>,
    /// Count of discarded duplicate offers.
    duplicates: u64,
}

impl DedupState {
    /// Fresh state: nothing stashed, nothing discarded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify sequence number `seq` against the next expected
    /// number `next`. `Stash` records `seq` as held; the caller owns
    /// the actual envelope storage.
    pub fn classify(&mut self, next: u64, seq: u64) -> Offer {
        if seq < next || self.stashed.contains(&seq) {
            self.duplicates += 1;
            Offer::Duplicate
        } else if seq == next {
            Offer::Deliver
        } else {
            self.stashed.insert(seq);
            Offer::Stash
        }
    }

    /// If `next` is stashed, un-stash it and return true — the caller
    /// delivers its held envelope before blocking on the channel.
    pub fn take_ready(&mut self, next: u64) -> bool {
        self.stashed.remove(&next)
    }

    /// Sequence numbers currently held out-of-order.
    pub fn stashed_len(&self) -> usize {
        self.stashed.len()
    }

    /// Count of discarded duplicate offers so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn backoff_window_doubles_then_saturates() {
        let p = DeliveryPolicy {
            max_retries: 8,
            backoff_base_us: 50,
            backoff_cap_us: 5_000,
        };
        assert_eq!(p.backoff_window_us(1), 50);
        assert_eq!(p.backoff_window_us(2), 100);
        assert_eq!(p.backoff_window_us(3), 200);
        assert_eq!(p.backoff_window_us(8), 5_000); // 50 << 7 = 6400, capped
        assert_eq!(p.backoff_window_us(60), 5_000);
        assert_eq!(p.backoff_window_us(u32::MAX), 5_000); // shift clamps
    }

    #[test]
    fn in_order_stream_delivers_everything() {
        let mut d = DedupState::new();
        for seq in 0..100 {
            assert_eq!(d.classify(seq, seq), Offer::Deliver);
        }
        assert_eq!(d.duplicates(), 0);
        assert_eq!(d.stashed_len(), 0);
    }

    #[test]
    fn early_arrival_is_stashed_then_taken() {
        let mut d = DedupState::new();
        // seq 1 arrives while 0 is expected.
        assert_eq!(d.classify(0, 1), Offer::Stash);
        assert!(!d.take_ready(0));
        assert_eq!(d.classify(0, 0), Offer::Deliver);
        // Now 1 is expected and held.
        assert!(d.take_ready(1));
        assert_eq!(d.stashed_len(), 0);
        // A second take is a no-op.
        assert!(!d.take_ready(1));
    }

    #[test]
    fn duplicates_are_discarded_and_counted() {
        let mut d = DedupState::new();
        assert_eq!(d.classify(0, 0), Offer::Deliver);
        // Old seq re-offered after delivery.
        assert_eq!(d.classify(1, 0), Offer::Duplicate);
        // Early arrival duplicated while still stashed.
        assert_eq!(d.classify(1, 2), Offer::Stash);
        assert_eq!(d.classify(1, 2), Offer::Duplicate);
        assert_eq!(d.duplicates(), 2);
        assert_eq!(d.stashed_len(), 1);
    }

    #[test]
    fn arbitrary_permutation_with_duplicates_delivers_each_exactly_once() {
        // Offers: a shuffled multiset of 0..8 with every seq duplicated.
        let offers = [3u64, 0, 3, 1, 5, 0, 2, 7, 1, 4, 2, 6, 5, 4, 7, 6];
        let mut d = DedupState::new();
        let mut next = 0u64;
        let mut delivered = Vec::new();
        for &seq in &offers {
            // Drain any ready stash first — mirrors the recv loop.
            while d.take_ready(next) {
                delivered.push(next);
                next += 1;
            }
            match d.classify(next, seq) {
                Offer::Deliver => {
                    delivered.push(seq);
                    next += 1;
                }
                Offer::Stash | Offer::Duplicate => {}
            }
        }
        while d.take_ready(next) {
            delivered.push(next);
            next += 1;
        }
        assert_eq!(delivered, (0..8).collect::<Vec<_>>());
        assert_eq!(d.duplicates(), 8);
        assert_eq!(d.stashed_len(), 0);
    }
}
