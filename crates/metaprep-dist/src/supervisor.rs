//! Same-thread supervision of injected task crashes.
//!
//! A crashed rank must not tear down its channels: peers may already
//! hold envelopes addressed to it, and the conservation accounting
//! (and any real transport later) wants the endpoint identity stable
//! across a restart. So the supervisor runs *inside* the task's own
//! thread: the task body is an attempt closure, an [`InjectedCrash`]
//! panic unwinds only to the supervisor loop, and the next attempt
//! reuses the same `TaskCtx` — channels, sequence counters and Lamport
//! clock all survive, exactly as a respawned process would recover them
//! from its transport session and checkpoint. Real bugs (any other
//! panic payload) resume unwinding to the cluster's thread-level
//! `catch_unwind` untouched.

use std::panic::{self, AssertUnwindSafe};

use crate::faults::InjectedCrash;

/// Run `attempt(restart_no)` until it returns, restarting on
/// [`InjectedCrash`] panics up to `max_restarts` times. `restart_no`
/// is 0 on the first attempt; a restarted attempt (`restart_no > 0`)
/// is expected to resume from its latest checkpoint. Returns the
/// result and the number of restarts taken. Exceeding `max_restarts`
/// re-raises the crash; any non-injected panic re-raises immediately.
pub fn run_supervised<R>(max_restarts: u32, mut attempt: impl FnMut(u32) -> R) -> (R, u32) {
    let mut restarts = 0u32;
    loop {
        // EXPECT: an InjectedCrash panic is a planned fault, not a bug —
        // catching it here is the supervisor's whole job; every other
        // payload is re-raised unchanged.
        match panic::catch_unwind(AssertUnwindSafe(|| attempt(restarts))) {
            Ok(r) => return (r, restarts),
            Err(payload) => {
                let crash = payload.downcast_ref::<InjectedCrash>().copied();
                match crash {
                    Some(_) if restarts < max_restarts => restarts += 1,
                    _ => panic::resume_unwind(payload),
                }
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::faults::Boundary;
    use std::cell::Cell;

    #[test]
    fn clean_body_runs_once() {
        let calls = Cell::new(0u32);
        let (r, restarts) = run_supervised(3, |n| {
            calls.set(calls.get() + 1);
            n
        });
        assert_eq!((r, restarts, calls.get()), (0, 0, 1));
    }

    #[test]
    fn injected_crash_restarts_with_incremented_attempt() {
        let seen = std::cell::RefCell::new(Vec::new());
        let (r, restarts) = run_supervised(3, |n| {
            seen.borrow_mut().push(n);
            if n < 2 {
                panic::panic_any(InjectedCrash {
                    rank: 0,
                    at: Boundary::Pass(n),
                });
            }
            "done"
        });
        assert_eq!((r, restarts), ("done", 2));
        assert_eq!(*seen.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn restart_budget_exhaustion_reraises_the_crash() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_supervised(1, |_n: u32| -> () {
                panic::panic_any(InjectedCrash {
                    rank: 7,
                    at: Boundary::MergeRound(0),
                });
            })
        }))
        .unwrap_err();
        let crash = caught
            .downcast_ref::<InjectedCrash>()
            .expect("payload must still be the InjectedCrash");
        assert_eq!(crash.rank, 7);
    }

    #[test]
    fn real_panics_pass_through_untouched() {
        let calls = Cell::new(0u32);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_supervised(5, |_n: u32| -> () {
                calls.set(calls.get() + 1);
                panic!("genuine bug");
            })
        }))
        .unwrap_err();
        assert_eq!(calls.get(), 1, "real panics must not be retried");
        let msg = caught.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "genuine bug");
    }
}
