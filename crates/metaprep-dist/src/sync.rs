//! Audited synchronization shim for this crate.
//!
//! The cluster simulator's atomics and channels are imported from here,
//! never from `std`/`crossbeam` directly. Under normal builds these are
//! the real primitives; under `RUSTFLAGS="--cfg loom"` they are the
//! model-checked `loom` types, so `tests/loom.rs` can exhaustively
//! explore interleavings of the exact channel operations the simulator
//! performs.
//!
//! This file is one of the `ORDERING_AUDITED` shims known to
//! `cargo xtask check`: naming a memory ordering anywhere else in the
//! workspace requires a per-site `// ORDERING:` justification.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Channel used for simulated MPI message passing. Normally the
/// crossbeam channel (with queue-depth probes for the watchdog); under
/// `--cfg loom`, a modeled channel whose sends/receives are scheduling
/// points.
#[cfg(not(loom))]
pub mod channel {
    pub use crossbeam::channel::{
        unbounded, DepthProbe, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        TryRecvError,
    };
}

#[cfg(loom)]
pub mod channel {
    pub use loom::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded modeled channel (loom spelling adapter).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        loom::sync::mpsc::channel()
    }
}
