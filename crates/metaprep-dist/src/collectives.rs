//! Collective operations over the simulated cluster.
//!
//! [`alltoall`] is the paper's custom all-to-all (§3.3): `P` stages, where
//! in stage `i` task `p` sends its buffer for task `(p + i) mod P` and
//! receives from `(p - i) mod P`. Stage 0 is the local "self-send" (no
//! message). The staged schedule avoids the many-to-one hot spot of a
//! naive simultaneous exchange — `bench_alltoall` measures the difference.

use crate::cluster::TaskCtx;
use crate::Payload;
use metaprep_obs::{event::ALLTOALL_STAGE, TaskObs};

/// Peers of task `rank` in stage `stage` of the staged all-to-all:
/// `(to, from)` where this task sends to `(rank + stage) mod P` and
/// receives from `(rank - stage) mod P`.
///
/// Factored out so the loom model test (`tests/loom.rs`) explores the
/// exact schedule [`alltoall`] executes, not a reimplementation.
pub fn stage_peers(rank: usize, p: usize, stage: usize) -> (usize, usize) {
    debug_assert!(rank < p && stage < p);
    ((rank + stage) % p, (rank + p - stage) % p)
}

/// Custom P-stage all-to-all. `outgoing[q]` is this task's buffer destined
/// for task `q`; returns `incoming` where `incoming[q]` came from task `q`.
///
/// Must be called collectively (by every task, with `outgoing.len() == P`).
pub fn alltoall<M: Payload>(ctx: &TaskCtx<M>, outgoing: Vec<M>) -> Vec<M> {
    alltoall_inner(ctx, outgoing, None, None, "alltoall")
}

/// [`alltoall`] with telemetry: when the recorder is enabled, each of the
/// `P-1` communicating stages becomes an [`ALLTOALL_STAGE`] sub-span
/// (`detail` = stage index), and every message becomes a send/recv edge
/// pair tagged `edge_stage` (round = `pass`) carrying the sender's
/// Lamport clock. Byte/message counters are *not* recorded here — the
/// cluster's own [`crate::CommStats`] accounting (which also covers merge
/// rounds and broadcasts) is the single source of truth for communication
/// volume, and the pipeline surfaces it as counters after the run.
pub fn alltoall_obs<M: Payload>(
    ctx: &TaskCtx<M>,
    outgoing: Vec<M>,
    obs: &mut TaskObs<'_>,
    pass: Option<u32>,
    edge_stage: &'static str,
) -> Vec<M> {
    alltoall_inner(ctx, outgoing, Some(obs), pass, edge_stage)
}

fn alltoall_inner<M: Payload>(
    ctx: &TaskCtx<M>,
    mut outgoing: Vec<M>,
    mut obs: Option<&mut TaskObs<'_>>,
    pass: Option<u32>,
    edge_stage: &'static str,
) -> Vec<M> {
    let p = ctx.size();
    assert_eq!(outgoing.len(), p, "alltoall requires one buffer per task");
    let rank = ctx.rank();

    // Collect into Option slots so buffers can be moved out one by one.
    let mut out: Vec<Option<M>> = outgoing.drain(..).map(Some).collect();
    let mut incoming: Vec<Option<M>> = (0..p).map(|_| None).collect();

    // Stage 0: keep own buffer.
    incoming[rank] = out[rank].take();

    for stage in 1..p {
        let (to, from) = stage_peers(rank, p, stage);
        // EXPECT: `stage_peers` visits each destination exactly once per round, so the slot is still `Some`.
        let buf = out[to].take().expect("buffer already sent");
        let received = match obs.as_deref_mut() {
            Some(o) => {
                let open = o.export_enabled().then(|| o.open());
                ctx.send_traced(to, buf, o, edge_stage, pass);
                let received = ctx.recv_from_traced(from, o, edge_stage, pass);
                if let Some(open) = open {
                    o.close_detail(open, ALLTOALL_STAGE, pass, Some(stage as u32));
                }
                received
            }
            None => {
                ctx.send(to, buf);
                ctx.recv_from(from)
            }
        };
        incoming[from] = Some(received);
    }

    incoming
        .into_iter()
        // EXPECT: the stage loop received from every peer exactly once and the own-rank slot was moved directly.
        .map(|o| o.expect("missing incoming buffer"))
        .collect()
}

/// Naive all-to-all: every task fires all its sends immediately, then
/// drains its inbox. Kept as the ablation baseline for the staged schedule
/// (all `P-1` messages per task land at once instead of one per stage).
pub fn alltoall_naive<M: Payload>(ctx: &TaskCtx<M>, mut outgoing: Vec<M>) -> Vec<M> {
    let p = ctx.size();
    assert_eq!(outgoing.len(), p, "alltoall requires one buffer per task");
    let rank = ctx.rank();
    let mut out: Vec<Option<M>> = outgoing.drain(..).map(Some).collect();
    let mut incoming: Vec<Option<M>> = (0..p).map(|_| None).collect();
    incoming[rank] = out[rank].take();
    for (to, buf) in out.iter_mut().enumerate() {
        if to != rank {
            // EXPECT: the loop visits each destination slot exactly once.
            ctx.send(to, buf.take().expect("buffer already sent"));
        }
    }
    for (from, slot) in incoming.iter_mut().enumerate() {
        if from != rank {
            *slot = Some(ctx.recv_from(from));
        }
    }
    incoming
        .into_iter()
        // EXPECT: the receive loop filled every peer slot and the own-rank slot was moved directly.
        .map(|o| o.expect("missing incoming buffer"))
        .collect()
}

/// Broadcast `msg` from `root` to all tasks; every task returns its copy.
/// `msg` is only inspected on the root (others pass `None`).
pub fn broadcast<M: Payload + Clone>(ctx: &TaskCtx<M>, root: usize, msg: Option<M>) -> M {
    if ctx.rank() == root {
        // EXPECT: documented contract — the root caller passes `Some`; non-root `msg` is never read.
        let m = msg.expect("root must provide the message");
        for to in 0..ctx.size() {
            if to != root {
                ctx.send(to, m.clone());
            }
        }
        m
    } else {
        ctx.recv_from(root)
    }
}

/// [`broadcast`] with message tracing: every root→peer copy becomes a
/// send/recv edge pair tagged `stage` so the fan-out shows up in the
/// happens-before DAG (and as flow arrows in the Chrome export).
pub fn broadcast_obs<M: Payload + Clone>(
    ctx: &TaskCtx<M>,
    root: usize,
    msg: Option<M>,
    obs: &mut TaskObs<'_>,
    stage: &'static str,
) -> M {
    if ctx.rank() == root {
        // EXPECT: documented contract — the root caller passes `Some`; non-root `msg` is never read.
        let m = msg.expect("root must provide the message");
        for to in 0..ctx.size() {
            if to != root {
                ctx.send_traced(to, m.clone(), obs, stage, None);
            }
        }
        m
    } else {
        ctx.recv_from_traced(root, obs, stage, None)
    }
}

/// Gather every task's `msg` at `root`; returns `Some(all)` (rank-indexed)
/// on the root and `None` elsewhere.
pub fn gather<M: Payload>(ctx: &TaskCtx<M>, root: usize, msg: M) -> Option<Vec<M>> {
    if ctx.rank() == root {
        let mut all: Vec<Option<M>> = (0..ctx.size()).map(|_| None).collect();
        all[root] = Some(msg);
        for (from, slot) in all.iter_mut().enumerate() {
            if from != root {
                *slot = Some(ctx.recv_from(from));
            }
        }
        // EXPECT: `all[root]` was set directly and the loop filled every other slot.
        Some(all.into_iter().map(|o| o.expect("gathered")).collect())
    } else {
        ctx.send(root, msg);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterConfig};

    #[test]
    fn alltoall_exchanges_correctly() {
        for p in [1usize, 2, 3, 5, 8] {
            let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(p, 1), |ctx| {
                // Buffer for task q encodes (my rank, q).
                let outgoing: Vec<Vec<u32>> = (0..ctx.size())
                    .map(|q| vec![ctx.rank() as u32 * 100 + q as u32])
                    .collect();
                alltoall(ctx, outgoing)
            });
            for (rank, incoming) in r.results.iter().enumerate() {
                for (from, buf) in incoming.iter().enumerate() {
                    assert_eq!(
                        buf,
                        &vec![from as u32 * 100 + rank as u32],
                        "p={p} rank={rank} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoall_self_buffer_not_counted_as_traffic() {
        let r = run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(2, 1), |ctx| {
            let outgoing = vec![vec![0u64; 10], vec![0u64; 10]];
            alltoall(ctx, outgoing);
        });
        // Each task sends exactly one remote buffer of 80 bytes.
        assert_eq!(r.stats[0].bytes_sent, 80);
        assert_eq!(r.stats[0].messages_sent, 1);
    }

    #[test]
    fn alltoall_naive_matches_staged() {
        for p in [2usize, 4, 7] {
            let run = |staged: bool| {
                run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(p, 1), move |ctx| {
                    let outgoing: Vec<Vec<u32>> = (0..ctx.size())
                        .map(|q| vec![(ctx.rank() * 31 + q) as u32])
                        .collect();
                    if staged {
                        alltoall(ctx, outgoing)
                    } else {
                        alltoall_naive(ctx, outgoing)
                    }
                })
                .results
            };
            assert_eq!(run(true), run(false), "p={p}");
        }
    }

    #[test]
    fn alltoall_obs_records_stage_spans_and_receive_bytes() {
        use metaprep_obs::{Event, MemRecorder};
        let p = 4usize;
        let rec = MemRecorder::new(p);
        let rec_ref: &MemRecorder = &rec;
        let r = run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(p, 1), move |ctx| {
            let mut obs = TaskObs::new(rec_ref, ctx.rank() as u32);
            let outgoing: Vec<Vec<u64>> = (0..ctx.size()).map(|_| vec![0u64; 8]).collect();
            let incoming = alltoall_obs(ctx, outgoing, &mut obs, Some(0), "KmerGen-Comm");
            obs.finish();
            incoming.len()
        });
        for (rank, &n) in r.results.iter().enumerate() {
            assert_eq!(n, p);
            // 3 remote buffers of 64 bytes each land on every task —
            // accounted by the cluster itself, not by the collective.
            assert_eq!(r.stats[rank].bytes_received, 192);
        }
        let events = rec.into_events();
        let stage_spans = events
            .iter()
            .filter(|e| matches!(e, Event::Span { name, .. } if name == ALLTOALL_STAGE))
            .count();
        assert_eq!(stage_spans, p * (p - 1));
    }

    #[test]
    fn alltoall_obs_noop_records_no_spans() {
        use metaprep_obs::NoopRecorder;
        let rec = NoopRecorder::new();
        let rec_ref: &NoopRecorder = &rec;
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(3, 1), move |ctx| {
            let mut obs = TaskObs::new(rec_ref, ctx.rank() as u32);
            let outgoing: Vec<Vec<u32>> = (0..ctx.size())
                .map(|q| vec![ctx.rank() as u32 * 100 + q as u32])
                .collect();
            let incoming = alltoall_obs(ctx, outgoing, &mut obs, None, "KmerGen-Comm");
            let n_spans = obs.spans().len();
            obs.finish();
            (incoming, n_spans)
        });
        for (rank, (incoming, n_spans)) in r.results.iter().enumerate() {
            assert_eq!(*n_spans, 0, "no sub-spans when disabled");
            for (from, buf) in incoming.iter().enumerate() {
                assert_eq!(buf, &vec![from as u32 * 100 + rank as u32]);
            }
        }
    }

    #[test]
    fn alltoall_obs_edges_are_matched_and_causal() {
        use metaprep_obs::{EdgeDir, Event, MemRecorder};
        use std::collections::BTreeMap;
        let p = 4usize;
        let rec = MemRecorder::new(p);
        let rec_ref: &MemRecorder = &rec;
        run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(p, 1), move |ctx| {
            let mut obs = TaskObs::new(rec_ref, ctx.rank() as u32);
            let outgoing: Vec<Vec<u64>> = (0..ctx.size()).map(|_| vec![0u64; 8]).collect();
            alltoall_obs(ctx, outgoing, &mut obs, Some(1), "KmerGen-Comm");
            obs.finish();
        });
        // Every send has exactly one matching recv on the same
        // (src, dst, seq) channel slot, with a strictly greater Lamport
        // stamp; bytes agree on both endpoints.
        let mut sends: BTreeMap<(u32, u32, u64), (u64, u64)> = BTreeMap::new();
        let mut recvs: BTreeMap<(u32, u32, u64), (u64, u64)> = BTreeMap::new();
        for e in rec.into_events() {
            if let Event::Edge {
                dir,
                src,
                dst,
                stage,
                round,
                bytes,
                seq,
                lamport,
                ..
            } = e
            {
                assert_eq!(stage, "KmerGen-Comm");
                assert_eq!(round, Some(1));
                let side = match dir {
                    EdgeDir::Send => &mut sends,
                    EdgeDir::Recv => &mut recvs,
                };
                let prev = side.insert((src, dst, seq), (bytes, lamport));
                assert!(prev.is_none(), "duplicate edge endpoint");
            }
        }
        assert_eq!(sends.len(), p * (p - 1));
        assert_eq!(
            sends.keys().collect::<Vec<_>>(),
            recvs.keys().collect::<Vec<_>>()
        );
        for (key, &(sent_bytes, send_lamport)) in &sends {
            let &(recv_bytes, recv_lamport) = &recvs[key];
            assert_eq!(sent_bytes, recv_bytes, "{key:?}");
            assert_eq!(sent_bytes, 64, "8 u64s per buffer");
            assert!(
                recv_lamport > send_lamport,
                "{key:?}: recv lamport {recv_lamport} must follow send {send_lamport}"
            );
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(4, 1), |ctx| {
            let msg = if ctx.rank() == 2 {
                Some(vec![7u8, 8, 9])
            } else {
                None
            };
            broadcast(ctx, 2, msg)
        });
        assert!(r.results.iter().all(|m| m == &vec![7u8, 8, 9]));
    }

    #[test]
    fn broadcast_obs_traces_root_fanout() {
        use metaprep_obs::{EdgeDir, Event, MemRecorder};
        let p = 4usize;
        let rec = MemRecorder::new(p);
        let rec_ref: &MemRecorder = &rec;
        let r = run_cluster::<Vec<u8>, _, _>(ClusterConfig::new(p, 1), move |ctx| {
            let mut obs = TaskObs::new(rec_ref, ctx.rank() as u32);
            let msg = (ctx.rank() == 0).then(|| vec![5u8; 16]);
            let got = broadcast_obs(ctx, 0, msg, &mut obs, "CC-I/O");
            obs.finish();
            got
        });
        assert!(r.results.iter().all(|m| m == &vec![5u8; 16]));
        let events = rec.into_events();
        let sends = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Edge {
                        dir: EdgeDir::Send,
                        src: 0,
                        ..
                    }
                )
            })
            .count();
        let recvs = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Edge {
                        dir: EdgeDir::Recv,
                        src: 0,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(sends, p - 1);
        assert_eq!(recvs, p - 1);
    }

    #[test]
    fn gather_collects_rank_indexed() {
        let r = run_cluster::<Vec<u32>, _, _>(ClusterConfig::new(4, 1), |ctx| {
            gather(ctx, 0, vec![ctx.rank() as u32])
        });
        let at_root = r.results[0].as_ref().unwrap();
        assert_eq!(at_root, &vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(r.results[1].is_none());
    }
}
