//! Analytic network cost model (alpha–beta).
//!
//! The container running this reproduction has one core and no real
//! network, so measured communication time says nothing about multi-node
//! behaviour. This model turns the *exact* per-task byte/message counters
//! of [`crate::CommStats`] into modeled wall time under the standard
//! alpha–beta model: `time = alpha * messages + bytes / beta`. With
//! Edison's parameters (the paper reports 8 GB/s point-to-point links) the
//! scaling harnesses can report modeled communication columns next to the
//! hardware-independent byte counts.

use crate::stats::CommStats;
use std::time::Duration;

/// Alpha–beta link model.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetworkModel {
    /// Per-message latency (alpha), seconds.
    pub latency_s: f64,
    /// Link bandwidth (beta), bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// The paper's NERSC Edison Cray XC30: 8 GB/s point-to-point links
    /// (paper §4), ~1 µs MPI latency class.
    pub fn edison() -> Self {
        Self {
            latency_s: 1e-6,
            bandwidth_bps: 8e9,
        }
    }

    /// A commodity 10 GbE cluster for contrast: higher latency, lower
    /// bandwidth.
    pub fn ten_gbe() -> Self {
        Self {
            latency_s: 30e-6,
            bandwidth_bps: 1.25e9,
        }
    }

    /// Modeled time to send `stats`'s traffic serially over one link.
    pub fn time_for(&self, stats: &CommStats) -> Duration {
        let secs = self.latency_s * stats.messages_sent as f64
            + stats.bytes_sent as f64 / self.bandwidth_bps;
        Duration::from_secs_f64(secs)
    }

    /// Modeled communication critical path of a run: the slowest task's
    /// traffic (tasks inject in parallel; the bottleneck link is the
    /// busiest sender).
    pub fn critical_path(&self, per_task: &[CommStats]) -> Duration {
        per_task
            .iter()
            .map(|s| self.time_for(s))
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_traffic_zero_time() {
        let m = NetworkModel::edison();
        assert_eq!(m.time_for(&CommStats::default()), Duration::ZERO);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let m = NetworkModel::edison();
        let t = m.time_for(&CommStats {
            bytes_sent: 8_000_000_000, // 1 s at 8 GB/s
            messages_sent: 1,
            ..CommStats::default()
        });
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn latency_term_dominates_many_small_messages() {
        let m = NetworkModel::ten_gbe();
        let t = m.time_for(&CommStats {
            bytes_sent: 1000,
            messages_sent: 100_000, // 3 s at 30 us each
            ..CommStats::default()
        });
        assert!((t.as_secs_f64() - 3.0).abs() < 0.01);
    }

    #[test]
    fn critical_path_takes_the_max() {
        let m = NetworkModel::edison();
        let stats = vec![
            CommStats {
                bytes_sent: 100,
                messages_sent: 1,
                ..CommStats::default()
            },
            CommStats {
                bytes_sent: 8_000_000,
                messages_sent: 10,
                ..CommStats::default()
            },
        ];
        assert_eq!(m.critical_path(&stats), m.time_for(&stats[1]));
    }

    #[test]
    fn edison_faster_than_ten_gbe() {
        let s = CommStats {
            bytes_sent: 1_000_000_000,
            messages_sent: 100,
            ..CommStats::default()
        };
        assert!(NetworkModel::edison().time_for(&s) < NetworkModel::ten_gbe().time_for(&s));
    }
}
