//! Per-task communication statistics.

/// Communication volume a task generated during a cluster run.
///
/// These counters back the hardware-independent columns of the scaling
/// experiments: on a 1-core container wall-clock speedup curves are flat,
/// but bytes-on-the-wire per task reproduce the paper's communication
/// behaviour exactly (see DESIGN.md, substitution table).
///
/// Both directions are counted: across all tasks of a run, total sent
/// must equal total received once every queue drains — the cluster's
/// message-conservation watchdog asserts this at shutdown.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total payload bytes sent by this task.
    pub bytes_sent: u64,
    /// Number of point-to-point messages sent by this task.
    pub messages_sent: u64,
    /// Total payload bytes received by this task.
    pub bytes_received: u64,
    /// Number of point-to-point messages received by this task.
    pub messages_received: u64,
}

impl CommStats {
    /// Combine two stats (e.g. across phases).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            messages_received: self.messages_received + other.messages_received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = CommStats {
            bytes_sent: 10,
            messages_sent: 1,
            bytes_received: 4,
            messages_received: 2,
        };
        let b = CommStats {
            bytes_sent: 5,
            messages_sent: 2,
            bytes_received: 6,
            messages_received: 3,
        };
        assert_eq!(
            a.merged(b),
            CommStats {
                bytes_sent: 15,
                messages_sent: 3,
                bytes_received: 10,
                messages_received: 5,
            }
        );
    }

    #[test]
    fn default_is_zero() {
        let d = CommStats::default();
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(d.bytes_received, 0);
        assert_eq!(d.messages_received, 0);
    }
}
