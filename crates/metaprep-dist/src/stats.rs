//! Per-task communication statistics.

/// Communication volume a task generated during a cluster run.
///
/// These counters back the hardware-independent columns of the scaling
/// experiments: on a 1-core container wall-clock speedup curves are flat,
/// but bytes-on-the-wire per task reproduce the paper's communication
/// behaviour exactly (see DESIGN.md, substitution table).
///
/// Both directions are counted: across all tasks of a run, total sent
/// must equal total received once every queue drains — the cluster's
/// message-conservation watchdog asserts this at shutdown.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total payload bytes sent by this task.
    pub bytes_sent: u64,
    /// Number of point-to-point messages sent by this task.
    pub messages_sent: u64,
    /// Total payload bytes received by this task.
    pub bytes_received: u64,
    /// Number of point-to-point messages received by this task.
    pub messages_received: u64,
}

impl CommStats {
    /// Combine two stats (e.g. across phases).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            messages_received: self.messages_received + other.messages_received,
        }
    }
}

/// Check global communication conservation over one run's per-task stats:
/// summed sends must equal summed receives in both bytes and message
/// count. `Err` names the imbalance. Presolve filtering happens *before*
/// tuples are handed to the exchange, so this invariant is unaffected by
/// the probabilistic tier — what was sent smaller also arrives smaller.
pub fn check_conservation(stats: &[CommStats]) -> Result<(), String> {
    let total = stats
        .iter()
        .copied()
        .fold(CommStats::default(), CommStats::merged);
    if total.bytes_sent != total.bytes_received {
        return Err(format!(
            "bytes not conserved: {} sent vs {} received",
            total.bytes_sent, total.bytes_received
        ));
    }
    if total.messages_sent != total.messages_received {
        return Err(format!(
            "messages not conserved: {} sent vs {} received",
            total.messages_sent, total.messages_received
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = CommStats {
            bytes_sent: 10,
            messages_sent: 1,
            bytes_received: 4,
            messages_received: 2,
        };
        let b = CommStats {
            bytes_sent: 5,
            messages_sent: 2,
            bytes_received: 6,
            messages_received: 3,
        };
        assert_eq!(
            a.merged(b),
            CommStats {
                bytes_sent: 15,
                messages_sent: 3,
                bytes_received: 10,
                messages_received: 5,
            }
        );
    }

    #[test]
    fn conservation_accepts_balanced_and_names_imbalance() {
        let balanced = [
            CommStats {
                bytes_sent: 10,
                messages_sent: 2,
                bytes_received: 0,
                messages_received: 0,
            },
            CommStats {
                bytes_sent: 0,
                messages_sent: 0,
                bytes_received: 10,
                messages_received: 2,
            },
        ];
        assert!(check_conservation(&balanced).is_ok());
        assert!(check_conservation(&[]).is_ok());

        let mut lost_bytes = balanced;
        lost_bytes[1].bytes_received = 9;
        let err = check_conservation(&lost_bytes).unwrap_err();
        assert!(err.contains("bytes"), "{err}");

        let mut lost_msg = balanced;
        lost_msg[1].messages_received = 1;
        let err = check_conservation(&lost_msg).unwrap_err();
        assert!(err.contains("messages"), "{err}");
    }

    #[test]
    fn default_is_zero() {
        let d = CommStats::default();
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(d.bytes_received, 0);
        assert_eq!(d.messages_received, 0);
    }
}
