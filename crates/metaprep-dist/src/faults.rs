//! Deterministic, seeded fault injection for the simulated cluster.
//!
//! Real transports drop, delay, duplicate and reorder messages, and
//! ranks die mid-pass. Before any pluggable-transport backend lands the
//! pipeline needs a fault model it can be tested against — one whose
//! every decision is **replayable**: a [`FaultPlan`] is a seed plus a
//! list of declarative rules, and each injection decision is a pure
//! function of `(seed, kind, src, dst, seq, attempt)` hashed through
//! SplitMix64. Two runs with the same plan inject the identical fault
//! sequence regardless of thread scheduling — the contract pinned by
//! the proptest determinism gate in `tests/fault_props.rs`.
//!
//! The plan hooks the `Envelope` send/recv path in [`crate::cluster`]:
//!
//! * **drop** — the send is suppressed; the delivery layer backs off
//!   (deterministic bounded exponential backoff, see
//!   [`crate::delivery::DeliveryPolicy`]) and retries until the decision
//!   passes or retries are exhausted, which escalates into a structured
//!   [`FaultReport`] instead of a silent hang;
//! * **delay** — the send sleeps a bounded, seed-derived duration first;
//! * **duplicate** — an extra wire copy ships after the real envelope
//!   and is discarded by the receiver's `(src, dst, seq)` dedup;
//! * **reorder** — the receiver opportunistically pulls the *next*
//!   queued envelope ahead of order, exercising the out-of-order stash
//!   path of [`crate::delivery::DedupState`] (receiver-side, so the
//!   lockstep staged all-to-all can never deadlock on a held-back send);
//! * **crash** — a rank panics with [`InjectedCrash`] at a declared
//!   pass/merge-round [`Boundary`]; the supervisor restarts it from its
//!   last checkpoint (see `metaprep-core::checkpoint`).

use crate::delivery::DeliveryPolicy;

/// Probability denominator: rule probabilities are integer
/// parts-per-million so [`FaultPlan`] stays `Eq` (no floats).
pub const PPM: u32 = 1_000_000;

/// SplitMix64 finalizer — a bijective avalanche over `u64`. Decisions
/// hash their coordinates through this, so nearby `(seq, attempt)`
/// pairs land on independent-looking draws.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One draw for a message-scoped decision: a pure function of the plan
/// seed, a per-kind salt, and the message coordinates.
#[inline]
fn decision_hash(seed: u64, salt: u64, src: usize, dst: usize, seq: u64, attempt: u64) -> u64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ (src as u64).wrapping_shl(32) ^ dst as u64);
    h = splitmix64(h ^ seq);
    splitmix64(h ^ attempt)
}

/// What a rule injects.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Suppress the wire push; the sender backs off and retries.
    Drop,
    /// Sleep a bounded seed-derived duration before the push.
    Delay,
    /// Ship an extra wire copy after the real envelope.
    Duplicate,
    /// Receiver pulls the next queued envelope ahead of order.
    Reorder,
}

impl FaultKind {
    /// Per-kind hash salt (distinct streams per kind).
    fn salt(self) -> u64 {
        match self {
            FaultKind::Drop => 0x0D20,
            FaultKind::Delay => 0x0DE1,
            FaultKind::Duplicate => 0x0D0B,
            FaultKind::Reorder => 0x0520,
        }
    }
}

/// Which messages a rule applies to. `None` fields match everything.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScope {
    /// Restrict to one sending rank.
    pub src: Option<u32>,
    /// Restrict to one receiving rank.
    pub dst: Option<u32>,
}

impl FaultScope {
    /// Does `(src, dst)` fall inside this scope?
    pub fn matches(&self, src: usize, dst: usize) -> bool {
        self.src.is_none_or(|s| s as usize == src) && self.dst.is_none_or(|d| d as usize == dst)
    }
}

/// One declarative injection rule.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Probability in parts-per-million (see [`PPM`]).
    pub prob_ppm: u32,
    /// Which `(src, dst)` pairs the rule covers.
    pub scope: FaultScope,
}

/// A safe restart point in the pipeline: the rank has neither sent nor
/// consumed anything of the phase that follows, so replaying from the
/// matching checkpoint is byte-identical.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Boundary {
    /// Before KmerGen of pass `p` (0-based).
    Pass(u32),
    /// Before merge round `r` (0-based stride round).
    MergeRound(u32),
}

impl std::fmt::Display for Boundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Boundary::Pass(p) => write!(f, "pass{p}"),
            Boundary::MergeRound(r) => write!(f, "merge{r}"),
        }
    }
}

/// A declared crash: `rank` dies (once) when it reaches `at`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank that crashes.
    pub rank: u32,
    /// The span boundary it crashes at.
    pub at: Boundary,
}

/// The panic payload of an injected crash; the supervisor downcasts to
/// this to distinguish a planned crash from a real bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Crashing rank.
    pub rank: u32,
    /// Boundary it crashed at.
    pub at: Boundary,
}

/// Structured escalation report: produced when retries are exhausted or
/// the watchdog declares a stall — the replacement for a flat panic
/// string (rendered through `Display`, so the panic message still
/// carries every field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// What gave up.
    pub kind: FaultReportKind,
    /// Reporting rank.
    pub rank: usize,
    /// Peer rank involved (receiver for retries, stalled rank for stalls).
    pub peer: usize,
    /// Message sequence number (retry exhaustion) or 0.
    pub seq: u64,
    /// Delivery attempts made (retry exhaustion) or 0.
    pub attempts: u32,
    /// Extra context lines (per-task states for stalls).
    pub detail: String,
}

/// Escalation classes of a [`FaultReport`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultReportKind {
    /// A message exhausted its delivery retries.
    RetriesExhausted,
    /// A peer made no progress for longer than the watchdog timeout.
    Stall,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultReportKind::RetriesExhausted => write!(
                f,
                "FAULT REPORT: task {} exhausted {} delivery attempts for message seq {} to task {}{}",
                self.rank, self.attempts, self.seq, self.peer, self.detail
            ),
            FaultReportKind::Stall => write!(
                f,
                "FAULT REPORT: cluster STALL — task {} made no progress past the watchdog \
                 timeout while task {} awaited it{}",
                self.peer, self.rank, self.detail
            ),
        }
    }
}

/// Per-task tally of injected faults and delivery retries, surfaced to
/// the observability layer so faulted traces show their fault load.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Fault injections that fired on this rank (drops, delays,
    /// duplicates, reorders, crashes).
    pub injected: u64,
    /// Delivery retry attempts this rank made after dropped sends.
    pub retries: u64,
}

/// A complete, self-describing fault schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Message-level injection rules.
    pub rules: Vec<FaultRule>,
    /// Declared rank crashes.
    pub crashes: Vec<CrashSpec>,
    /// Retry/backoff parameters for dropped sends.
    pub delivery: DeliveryPolicy,
    /// Upper bound (exclusive of +1) on an injected delay, microseconds.
    pub delay_max_us: u64,
}

/// Outcome of [`FaultPlan::decide_send`] for one delivery attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SendDecision {
    /// Suppress this attempt; back off and retry.
    Drop,
    /// Push the envelope, after `delay_us` of injected latency, shipping
    /// an extra wire copy when `duplicate` is set.
    Deliver {
        /// Injected latency before the push, microseconds.
        delay_us: u64,
        /// Ship a duplicate wire copy after the real envelope.
        duplicate: bool,
    },
}

impl FaultPlan {
    /// An empty plan (no rules, no crashes) with default delivery.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
            crashes: Vec::new(),
            delivery: DeliveryPolicy::default(),
            delay_max_us: 500,
        }
    }

    /// Add a rule covering all `(src, dst)` pairs.
    pub fn with_rule(mut self, kind: FaultKind, prob_ppm: u32) -> Self {
        self.rules.push(FaultRule {
            kind,
            prob_ppm,
            scope: FaultScope::default(),
        });
        self
    }

    /// Add a declared crash.
    pub fn with_crash(mut self, rank: u32, at: Boundary) -> Self {
        self.crashes.push(CrashSpec { rank, at });
        self
    }

    /// True when no rule and no crash can ever fire.
    pub fn is_inert(&self) -> bool {
        self.crashes.is_empty() && self.rules.iter().all(|r| r.prob_ppm == 0)
    }

    /// Decide the fate of delivery attempt `attempt` of message
    /// `(src, dst, seq)`. Pure: same inputs, same decision.
    pub fn decide_send(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> SendDecision {
        let mut delay_us = 0u64;
        let mut duplicate = false;
        for rule in &self.rules {
            if rule.prob_ppm == 0 || !rule.scope.matches(src, dst) {
                continue;
            }
            let h = decision_hash(self.seed, rule.kind.salt(), src, dst, seq, attempt as u64);
            if h % PPM as u64 >= rule.prob_ppm as u64 {
                continue;
            }
            match rule.kind {
                FaultKind::Drop => return SendDecision::Drop,
                FaultKind::Delay => {
                    // A second, salted draw sizes the delay.
                    let d = decision_hash(self.seed, 0xD15E, src, dst, seq, attempt as u64);
                    delay_us += 1 + d % self.delay_max_us.max(1);
                }
                FaultKind::Duplicate => duplicate = true,
                // Reorder is a receive-side decision (see decide_reorder).
                FaultKind::Reorder => {}
            }
        }
        SendDecision::Deliver {
            delay_us,
            duplicate,
        }
    }

    /// Receive-side decision: should the receiver pull the message after
    /// `(src, dst, seq)` ahead of order? Pure, like `decide_send`.
    pub fn decide_reorder(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.rules.iter().any(|rule| {
            rule.kind == FaultKind::Reorder
                && rule.prob_ppm > 0
                && rule.scope.matches(src, dst)
                && decision_hash(self.seed, rule.kind.salt(), src, dst, seq, 0) % (PPM as u64)
                    < rule.prob_ppm as u64
        })
    }

    /// Deterministic backoff before retry `attempt` of `(src, dst, seq)`:
    /// bounded exponential with seed-derived jitter in the upper half of
    /// the window (see [`DeliveryPolicy::backoff_window_us`]).
    pub fn backoff_us(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> u64 {
        let window = self.delivery.backoff_window_us(attempt);
        let jitter = decision_hash(self.seed, 0xBAC0, src, dst, seq, attempt as u64);
        window / 2 + jitter % (window / 2 + 1)
    }

    /// Does this plan crash `rank` at `at`?
    pub fn crashes_at(&self, rank: usize, at: Boundary) -> bool {
        self.crashes
            .iter()
            .any(|c| c.rank as usize == rank && c.at == at)
    }

    /// Parse a compact plan spec, e.g.
    /// `seed=42,drop=0.01,dup=0.01,delay=0.02,reorder=0.05,crash=rank1@pass1,max-retries=8`.
    ///
    /// Keys: `seed=N`; probabilities `drop|delay|dup|reorder=F` (fraction
    /// in `[0, 1]`); `crash=rankR@passP` or `crash=rankR@mergeM`
    /// (repeatable); `max-retries=N`, `backoff-base-us=N`,
    /// `backoff-cap-us=N`, `delay-max-us=N`.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for tok in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("fault-plan token {tok:?}: expected key=value"))?;
            let (key, val) = (key.trim(), val.trim());
            let int = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("fault-plan {key}={v:?}: expected an integer"))
            };
            match key {
                "seed" => plan.seed = int(val)?,
                "drop" | "delay" | "dup" | "reorder" => {
                    let f: f64 = val
                        .parse()
                        .map_err(|_| format!("fault-plan {key}={val:?}: expected a probability"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("fault-plan {key}={val}: not in [0, 1]"));
                    }
                    let kind = match key {
                        "drop" => FaultKind::Drop,
                        "delay" => FaultKind::Delay,
                        "dup" => FaultKind::Duplicate,
                        _ => FaultKind::Reorder,
                    };
                    plan = plan.with_rule(kind, (f * PPM as f64).round() as u32);
                }
                "crash" => {
                    let (r, b) = val
                        .split_once('@')
                        .ok_or_else(|| format!("fault-plan crash={val:?}: expected rankR@passP"))?;
                    let rank = r
                        .strip_prefix("rank")
                        .and_then(|n| n.parse::<u32>().ok())
                        .ok_or_else(|| format!("fault-plan crash={val:?}: bad rank {r:?}"))?;
                    let at = if let Some(p) = b.strip_prefix("pass") {
                        Boundary::Pass(
                            p.parse()
                                .map_err(|_| format!("fault-plan crash={val:?}: bad pass {b:?}"))?,
                        )
                    } else if let Some(m) = b.strip_prefix("merge") {
                        Boundary::MergeRound(
                            m.parse().map_err(|_| {
                                format!("fault-plan crash={val:?}: bad round {b:?}")
                            })?,
                        )
                    } else {
                        return Err(format!(
                            "fault-plan crash={val:?}: boundary must be passP or mergeM"
                        ));
                    };
                    plan = plan.with_crash(rank, at);
                }
                "max-retries" => plan.delivery.max_retries = int(val)? as u32,
                "backoff-base-us" => plan.delivery.backoff_base_us = int(val)?,
                "backoff-cap-us" => plan.delivery.backoff_cap_us = int(val)?,
                "delay-max-us" => plan.delay_max_us = int(val)?,
                _ => return Err(format!("fault-plan: unknown key {key:?}")),
            }
        }
        Ok(plan)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(42)
            .with_rule(FaultKind::Drop, 100_000)
            .with_rule(FaultKind::Delay, 50_000)
            .with_rule(FaultKind::Duplicate, 50_000);
        for src in 0..3 {
            for dst in 0..3 {
                for seq in 0..50 {
                    for attempt in 0..4 {
                        assert_eq!(
                            plan.decide_send(src, dst, seq, attempt),
                            plan.decide_send(src, dst, seq, attempt)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(7).with_rule(FaultKind::Drop, 250_000); // 25%
        let drops = (0..4000u64)
            .filter(|&seq| plan.decide_send(0, 1, seq, 0) == SendDecision::Drop)
            .count();
        // 25% of 4000 = 1000; allow a generous band for the hash draw.
        assert!((700..1300).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultKind::Drop, 0)
            .with_rule(FaultKind::Reorder, 0);
        assert!(plan.is_inert());
        for seq in 0..200 {
            assert_eq!(
                plan.decide_send(0, 1, seq, 0),
                SendDecision::Deliver {
                    delay_us: 0,
                    duplicate: false
                }
            );
            assert!(!plan.decide_reorder(0, 1, seq));
        }
    }

    #[test]
    fn full_probability_always_fires() {
        let plan = FaultPlan::new(9).with_rule(FaultKind::Drop, PPM);
        for seq in 0..100 {
            for attempt in 0..8 {
                assert_eq!(plan.decide_send(2, 3, seq, attempt), SendDecision::Drop);
            }
        }
    }

    #[test]
    fn retry_attempt_changes_the_draw() {
        // A 50% drop rule must not drop every attempt of every message:
        // attempt is part of the hash, so retries eventually pass.
        let plan = FaultPlan::new(11).with_rule(FaultKind::Drop, 500_000);
        let mut some_retry_passed = false;
        for seq in 0..50u64 {
            if plan.decide_send(0, 1, seq, 0) == SendDecision::Drop
                && plan.decide_send(0, 1, seq, 1) != SendDecision::Drop
            {
                some_retry_passed = true;
            }
        }
        assert!(some_retry_passed);
    }

    #[test]
    fn scope_restricts_rules() {
        let mut plan = FaultPlan::new(5);
        plan.rules.push(FaultRule {
            kind: FaultKind::Drop,
            prob_ppm: PPM,
            scope: FaultScope {
                src: Some(1),
                dst: None,
            },
        });
        assert_eq!(plan.decide_send(1, 0, 0, 0), SendDecision::Drop);
        assert_ne!(plan.decide_send(0, 1, 0, 0), SendDecision::Drop);
    }

    #[test]
    fn backoff_is_bounded_monotone_in_expectation_and_deterministic() {
        let plan = FaultPlan::new(21);
        for attempt in 0..12 {
            let b = plan.backoff_us(0, 1, 7, attempt);
            assert_eq!(b, plan.backoff_us(0, 1, 7, attempt));
            let window = plan.delivery.backoff_window_us(attempt);
            assert!(b >= window / 2 && b <= window, "attempt {attempt}: {b}");
            assert!(b <= plan.delivery.backoff_cap_us);
        }
    }

    #[test]
    fn crash_lookup() {
        let plan = FaultPlan::new(1)
            .with_crash(1, Boundary::Pass(1))
            .with_crash(2, Boundary::MergeRound(0));
        assert!(plan.crashes_at(1, Boundary::Pass(1)));
        assert!(!plan.crashes_at(1, Boundary::Pass(0)));
        assert!(plan.crashes_at(2, Boundary::MergeRound(0)));
        assert!(!plan.crashes_at(0, Boundary::MergeRound(0)));
    }

    #[test]
    fn spec_roundtrip_parses_all_keys() {
        let plan = FaultPlan::parse_spec(
            "seed=42,drop=0.01,dup=0.02,delay=0.03,reorder=0.04,\
             crash=rank1@pass1,crash=rank0@merge2,max-retries=9,\
             backoff-base-us=10,backoff-cap-us=100,delay-max-us=50",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Drop);
        assert_eq!(plan.rules[0].prob_ppm, 10_000);
        assert_eq!(plan.rules[3].prob_ppm, 40_000);
        assert_eq!(
            plan.crashes,
            vec![
                CrashSpec {
                    rank: 1,
                    at: Boundary::Pass(1)
                },
                CrashSpec {
                    rank: 0,
                    at: Boundary::MergeRound(2)
                },
            ]
        );
        assert_eq!(plan.delivery.max_retries, 9);
        assert_eq!(plan.delivery.backoff_base_us, 10);
        assert_eq!(plan.delivery.backoff_cap_us, 100);
        assert_eq!(plan.delay_max_us, 50);
    }

    #[test]
    fn spec_rejects_malformed_tokens() {
        for bad in [
            "drop",
            "drop=2.0",
            "drop=x",
            "crash=rank1",
            "crash=one@pass1",
            "crash=rank1@boot",
            "seed=abc",
            "bogus=1",
        ] {
            assert!(FaultPlan::parse_spec(bad).is_err(), "accepted {bad:?}");
        }
        assert!(FaultPlan::parse_spec("").unwrap().is_inert());
    }

    #[test]
    fn fault_report_renders_all_fields() {
        let r = FaultReport {
            kind: FaultReportKind::RetriesExhausted,
            rank: 2,
            peer: 3,
            seq: 17,
            attempts: 9,
            detail: String::new(),
        };
        let s = r.to_string();
        for needle in ["FAULT REPORT", "task 2", "task 3", "seq 17", "9 "] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
        let stall = FaultReport {
            kind: FaultReportKind::Stall,
            rank: 0,
            peer: 1,
            seq: 0,
            attempts: 0,
            detail: "\n  task 1: running".into(),
        };
        assert!(stall.to_string().contains("STALL"));
    }
}
