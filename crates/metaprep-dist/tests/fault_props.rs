//! Replayability contract for the fault plane (satellite of the
//! robustness PR): an identical `FaultPlan` (seed + rules) must produce
//! the identical injected-fault sequence and the identical
//! retry/backoff schedule, run after run. Decisions are pure functions
//! of `(seed, kind, src, dst, seq, attempt)`, so the property is exact
//! equality, not statistical agreement.

use metaprep_dist::{
    run_cluster_faulted, ClusterConfig, FaultKind, FaultPlan, FaultRule, FaultScope, SendDecision,
};
use proptest::prelude::*;

/// Strategy: an arbitrary rule over any kind/probability/scope.
fn rule_strategy() -> impl Strategy<Value = FaultRule> {
    (
        proptest::sample::select(vec![
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Reorder,
        ]),
        0u32..=1_000_000,
        (any::<bool>(), 0u32..4),
        (any::<bool>(), 0u32..4),
    )
        .prop_map(
            |(kind, prob_ppm, (scope_src, src), (scope_dst, dst))| FaultRule {
                kind,
                prob_ppm,
                scope: FaultScope {
                    src: scope_src.then_some(src),
                    dst: scope_dst.then_some(dst),
                },
            },
        )
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        proptest::collection::vec(rule_strategy(), 0..5),
    )
        .prop_map(|(seed, rules)| {
            let mut plan = FaultPlan::new(seed);
            plan.rules = rules;
            plan
        })
}

/// Render the full decision trace of a plan over a message window — the
/// injected-fault sequence plus the backoff schedule.
fn decision_trace(plan: &FaultPlan, ranks: usize, seqs: u64, attempts: u32) -> Vec<(u64, u64)> {
    let mut trace = Vec::new();
    for src in 0..ranks {
        for dst in 0..ranks {
            for seq in 0..seqs {
                for attempt in 0..attempts {
                    let d = match plan.decide_send(src, dst, seq, attempt) {
                        SendDecision::Drop => u64::MAX,
                        SendDecision::Deliver {
                            delay_us,
                            duplicate,
                        } => delay_us * 2 + duplicate as u64,
                    };
                    let b = plan.backoff_us(src, dst, seq, attempt);
                    trace.push((d, b));
                }
                trace.push((plan.decide_reorder(src, dst, seq) as u64, 0));
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed + rules ⇒ bit-identical decision and backoff trace.
    #[test]
    fn identical_plans_replay_identical_fault_schedules(plan in plan_strategy()) {
        let replay = plan.clone();
        prop_assert_eq!(
            decision_trace(&plan, 3, 24, 4),
            decision_trace(&replay, 3, 24, 4)
        );
    }

    /// Backoff stays inside the policy's bounded-exponential window.
    #[test]
    fn backoff_is_always_inside_the_window(
        plan in plan_strategy(),
        src in 0usize..4,
        dst in 0usize..4,
        seq in 0u64..1000,
        attempt in 0u32..20,
    ) {
        let b = plan.backoff_us(src, dst, seq, attempt);
        let window = plan.delivery.backoff_window_us(attempt);
        prop_assert!(b >= window / 2 && b <= window);
    }

    /// A parsed spec re-parsed from the same string is the same plan.
    #[test]
    fn parse_spec_is_deterministic(seed in any::<u64>(), drop_pct in 0u32..=100) {
        let spec = format!("seed={seed},drop=0.{drop_pct:02},dup=0.05");
        let a = FaultPlan::parse_spec(&spec).unwrap();
        let b = FaultPlan::parse_spec(&spec).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// End-to-end replay: the same plan driving a real cluster exchange
/// twice yields the identical fault totals and identical results —
/// thread scheduling does not leak into the injected schedule.
#[test]
fn faulted_cluster_runs_replay_identically() {
    let mut plan = FaultPlan::new(0xC0FFEE)
        .with_rule(FaultKind::Drop, 120_000)
        .with_rule(FaultKind::Delay, 80_000)
        .with_rule(FaultKind::Duplicate, 120_000)
        .with_rule(FaultKind::Reorder, 150_000);
    plan.delivery.max_retries = 64;
    plan.delay_max_us = 30;
    let run = |plan: &FaultPlan| {
        run_cluster_faulted::<Vec<u32>, _, _>(ClusterConfig::new(3, 1), plan, |ctx| {
            let p = ctx.size();
            for i in 0..30u32 {
                for to in 0..p {
                    if to != ctx.rank() {
                        ctx.send(to, vec![ctx.rank() as u32 * 1000 + i]);
                    }
                }
            }
            let mut got = Vec::new();
            for from in 0..p {
                if from == ctx.rank() {
                    continue;
                }
                for _ in 0..30 {
                    got.push(ctx.recv_from(from)[0]);
                }
            }
            got
        })
    };
    let a = run(&plan);
    let b = run(&plan);
    assert_eq!(a.results, b.results);
    // Sender-side decisions are pure functions of the plan, so their
    // totals replay exactly. (Receive-side opportunistic tallies —
    // reorders taken, envelopes stashed — depend on what happened to be
    // queued at poll time, i.e. on thread scheduling; the *delivery* is
    // exactly-once in-order either way, which `results` pins above.)
    assert_eq!(a.faults.drops, b.faults.drops);
    assert_eq!(a.faults.retries, b.faults.retries);
    assert_eq!(a.faults.delays, b.faults.delays);
    assert_eq!(a.faults.duplicates_sent, b.faults.duplicates_sent);
    assert!(a.faults.drops > 0, "plan too timid: no drops fired");
    assert!(a.faults.duplicates_sent > 0, "no duplicates fired");
}
