//! Property tests for the causal-tracing layer: Lamport clocks must be
//! monotone per rank and consistent across every send/recv pair, for any
//! cluster size and any (deadlock-free) mix of traced collectives.
//!
//! The communication scripts are built from the collectives the pipeline
//! actually uses — staged all-to-alls and root broadcasts — with
//! proptest choosing the cluster size, the number of rounds, the payload
//! shapes, and the broadcast roots.

use metaprep_dist::collectives::{alltoall_obs, broadcast_obs};
use metaprep_dist::{run_cluster, ClusterConfig};
use metaprep_obs::{EdgeDir, Event, MemRecorder, TaskObs, TraceAnalysis};
use proptest::prelude::*;

/// One traced collective step, executed by every rank.
#[derive(Copy, Clone, Debug)]
enum Op {
    /// Staged all-to-all; the payload for peer `q` has `base + q` words.
    Alltoall { base: usize },
    /// Broadcast of a `len`-word payload from `root` (taken mod P).
    Broadcast { root: usize, len: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    ((0usize..2), (0usize..8), (1usize..6)).prop_map(|(kind, root, len)| {
        if kind == 0 {
            Op::Alltoall { base: len }
        } else {
            Op::Broadcast { root, len }
        }
    })
}

/// Run the script on a fresh simulated cluster and return the recorded
/// event stream.
fn run_script(p: usize, ops: &[Op]) -> Vec<Event> {
    let rec = MemRecorder::new(p);
    let rec_ref: &MemRecorder = &rec;
    run_cluster::<Vec<u64>, _, _>(ClusterConfig::new(p, 1), move |ctx| {
        let mut obs = TaskObs::new(rec_ref, ctx.rank() as u32);
        for (round, op) in ops.iter().enumerate() {
            match *op {
                Op::Alltoall { base } => {
                    let outgoing: Vec<Vec<u64>> = (0..ctx.size())
                        .map(|q| vec![round as u64; base + q])
                        .collect();
                    alltoall_obs(ctx, outgoing, &mut obs, Some(round as u32), "KmerGen-Comm");
                }
                Op::Broadcast { root, len } => {
                    let root = root % ctx.size();
                    let msg = (ctx.rank() == root).then(|| vec![round as u64; len]);
                    broadcast_obs(ctx, root, msg, &mut obs, "CC-I/O");
                }
            }
        }
        obs.finish();
    });
    rec.into_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per rank: Lamport stamps are all distinct, and physical-time order
    /// on one rank implies Lamport order (events later on a rank's own
    /// clock carry strictly larger stamps).
    #[test]
    fn lamport_is_monotone_per_rank(
        p in 2usize..5,
        ops in proptest::collection::vec(op_strategy(), 1..6),
    ) {
        let events = run_script(p, &ops);
        let mut per_rank: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
        for e in &events {
            match e {
                Event::Edge { dir, src, dst, lamport, at_ns, .. } => {
                    let rank = match dir {
                        EdgeDir::Send => *src,
                        EdgeDir::Recv => *dst,
                    };
                    per_rank[rank as usize].push((*at_ns, *lamport));
                }
                Event::Span { task, end_ns, lamport, .. } if *lamport > 0 => {
                    per_rank[*task as usize].push((*end_ns, *lamport));
                }
                _ => {}
            }
        }
        for (rank, evs) in per_rank.iter().enumerate() {
            let mut lamports: Vec<u64> = evs.iter().map(|&(_, l)| l).collect();
            lamports.sort_unstable();
            let before = lamports.len();
            lamports.dedup();
            prop_assert_eq!(before, lamports.len(), "duplicate stamp on rank {}", rank);
            for &(t_a, l_a) in evs {
                for &(t_b, l_b) in evs {
                    if t_a < t_b {
                        prop_assert!(
                            l_a < l_b,
                            "rank {}: event at {}ns (L={}) not before event at {}ns (L={})",
                            rank, t_a, l_a, t_b, l_b
                        );
                    }
                }
            }
        }
    }

    /// Across ranks: every send matches exactly one recv on its
    /// (src, dst, seq) channel slot, the recv's Lamport stamp strictly
    /// follows the send's, and stamps strictly increase along each FIFO
    /// channel — exactly the analyzer's conservation + causality checks.
    #[test]
    fn send_recv_pairs_are_conserved_and_causal(
        p in 2usize..5,
        ops in proptest::collection::vec(op_strategy(), 1..6),
    ) {
        let events = run_script(p, &ops);
        let a = TraceAnalysis::from_events(&events);
        prop_assert!(a.check_conservation().is_ok(), "{:?}", a.check_conservation());
        prop_assert!(a.check_causality().is_ok(), "{:?}", a.check_causality());
        // Every traced message produced a pair, and each pair individually
        // orders recv after send.
        let sends = events
            .iter()
            .filter(|e| matches!(e, Event::Edge { dir: EdgeDir::Send, .. }))
            .count();
        prop_assert_eq!(a.pairs().len(), sends);
        for pair in a.pairs() {
            prop_assert!(
                pair.recv_lamport > pair.send_lamport,
                "pair {:?} violates Lamport order", pair
            );
            prop_assert!(pair.send_ns <= pair.recv_ns);
        }
    }
}
