//! Loom model tests for the staged all-to-all message schedule (§3.3).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p metaprep-dist --test loom
//! ```
//!
//! The full `run_cluster` harness (scoped threads + rayon pools +
//! wall-clock watchdog) is not modeled; what IS modeled is the part
//! where the concurrency lives: the per-pair channel matrix and the
//! staged send/recv schedule from [`metaprep_dist::stage_peers`] —
//! the exact peer arithmetic `collectives::alltoall` executes. Under
//! `--cfg loom`, `metaprep_dist::sync::channel` re-exports the modeled
//! mpsc channel whose every send/recv is a scheduling point, so the
//! model proves deadlock-freedom and message conservation over ALL
//! interleavings, not just the ones a lucky run happens to hit. The
//! model applies dynamic partial-order reduction (see `loom::dpor`), so
//! "all interleavings" means one representative per Mazurkiewicz trace
//! — operations on different queues commute and are explored once.
#![cfg(loom)]

use loom::thread;
use metaprep_dist::stage_peers;
use metaprep_dist::sync::channel::{unbounded, Receiver, Sender};

/// Message: (source rank, destination rank) so the receiver can verify
/// both provenance and routing.
type Msg = (usize, usize);

/// Build the p×p channel matrix and hand each rank its senders-to-all
/// row and receive-from-all column, mirroring `run_cluster`'s wiring.
fn wire(p: usize) -> (Vec<Vec<Sender<Msg>>>, Vec<Vec<Receiver<Msg>>>) {
    let mut senders: Vec<Vec<Sender<Msg>>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for from in 0..p {
        for rx_row in receivers.iter_mut() {
            let (tx, rx) = unbounded::<Msg>();
            senders[from].push(tx);
            rx_row[from] = Some(rx);
        }
    }
    let receivers = receivers
        .into_iter()
        .map(|row| row.into_iter().map(|o| o.unwrap()).collect())
        .collect();
    (senders, receivers)
}

/// One rank's side of a staged all-to-all round: stage `s` sends to
/// `(rank + s) mod p` and receives from `(rank - s) mod p`. Returns the
/// messages received, in stage order.
fn staged_round(rank: usize, p: usize, txs: &[Sender<Msg>], rxs: &[Receiver<Msg>]) -> Vec<Msg> {
    let mut got = Vec::with_capacity(p - 1);
    for stage in 1..p {
        let (to, from) = stage_peers(rank, p, stage);
        txs[to].send((rank, to)).expect("receiver alive");
        got.push(rxs[from].recv().expect("sender alive"));
    }
    got
}

/// Run a p-task staged all-to-all round under the model and assert, for
/// EVERY interleaving: no deadlock (the model aborts with a report if
/// all threads block), every message conserved (received exactly once,
/// by the rank it was addressed to, from the stage-mandated source),
/// and nothing left queued. Returns the exploration report so callers
/// can bound the schedule count DPOR actually visited.
fn check_alltoall(p: usize, max_iters: usize) -> loom::model::Report {
    let builder = loom::model::Builder {
        max_iters,
        dpor: true,
    };
    builder.check_report(move || {
        let (senders, receivers) = wire(p);
        let mut parts: Vec<_> = senders.into_iter().zip(receivers).collect();
        // Rank 0 runs on the model's main thread (the loom idiom: the
        // model body is itself a schedulable thread), so p ranks cost p
        // actors, not p+1 — keeping the schedule space exhaustive yet
        // enumerable.
        let (txs0, rxs0) = parts.remove(0);
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, (txs, rxs))| {
                let rank = i + 1;
                thread::spawn(move || (staged_round(rank, p, &txs, &rxs), rxs))
            })
            .collect();
        let rank0 = (staged_round(0, p, &txs0, &rxs0), rxs0);

        let (mut all, mut rx_rows): (Vec<Vec<Msg>>, Vec<Vec<Receiver<Msg>>>) =
            handles.into_iter().map(|h| h.join().unwrap()).unzip();
        all.insert(0, rank0.0);
        rx_rows.insert(0, rank0.1);

        // Conservation (queues): checked after all joins, when only the
        // main thread is runnable, so the drain probes don't multiply
        // the schedule space. A stray message here would mean a send no
        // stage accounted for.
        for (rank, rxs) in rx_rows.iter().enumerate() {
            for rx in rxs {
                assert!(
                    rx.try_recv().is_err(),
                    "rank {rank}: message left queued after the round"
                );
            }
        }

        // Conservation (global): p*(p-1) messages sent, p*(p-1)
        // received, each (src, dst) pair exactly once, dst correct.
        let mut seen = std::collections::HashSet::new();
        for (rank, got) in all.iter().enumerate() {
            assert_eq!(got.len(), p - 1, "rank {rank} short on messages");
            for (i, &(src, dst)) in got.iter().enumerate() {
                let stage = i + 1;
                let (_, expect_from) = stage_peers(rank, p, stage);
                assert_eq!(dst, rank, "misrouted message at rank {rank}");
                assert_eq!(src, expect_from, "wrong source in stage {stage}");
                assert!(
                    seen.insert((src, dst)),
                    "duplicate delivery of {src}->{dst}"
                );
            }
        }
        assert_eq!(seen.len(), p * (p - 1), "lost messages");
    })
}

/// Two tasks: a single exchange stage. Small enough that the model
/// visits every interleaving of {send, recv} × {send, recv}, including
/// the order where both sends land before either recv.
#[test]
fn alltoall_two_tasks_all_interleavings() {
    check_alltoall(2, 250_000);
}

/// Stage 1 of the three-task round in isolation: a ring exchange where
/// each rank sends to `(rank + 1) mod 3` and receives from
/// `(rank + 2) mod 3` — the smallest instance where a rank's send and
/// the recv it pairs with involve three different ranks. Exhaustive in
/// a few thousand schedules.
#[test]
fn ring_stage_of_three_tasks_all_interleavings() {
    loom::model(|| {
        let p = 3;
        let (senders, receivers) = wire(p);
        let mut parts: Vec<_> = senders.into_iter().zip(receivers).collect();
        let (txs0, rxs0) = parts.remove(0);
        let one_stage = move |rank: usize, txs: &[Sender<Msg>], rxs: &[Receiver<Msg>]| {
            let (to, from) = stage_peers(rank, p, 1);
            txs[to].send((rank, to)).expect("receiver alive");
            rxs[from].recv().expect("sender alive")
        };
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, (txs, rxs))| thread::spawn(move || one_stage(i + 1, &txs, &rxs)))
            .collect();
        let got0 = one_stage(0, &txs0, &rxs0);
        let mut got: Vec<Msg> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.insert(0, got0);
        for (rank, &(src, dst)) in got.iter().enumerate() {
            let (_, expect_from) = stage_peers(rank, p, 1);
            assert_eq!((src, dst), (expect_from, rank), "ring exchange misrouted");
        }
    });
}

/// Three tasks, the full two-stage round. Brute-force enumeration of
/// this model is ~3.35M schedules (~5 min) — which is why it used to be
/// `#[ignore]`d. Dynamic partial-order reduction with sleep sets prunes
/// the interleavings of *independent* channel operations (different
/// queues), so the model now covers every Mazurkiewicz trace in a tiny
/// fraction of that and runs in the default `--cfg loom` suite. The
/// assertion pins the reduction: if a scheduler change regresses DPOR,
/// the explored count blowing past 1% of brute force fails loudly here
/// rather than silently costing minutes.
#[test]
fn alltoall_three_tasks_all_interleavings() {
    let report = check_alltoall(3, 4_000_000);
    assert!(
        report.schedules_explored <= 33_500,
        "DPOR regression: explored {} schedules, expected <= 33,500 \
         (>= 100x reduction vs ~3.35M brute-force)",
        report.schedules_explored
    );
}

/// The delivery protocol's receive side, under the model: a sender
/// whose wire stream carries duplicates (each message retransmitted,
/// plus a late retransmit of an old seq) races a receiver running the
/// `DedupState` classify loop. For EVERY interleaving of sends and
/// receives the receiver must deliver each logical message exactly
/// once, in seq order — the idempotence contract `run_cluster_faulted`
/// relies on when a duplicate ghost lands next to its envelope.
#[test]
fn dedup_delivers_exactly_once_under_all_interleavings() {
    use metaprep_dist::{DedupState, Offer};
    loom::model(|| {
        let (tx, rx) = unbounded::<u64>();
        let sender = thread::spawn(move || {
            for seq in 0u64..3 {
                tx.send(seq).expect("receiver alive");
                tx.send(seq).expect("receiver alive"); // duplicate
            }
            tx.send(0).expect("receiver alive"); // late retransmit
        });
        let mut dedup = DedupState::new();
        let mut next = 0u64;
        let mut delivered = Vec::new();
        // 7 wire items total; drain them all, delivering on classify.
        for _ in 0..7 {
            let seq = rx.recv().expect("sender alive");
            match dedup.classify(next, seq) {
                Offer::Deliver => {
                    delivered.push(seq);
                    next += 1;
                }
                Offer::Stash | Offer::Duplicate => {}
            }
        }
        sender.join().expect("sender clean");
        assert_eq!(delivered, vec![0, 1, 2], "exactly-once in-order broken");
        assert_eq!(dedup.duplicates(), 4);
    });
}

/// The stash path of the same protocol: the wire reorders seq 1 ahead
/// of seq 0 (what a receive-side reorder injection produces). Across
/// every interleaving the receiver must stash the early arrival and
/// deliver it exactly at its turn.
#[test]
fn reordered_arrivals_are_stashed_and_delivered_in_order() {
    use metaprep_dist::{DedupState, Offer};
    loom::model(|| {
        let (tx, rx) = unbounded::<u64>();
        let sender = thread::spawn(move || {
            for seq in [1u64, 0, 2] {
                tx.send(seq).expect("receiver alive");
            }
        });
        let mut dedup = DedupState::new();
        let mut stash = std::collections::BTreeMap::new();
        let mut next = 0u64;
        let mut delivered = Vec::new();
        while delivered.len() < 3 {
            if dedup.take_ready(next) {
                let seq = stash.remove(&next).expect("stashed value present");
                delivered.push(seq);
                next += 1;
                continue;
            }
            let seq = rx.recv().expect("sender alive");
            match dedup.classify(next, seq) {
                Offer::Deliver => {
                    delivered.push(seq);
                    next += 1;
                }
                Offer::Stash => {
                    stash.insert(seq, seq);
                }
                Offer::Duplicate => {}
            }
        }
        sender.join().expect("sender clean");
        assert_eq!(delivered, vec![0, 1, 2], "stash broke in-order delivery");
        assert_eq!(stash.len(), 0, "stash not drained");
    });
}

/// Negative control: an UNSTAGED schedule where rank 0 receives before
/// sending while rank 1 does the opposite-of-staged order would
/// deadlock if both ranks waited first. The model must detect the
/// cross-recv deadlock and abort with a report instead of hanging —
/// this is the property the watchdog enforces at runtime for schedules
/// the model cannot cover.
#[test]
fn cross_recv_without_staging_is_caught_by_model() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let (senders, receivers) = wire(2);
            let mut parts: Vec<_> = senders.into_iter().zip(receivers).collect();
            let (txs1, rxs1) = parts.pop().unwrap();
            let (txs0, rxs0) = parts.pop().unwrap();
            let h0 = thread::spawn(move || {
                // Recv-first on both ranks: nobody ever sends.
                let _ = rxs0[1].recv();
                let _ = txs0[1].send((0, 1));
            });
            let h1 = thread::spawn(move || {
                let _ = rxs1[0].recv();
                let _ = txs1[0].send((1, 0));
            });
            let _ = h0.join();
            let _ = h1.join();
        });
    });
    let err = caught.expect_err("model must flag the deadlock");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("DEADLOCK"),
        "expected a deadlock report, got: {msg:?}"
    );
}
