//! Differential checker for the distributed connected-components path.
//!
//! Replays the SAME edge stream two ways and asserts identical
//! components:
//!
//! 1. **distributed**: shard the stream across `P` simulated tasks,
//!    route every edge to the owner of its smaller endpoint with the
//!    staged [`alltoall`], union locally, then gather the per-task
//!    parent arrays at rank 0 and merge them — the structure of the
//!    paper's multi-node LocalCC;
//! 2. **sequential oracle**: feed the stream straight through
//!    [`metaprep_cc::seq::DisjointSet`].
//!
//! The distributed run executes under [`explore_schedules`], so the
//! comparison is repeated across deterministic schedule jitters; the
//! harness's watchdog turns any routing/deadlock bug into a per-task
//! report instead of a hung test, and its conservation counter asserts
//! no message was dropped.

use metaprep_cc::seq::DisjointSet;
use metaprep_dist::collectives::{alltoall, gather};
use metaprep_dist::{explore_schedules, ClusterConfig};

/// Deterministic xorshift64* stream (no external RNG dependency).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_edges(seed: u64, n: u32, m: usize) -> Vec<(u32, u32)> {
    let mut rng = Rng(seed | 1);
    (0..m)
        .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
        .collect()
}

/// Two labelings describe the same partition iff label pairing is a
/// bijection.
fn same_partition(a: &[u32], b: &[u32]) -> bool {
    assert_eq!(a.len(), b.len());
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

/// The distributed replay: every task owns the contiguous shard
/// `edges[rank * m/p ..]`, routes each edge to `min(u, v) % p`, unions
/// what it receives into a full-size local forest, and rank 0 merges
/// the gathered parent arrays.
fn distributed_components(n: u32, edges: &[(u32, u32)], p: usize, seeds: &[u64]) -> Vec<Vec<u32>> {
    let edges = edges.to_vec();
    let runs =
        explore_schedules::<Vec<(u32, u32)>, _, _>(ClusterConfig::new(p, 1), seeds, move |ctx| {
            let rank = ctx.rank();
            let p = ctx.size();
            // Contiguous shard of the stream (last shard takes the tail).
            let per = edges.len().div_ceil(p);
            let lo = (rank * per).min(edges.len());
            let hi = ((rank + 1) * per).min(edges.len());

            // Route each local edge to the owner of its smaller endpoint.
            let mut outgoing: Vec<Vec<(u32, u32)>> = (0..p).map(|_| Vec::new()).collect();
            for &(u, v) in &edges[lo..hi] {
                outgoing[(u.min(v) as usize) % p].push((u, v));
            }
            let incoming = alltoall(ctx, outgoing);

            // Union everything this task owns into a full-size forest.
            let mut local = DisjointSet::new(n as usize);
            for buf in incoming {
                for (u, v) in buf {
                    local.union(u, v);
                }
            }

            // Ship the resolved forest as (vertex, root) pairs — the
            // cluster's message type is the edge-buffer type, and a
            // parent array IS a set of union edges (merge.rs's sparse
            // representation). Rank 0 replays them into one forest.
            let mine: Vec<(u32, u32)> = local
                .into_component_array()
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r))
                .collect();
            match gather(ctx, 0, mine) {
                Some(all) => {
                    let mut global = DisjointSet::new(n as usize);
                    for (u, v) in all.into_iter().flatten() {
                        global.union(u, v);
                    }
                    global.into_component_array()
                }
                None => Vec::new(),
            }
        });
    runs.into_iter().map(|r| r.results[0].clone()).collect()
}

fn oracle(n: u32, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut ds = DisjointSet::new(n as usize);
    for &(u, v) in edges {
        ds.union(u, v);
    }
    ds.into_component_array()
}

#[test]
fn distributed_matches_sequential_across_schedules() {
    for (case, (seed, n, m, p)) in [
        (1u64, 64u32, 200usize, 2usize),
        (2, 100, 50, 3), // sparse: many components survive
        (3, 40, 400, 4), // dense: collapses to few components
        (4, 7, 30, 5),   // more tasks than distinct owners is fine
    ]
    .into_iter()
    .enumerate()
    {
        let edges = random_edges(seed, n, m);
        let want = oracle(n, &edges);
        for (i, got) in distributed_components(n, &edges, p, &[0, 11, 12, 13])
            .into_iter()
            .enumerate()
        {
            assert!(
                same_partition(&got, &want),
                "case {case}: distributed run under jitter seed #{i} diverged"
            );
        }
    }
}

#[test]
fn empty_and_self_edge_streams() {
    let want = oracle(16, &[]);
    for got in distributed_components(16, &[], 3, &[0, 5]) {
        assert!(same_partition(&got, &want));
    }
    let self_edges: Vec<(u32, u32)> = (0..16).map(|i| (i, i)).collect();
    let want = oracle(16, &self_edges);
    for got in distributed_components(16, &self_edges, 2, &[0, 5]) {
        assert!(same_partition(&got, &want));
    }
}

#[test]
fn single_task_degenerates_to_sequential() {
    let edges = random_edges(9, 32, 100);
    let want = oracle(32, &edges);
    for got in distributed_components(32, &edges, 1, &[0]) {
        assert!(same_partition(&got, &want));
    }
}
