//! Loom model tests for the fused-scatter single-writer contract
//! (PR-4's [`metaprep_sort::fused`] scatter path).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p metaprep-sort --test loom
//! ```
//!
//! The production scatter runs on rayon, whose pool threads the model
//! cannot schedule; what IS modeled is the concurrency primitive the
//! scatter's safety rests on: [`SharedSlice`]'s "each slot has at most
//! one writer" contract and the [`ScatterTracker`] that *asserts* it in
//! debug builds. Under `--cfg loom` the tracker's per-slot flags are
//! modeled atomics, so every interleaving of two scatter writers is
//! explored — and with DPOR, writers on disjoint windows (distinct flag
//! objects, hence independent operations) collapse to a single
//! explored schedule, which the tests pin.
//!
//! Lifetimes: `SharedSlice` borrows its buffer and tracker, but modeled
//! threads need `'static` closures. The tests leak a heap allocation
//! into the model run (`Box::into_raw`), hand `'static` borrows to the
//! writers, and reclaim after every clone is joined and dropped. A
//! sleep-set-aborted run unwinds past the reclaim and leaks its little
//! buffer — bounded by the handful of schedules these models explore,
//! and only in the test process.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::Arc;
use loom::thread;
use metaprep_sort::{ScatterTracker, SharedSlice};

/// Run `f` with a leaked (buffer, tracker) pair wrapped in a
/// `'static` `SharedSlice`, then reclaim and return the buffer.
///
/// `f` gets the shared slice and must join every writer it spawns
/// before returning (it owns the only other Arc clones).
fn with_leaked_slice<R>(
    n: usize,
    f: impl FnOnce(&Arc<SharedSlice<'static, u64>>) -> R,
) -> (Vec<u64>, R) {
    let data_ptr = Box::into_raw(Box::new(vec![0u64; n]));
    let tracker_ptr = Box::into_raw(Box::new(ScatterTracker::new()));
    // SAFETY: both pointers come from Box::into_raw above, so they are
    // valid, aligned, and uniquely owned; the `'static` borrows they
    // yield live only inside the SharedSlice, whose last clone is
    // dropped below before the boxes are reclaimed.
    let shared =
        Arc::new(unsafe { SharedSlice::new((*data_ptr).as_mut_slice(), &mut *tracker_ptr) });
    let out = f(&shared);
    drop(shared);
    // SAFETY: `f` joined its writers and the local Arc is dropped, so
    // no SharedSlice (and no borrow of either box) survives; the boxes
    // can be reclaimed exactly once.
    let data = unsafe { *Box::from_raw(data_ptr) };
    // SAFETY: same argument as above, for the tracker box.
    drop(unsafe { Box::from_raw(tracker_ptr) });
    (data, out)
}

/// Two writers on disjoint windows — the shape `scatter_from_parts`
/// produces by construction. Every pair of their operations touches
/// distinct tracker flags, so all operations are independent and DPOR
/// must need exactly ONE schedule to cover every outcome (brute force
/// explores the full interleaving product of the four writes).
#[test]
fn disjoint_scatter_windows_need_one_schedule() {
    let report = Builder {
        max_iters: 250_000,
        dpor: true,
    }
    .check_report(|| {
        let (data, _) = with_leaked_slice(4, |shared| {
            let handles: Vec<_> = [(0usize, 10u64), (2, 30)]
                .into_iter()
                .map(|(base, val)| {
                    let sh = Arc::clone(shared);
                    thread::spawn(move || {
                        for k in 0..2 {
                            // SAFETY: windows [0,2) and [2,4) are disjoint;
                            // each slot has exactly one writer.
                            unsafe { sh.write(base + k, val + k as u64) };
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(data, vec![10, 11, 30, 31], "scatter landed every write");
    });
    assert_eq!(
        report.schedules_explored, 1,
        "disjoint writers are independent; DPOR must not branch on them"
    );
}

/// Two writers racing on the SAME slot — the contract violation the
/// tracker exists to catch. In EVERY interleaving exactly one writer's
/// flag swap observes the other's and trips the assert; the racing
/// data write never executes. The tracker flags only exist under
/// `debug_assertions` (release builds trust the contract), hence the
/// cfg.
#[test]
#[cfg(debug_assertions)]
fn overlapping_writers_trip_the_tracker_in_every_interleaving() {
    let report = Builder {
        max_iters: 250_000,
        dpor: true,
    }
    .check_report(|| {
        let (data, tripped) = with_leaked_slice(2, |shared| {
            let handles: Vec<_> = [7u64, 9]
                .into_iter()
                .map(|val| {
                    let sh = Arc::clone(shared);
                    thread::spawn(move || {
                        // Both writers target slot 0: a deliberate
                        // contract violation. Catch the tracker's
                        // panic so it stays a per-writer observation
                        // instead of failing the whole model.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // SAFETY: violated on purpose — the tracker
                            // must stop the second writer before the
                            // overlapping data write happens.
                            unsafe { sh.write(0, val) };
                        }))
                        .is_err()
                    })
                })
                .collect();
            let tripped: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            tripped
        });
        assert_eq!(
            tripped.iter().filter(|&&t| t).count(),
            1,
            "exactly one of the two overlapping writers must trip the tracker"
        );
        // Whichever writer won wrote slot 0; slot 1 stays untouched.
        assert!(data[0] == 7 || data[0] == 9, "winner's write landed");
        assert_eq!(data[1], 0);
    });
    // The two swaps on one flag are dependent: both orders must be
    // explored (each order trips a different writer).
    assert!(
        report.schedules_explored >= 2,
        "racing swaps must branch, explored only {}",
        report.schedules_explored
    );
}

/// Tracker recycling across passes — the `PassBuffers` pool pattern:
/// one tracker serves scatter after scatter, with `prepare` resetting
/// (not reallocating) the flags. A second pass writing the same slots
/// as the first must NOT trip, in any interleaving of its writers.
#[test]
fn tracker_reuse_across_passes_stays_clean() {
    let report = Builder {
        max_iters: 250_000,
        dpor: true,
    }
    .check_report(|| {
        let data_ptr = Box::into_raw(Box::new(vec![0u64; 2]));
        let tracker_ptr = Box::into_raw(Box::new(ScatterTracker::new()));
        for pass in 1..=2u64 {
            // SAFETY: the previous pass's SharedSlice (the only borrow
            // of either box) was dropped at the end of the previous
            // iteration after its writers joined; re-borrowing here is
            // exclusive again. Boxes are reclaimed once, below.
            let shared = Arc::new(unsafe {
                SharedSlice::new((*data_ptr).as_mut_slice(), &mut *tracker_ptr)
            });
            let handles: Vec<_> = [0usize, 1]
                .into_iter()
                .map(|slot| {
                    let sh = Arc::clone(&shared);
                    thread::spawn(move || {
                        // SAFETY: one writer per slot within each pass.
                        unsafe { sh.write(slot, pass * 10 + slot as u64) };
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        // SAFETY: both passes' writers joined and their SharedSlices
        // dropped; the boxes are uniquely owned again.
        let data = unsafe { *Box::from_raw(data_ptr) };
        drop(unsafe { Box::from_raw(tracker_ptr) });
        assert_eq!(data, vec![20, 21], "second pass overwrote the first");
    });
    // Within each pass the writers are independent (distinct slots) and
    // the passes are ordered by joins, so DPOR needs one schedule.
    assert_eq!(
        report.schedules_explored, 1,
        "pool reuse must not introduce dependent operations"
    );
}
