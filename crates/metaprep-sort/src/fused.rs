//! Fused receive-side LocalSort: scatter-on-receive + pruned radix.
//!
//! The unfused pipeline copied every received tuple three times per pass:
//! concat the per-sender message buffers into one vector, range-partition
//! that vector into a scratch buffer ([`crate::partition_by_ranges`]),
//! then radix-sort each sub-range. [`fused_local_sort`] collapses the
//! first two copies into one: [`scatter_from_parts`] histograms the
//! per-sender buffers *in place* and scatters each tuple directly to its
//! final partitioned slot, so the concat never materializes.
//!
//! Three further savings ride on the same pass over the data:
//!
//! * the per-tuple `partition_point` binary search is replaced by a
//!   [`BoundaryTable`] lookup — branchless, exact, and chosen by
//!   measurement (see the type docs);
//! * each tuple's range index is recorded in a pooled id buffer during the
//!   histogram pass, so the scatter pass classifies nothing: it streams
//!   tuples and ids and only performs the write (measured ~2.5x faster
//!   than recomputing the range per tuple);
//! * the histogram accumulates a per-sub-range *varying-bits mask*
//!   (`OR(keys) ^ AND(keys)` — set exactly where two keys disagree), which
//!   [`lsb_radix_sort_pruned`](crate::lsb_radix_sort_pruned) uses to skip
//!   identity radix passes without the counting scan the unpruned sort
//!   pays to detect them.
//!
//! **Stability / byte-identity.** Work units are ordered part-major
//! (sender 0's tuples first, in order, then sender 1's, …) — exactly the
//! order the old concat visited tuples — and the per-(unit, range) write
//! cursors preserve that order within every sub-range. The scatter is
//! therefore stable in concat order, and the pruned radix sort is stable
//! and skips exactly the passes the unpruned sort's counting heuristic
//! skips, so the fused result is byte-identical to the reference
//! concat → partition → full-radix path. LocalCC's union anchor (first
//! tuple of each equal-k-mer group) depends on this and a proptest pins
//! it.

use crate::partition::{ScatterTracker, SharedSlice};
use crate::radix::{lsb_radix_sort_pruned, Keyed, RadixStats, SortKey};
use rayon::prelude::*;

/// Max table index width; 2^11 u32 entries = 8 KiB, comfortably L1-resident.
const TABLE_BITS: u32 = 11;

/// Below this boundary count the table is skipped entirely and `range_of`
/// is a branchless sum of comparisons over all boundaries. Measured on the
/// skewed receive-side workload (8 sub-ranges, single thread): branchless
/// sum ~318 Mt/s vs `partition_point` ~231 Mt/s vs prefix table with a
/// data-dependent advance loop ~83 Mt/s — the advance loop's unpredictable
/// branches dominate whenever mass-balanced boundaries cluster inside a
/// few table buckets, which is exactly what abundance-skewed k-mer data
/// produces.
const BRANCHLESS_MAX_BOUNDARIES: usize = 16;

/// Precomputed range classifier replacing the per-tuple `partition_point`
/// binary search over sub-range boundaries.
///
/// For sorted exclusive-upper `boundaries` (range `r` holds keys
/// `< boundaries[r]`), the range index of `key` is the number of
/// boundaries `<= key`. Two exact strategies, both with branch-free
/// per-boundary work (a comparison summed as 0/1 — no data-dependent
/// branches for the predictor to miss on skewed keys):
///
/// * **few boundaries** (`<= 16`, the common `T - 1` case): sum
///   `boundary <= key` over all boundaries — one or two unrolled SIMD-able
///   compare rows;
/// * **many boundaries**: a prefix-indexed table narrows first. `lo[d]`
///   counts the boundaries whose top `TABLE_BITS`-of-`key_bits` prefix is
///   `< d`; every such boundary is `<= key` for a key with prefix `d`, and
///   every boundary with prefix `> d` is `> key`, so only the window
///   `lo[d]..lo[d + 1]` of same-prefix boundaries needs the comparison
///   sum.
///
/// Precondition (same as the radix sort's): every key and boundary is
/// `< 2^key_bits`.
pub struct BoundaryTable<'b, K: SortKey> {
    boundaries: &'b [K],
    shift: u32,
    mask: u64,
    /// Prefix-count table; empty when the branchless small path is active.
    lo: Vec<u32>,
}

impl<'b, K: SortKey> BoundaryTable<'b, K> {
    /// Build the table for `boundaries` over keys of `key_bits` bits.
    pub fn new(boundaries: &'b [K], key_bits: u32) -> Self {
        assert!(
            (1..=K::BITS).contains(&key_bits),
            "key_bits {key_bits} not in 1..={}",
            K::BITS
        );
        assert!(
            u32::try_from(boundaries.len()).is_ok(),
            "boundary count overflows the table's u32 entries"
        );
        if boundaries.len() <= BRANCHLESS_MAX_BOUNDARIES {
            return Self {
                boundaries,
                shift: 0,
                mask: 0,
                lo: Vec::new(),
            };
        }
        let tb = TABLE_BITS.min(key_bits);
        let shift = key_bits - tb;
        let size = 1usize << tb;
        let mask = (size - 1) as u64;
        let mut lo = vec![0u32; size + 1];
        for b in boundaries {
            lo[b.digit(shift, mask) + 1] += 1;
        }
        for d in 0..size {
            lo[d + 1] += lo[d];
        }
        Self {
            boundaries,
            shift,
            mask,
            lo,
        }
    }

    /// Index of the range `key` falls into (boundaries are exclusive
    /// uppers; `boundaries.len() + 1` ranges).
    #[inline(always)]
    pub fn range_of(&self, key: K) -> usize {
        let (base, window) = if self.lo.is_empty() {
            (0, self.boundaries)
        } else {
            let d = key.digit(self.shift, self.mask);
            let (s, e) = (self.lo[d] as usize, self.lo[d + 1] as usize);
            (s, &self.boundaries[s..e])
        };
        let mut r = base;
        for b in window {
            r += usize::from(*b <= key);
        }
        r
    }
}

/// What [`scatter_from_parts`] learned while scattering.
pub struct ScatterResult<K> {
    /// The `ranges + 1` sub-range offsets within the destination buffer —
    /// the same offsets LocalCC's per-thread walk needs, so the pipeline
    /// skips its post-sort binary-search derivation.
    pub offsets: Vec<usize>,
    /// Per-range varying-bits mask: bit `i` is set iff two keys in the
    /// range differ in bit `i`. Feed to
    /// [`lsb_radix_sort_pruned`](crate::lsb_radix_sort_pruned).
    pub varying: Vec<K>,
}

/// Scatter the per-sender message buffers straight into `dst`, grouped by
/// key range — the fused replacement for concat + [`crate::partition_by_ranges`].
///
/// `dst.len()` must equal the total part length. Tuple order within each
/// range is part-major input order (sender 0 first), i.e. exactly the
/// order the concat-then-partition path produces. Returns the sub-range
/// offsets and per-range varying-bits masks accumulated during the
/// histogram pass.
///
/// `ids` is pooled per-tuple scratch (one `u16` range index each,
/// recorded by the histogram pass and consumed by the scatter pass so the
/// range classification runs once per tuple, not twice); pass the same
/// `Vec` every call to recycle its allocation, or an empty one for a
/// one-off. At most `u16::MAX + 1` ranges are supported — far above the
/// per-task thread counts that set the range count in the pipeline.
pub fn scatter_from_parts<T: Keyed>(
    parts: &[Vec<T>],
    dst: &mut [T],
    boundaries: &[T::Key],
    key_bits: u32,
    tracker: &mut ScatterTracker,
    ids: &mut Vec<u16>,
) -> ScatterResult<T::Key> {
    let total: usize = parts.iter().map(Vec::len).sum();
    assert_eq!(total, dst.len(), "dst must hold every part tuple");
    assert!(
        boundaries.windows(2).all(|w| w[0] <= w[1]),
        "boundaries must be sorted"
    );
    let ranges = boundaries.len() + 1;
    assert!(ranges <= usize::from(u16::MAX) + 1, "too many sub-ranges");
    let table = BoundaryTable::new(boundaries, key_bits);

    // Work units: each part sub-chunked so threads stay busy even when
    // sender volumes are skewed. Units are ordered part-major (and
    // offset-minor within a part) — the order the old concat visited
    // tuples — which is what makes the stable scatter byte-identical to
    // concat + partition_by_ranges.
    let chunk_size = total.div_ceil(rayon::current_num_threads().max(1)).max(1);
    let chunks: Vec<&[T]> = parts.iter().flat_map(|p| p.chunks(chunk_size)).collect();

    // Carve the pooled id buffer into per-chunk windows (same flat order
    // as `chunks`). Every id slot is written by the histogram pass before
    // the scatter pass reads it, so recycled contents never leak through.
    if ids.len() < total {
        ids.resize(total, 0);
    }
    let mut id_windows: Vec<&mut [u16]> = Vec::with_capacity(chunks.len());
    let mut rem_ids: &mut [u16] = &mut ids[..total];
    for chunk in &chunks {
        let (w, rest) = rem_ids.split_at_mut(chunk.len());
        id_windows.push(w);
        rem_ids = rest;
    }

    // Histogram pass: per-chunk range counts, each tuple's range id, and
    // the varying-bits accumulators — OR and AND of the range's keys; a
    // bit varies iff it is 1 in some key (OR) but not in all (AND), so
    // `or ^ and` is exactly the varying mask, and both fold across chunks
    // bit-parallel and branch-free.
    type ChunkStat<K> = (Vec<usize>, Vec<K>, Vec<K>);
    let stats: Vec<ChunkStat<T::Key>> = chunks
        .par_iter()
        .zip(id_windows.into_par_iter())
        .map(|(chunk, id_window)| {
            let mut hist = vec![0usize; ranges];
            let mut or_acc = vec![T::Key::ZERO; ranges];
            let mut and_acc = vec![T::Key::ONES; ranges];
            for (t, id) in chunk.iter().zip(id_window.iter_mut()) {
                let k = t.key();
                let r = table.range_of(k);
                *id = r as u16;
                hist[r] += 1;
                or_acc[r] = or_acc[r] | k;
                and_acc[r] = and_acc[r] & k;
            }
            (hist, or_acc, and_acc)
        })
        .collect();

    // Range totals -> offsets; fold the per-chunk OR/AND accumulators.
    let mut offsets = vec![0usize; ranges + 1];
    for r in 0..ranges {
        let t: usize = stats.iter().map(|(h, _, _)| h[r]).sum();
        offsets[r + 1] = offsets[r] + t;
    }
    let mut varying = vec![T::Key::ZERO; ranges];
    for (r, v) in varying.iter_mut().enumerate() {
        if offsets[r + 1] == offsets[r] {
            continue; // empty range: keep the mask all-zero
        }
        let mut or_acc = T::Key::ZERO;
        let mut and_acc = T::Key::ONES;
        for (h, o, a) in &stats {
            if h[r] > 0 {
                or_acc = or_acc | o[r];
                and_acc = and_acc & a[r];
            }
        }
        *v = or_acc ^ and_acc;
    }

    // Per-(chunk, range) write cursors, chunk-major prefix sums.
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(chunks.len());
    let mut running = offsets[..ranges].to_vec();
    for (h, _, _) in &stats {
        cursors.push(running.clone());
        for r in 0..ranges {
            running[r] += h[r];
        }
    }

    // Scatter pass: stream tuples and their recorded range ids — no
    // classification work left, just the permuting writes.
    let mut read_windows: Vec<&[u16]> = Vec::with_capacity(chunks.len());
    let mut rem_ids: &[u16] = &ids[..total];
    for chunk in &chunks {
        let (w, rest) = rem_ids.split_at(chunk.len());
        read_windows.push(w);
        rem_ids = rest;
    }
    let shared = SharedSlice::new(dst, tracker);
    chunks
        .par_iter()
        .zip(read_windows.into_par_iter())
        .zip(cursors.into_par_iter())
        .for_each(|((chunk, id_window), mut cur)| {
            for (t, &id) in chunk.iter().zip(id_window.iter()) {
                let r = usize::from(id);
                // SAFETY: cursor windows are disjoint by construction.
                unsafe { shared.write(cur[r], *t) };
                cur[r] += 1;
            }
        });

    ScatterResult { offsets, varying }
}

/// Pooled per-task buffers for the fused LocalSort: the partitioned
/// destination, the radix scratch, the per-tuple range-id buffer, and the
/// debug-build scatter tracker are allocated once and recycled across
/// passes (the unfused path re-allocated and zero-initialized both big
/// vectors every pass — and on a cold pool, first-touch page faults cost
/// as much as the scatter itself, so recycling is where the fused path's
/// steady-state win comes from).
///
/// Reuse without re-zeroing is sound because the scatter writes every
/// destination slot before anything reads it, each radix pass writes
/// every scratch slot it later reads, and the histogram pass writes every
/// range id the scatter reads.
#[derive(Default)]
pub struct PassBuffers<T> {
    dst: Vec<T>,
    scratch: Vec<T>,
    ids: Vec<u16>,
    tracker: ScatterTracker,
}

impl<T: Keyed + Default> PassBuffers<T> {
    /// Empty pool; buffers grow lazily to the largest pass seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size both buffers for `n` tuples (e.g. from the `FASTQPart`
    /// receive-count precomputation) so the first pass doesn't grow them
    /// mid-flight.
    pub fn reserve(&mut self, n: usize) {
        if self.dst.len() < n {
            self.dst.resize(n, T::default());
        }
        if self.scratch.len() < n {
            self.scratch.resize(n, T::default());
        }
        if self.ids.len() < n {
            self.ids.resize(n, 0);
        }
    }

    /// The sorted tuples after [`fused_local_sort`] (valid until the next
    /// call mutates the pool).
    pub fn sorted(&self) -> &[T] {
        &self.dst
    }
}

/// What [`fused_local_sort`] did.
pub struct FusedSortResult {
    /// Sub-range offsets within [`PassBuffers::sorted`].
    pub offsets: Vec<usize>,
    /// Radix passes run vs pruned, summed over sub-ranges.
    pub stats: RadixStats,
}

/// The fused LocalSort: scatter the per-sender buffers straight into the
/// pooled destination, then sort each sub-range with the bit-pruned radix
/// sort. Consumes `parts` so the received message buffers are freed before
/// the radix scratch peaks.
///
/// The sorted tuples land in `bufs.sorted()[..total]`; the result is
/// byte-identical to concat → [`crate::partition_by_ranges`] → per-range
/// [`crate::lsb_radix_sort`] (see the module docs for the argument).
pub fn fused_local_sort<T: Keyed + Default>(
    parts: Vec<Vec<T>>,
    bufs: &mut PassBuffers<T>,
    boundaries: &[T::Key],
    bits: u32,
    key_bits: u32,
) -> FusedSortResult {
    let total: usize = parts.iter().map(Vec::len).sum();
    bufs.dst.resize(total, T::default());
    let sc = scatter_from_parts(
        &parts,
        &mut bufs.dst,
        boundaries,
        key_bits,
        &mut bufs.tracker,
        &mut bufs.ids,
    );
    // The received buffers are dead the moment the scatter lands; free
    // them before the scratch buffer (re)grows so at most two tuple
    // copies are ever resident.
    drop(parts);
    bufs.scratch.resize(total, T::default());

    // Disjoint (range, scratch-window, varying-mask) triples for rayon.
    let mut rem_d: &mut [T] = &mut bufs.dst;
    let mut rem_s: &mut [T] = &mut bufs.scratch;
    let mut work = Vec::with_capacity(sc.offsets.len() - 1);
    for (r, w) in sc.offsets.windows(2).enumerate() {
        let len = w[1] - w[0];
        let (d, rd) = rem_d.split_at_mut(len);
        let (s, rs) = rem_s.split_at_mut(len);
        rem_d = rd;
        rem_s = rs;
        work.push((d, s, sc.varying[r]));
    }
    let stats = work
        .into_par_iter()
        .map(|(d, s, v)| lsb_radix_sort_pruned(d, s, bits, key_bits, v))
        .reduce(RadixStats::default, RadixStats::merged);

    FusedSortResult {
        offsets: sc.offsets,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_by_ranges;
    use crate::radix::lsb_radix_sort;
    use metaprep_kmer::KmerReadTuple;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The unfused pipeline path: concat -> partition_by_ranges -> full
    /// per-range lsb_radix_sort. Returns the sorted tuples.
    fn reference_path<T: Keyed + Default>(
        parts: &[Vec<T>],
        boundaries: &[T::Key],
        bits: u32,
        key_bits: u32,
    ) -> (Vec<usize>, Vec<T>) {
        let mut tuples: Vec<T> = Vec::new();
        for p in parts {
            tuples.extend_from_slice(p);
        }
        let mut dst = vec![T::default(); tuples.len()];
        let offsets = partition_by_ranges(&tuples, &mut dst, boundaries);
        for w in offsets.windows(2) {
            let (d, s) = (&mut dst[w[0]..w[1]], &mut tuples[w[0]..w[1]]);
            lsb_radix_sort(d, s, bits, key_bits);
        }
        (offsets, dst)
    }

    fn fused_path<T: Keyed + Default>(
        parts: &[Vec<T>],
        boundaries: &[T::Key],
        bits: u32,
        key_bits: u32,
    ) -> (FusedSortResult, Vec<T>) {
        let mut bufs = PassBuffers::new();
        let res = fused_local_sort(parts.to_vec(), &mut bufs, boundaries, bits, key_bits);
        let sorted = bufs.sorted().to_vec();
        (res, sorted)
    }

    #[test]
    fn boundary_table_matches_partition_point() {
        let mut rng = SmallRng::seed_from_u64(11);
        // 7 boundaries exercise the branchless small path, 17 the
        // prefix-table path (see BRANCHLESS_MAX_BOUNDARIES).
        for nb in [7usize, 17] {
            for key_bits in [8u32, 16, 54, 64] {
                let cap = |x: u64| {
                    if key_bits >= 64 {
                        x
                    } else {
                        x & ((1u64 << key_bits) - 1)
                    }
                };
                let mut boundaries: Vec<u64> = (0..nb).map(|_| cap(rng.gen())).collect();
                boundaries.sort_unstable();
                // Include duplicates.
                boundaries[3] = boundaries[4];
                boundaries.sort_unstable();
                let table = BoundaryTable::new(&boundaries, key_bits);
                for _ in 0..5_000 {
                    let k = cap(rng.gen());
                    assert_eq!(
                        table.range_of(k),
                        boundaries.partition_point(|b| *b <= k),
                        "key {k:#x} key_bits {key_bits} nb {nb}"
                    );
                }
                // Boundary keys themselves and the extremes.
                for &b in &boundaries {
                    for k in [b, b.wrapping_sub(1) & cap(u64::MAX), cap(u64::MAX), 0] {
                        assert_eq!(table.range_of(k), boundaries.partition_point(|b| *b <= k));
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_varying_masks_are_exact() {
        let parts: Vec<Vec<u64>> = vec![vec![0b1010, 0b1000, 30], vec![0b1110, 40, 50]];
        let boundaries = [16u64];
        let mut dst = vec![0u64; 6];
        let mut tracker = ScatterTracker::new();
        let mut ids = Vec::new();
        let sc = scatter_from_parts(&parts, &mut dst, &boundaries, 64, &mut tracker, &mut ids);
        assert_eq!(sc.offsets, vec![0, 3, 6]);
        // Range 0: {1010, 1000, 1110} -> bits 1 and 2 vary.
        assert_eq!(sc.varying[0], 0b0110);
        // Range 1: {30, 40, 50} = {11110, 101000, 110010}.
        assert_eq!(sc.varying[1], (30 ^ 40) | (30 ^ 50));
        // Part-major stable order within ranges.
        assert_eq!(dst, vec![0b1010, 0b1000, 0b1110, 30, 40, 50]);
    }

    #[test]
    fn fused_sorts_and_prunes_narrow_ranges() {
        // Keys clustered in a 2^12 window: of ceil(54/8) = 7 passes, only
        // the low two digit windows vary, so 5 of 7 passes prune per range.
        let mut rng = SmallRng::seed_from_u64(5);
        let base = 0x2ABC_DEF0_0000u64;
        let parts: Vec<Vec<KmerReadTuple>> = (0..4)
            .map(|p| {
                (0..5_000)
                    .map(|i| KmerReadTuple::new(base + (rng.gen::<u64>() & 0xFFF), p * 5_000 + i))
                    .collect()
            })
            .collect();
        let boundaries = [base + 0x400, base + 0x800, base + 0xC00];
        let (res, sorted) = fused_path(&parts, &boundaries, 8, 54);
        assert!(crate::is_sorted_by_key(&sorted));
        assert_eq!(res.stats.passes_run, 4 * 2);
        assert_eq!(res.stats.passes_pruned, 4 * 5);
        let (ref_offs, ref_sorted) = reference_path(&parts, &boundaries, 8, 54);
        assert_eq!(res.offsets, ref_offs);
        assert_eq!(sorted, ref_sorted);
    }

    #[test]
    fn pass_buffers_recycle_across_calls() {
        let mut bufs = PassBuffers::new();
        let boundaries = [1u64 << 32];
        for round in 0..5u64 {
            let parts: Vec<Vec<u64>> = vec![
                (0..1000).map(|i| i * 7 + round).collect(),
                (0..500).map(|i| (i * 13 + round) << 30).collect(),
            ];
            let (_, want) = reference_path(&parts, &boundaries, 8, 64);
            fused_local_sort(parts, &mut bufs, &boundaries, 8, 64);
            assert_eq!(bufs.sorted(), &want[..], "round {round}");
        }
    }

    #[test]
    fn equal_kmer_tuples_keep_sender_order() {
        // Stability regression: tuples with equal k-mers must come out in
        // sender (part-major) order — LocalCC's union anchor is the first
        // tuple of each equal-k-mer group.
        let parts: Vec<Vec<KmerReadTuple>> = vec![
            vec![KmerReadTuple::new(7, 0), KmerReadTuple::new(3, 1)],
            vec![KmerReadTuple::new(7, 2), KmerReadTuple::new(7, 3)],
            vec![],
            vec![KmerReadTuple::new(3, 4), KmerReadTuple::new(7, 5)],
        ];
        let (_, sorted) = fused_path(&parts, &[5u64], 8, 54);
        let order: Vec<(u64, u32)> = sorted.iter().map(|t| (t.kmer, t.read)).collect();
        assert_eq!(order, vec![(3, 1), (3, 4), (7, 0), (7, 2), (7, 3), (7, 5)]);
    }

    #[test]
    fn empty_parts_and_empty_input() {
        let (res, sorted) = fused_path::<u64>(&[vec![], vec![], vec![]], &[10u64], 8, 64);
        assert!(sorted.is_empty());
        assert_eq!(res.offsets, vec![0, 0, 0]);
        assert_eq!(res.stats, RadixStats::default());
        let (res, sorted) = fused_path::<u64>(&[], &[], 8, 64);
        assert!(sorted.is_empty());
        assert_eq!(res.offsets, vec![0, 0]);
        assert_eq!(res.stats, RadixStats::default());
    }

    proptest! {
        /// The tentpole invariant: fused scatter + pruned radix is
        /// byte-identical to the reference path over random tuple sets,
        /// random part splits, boundary counts (including empty sub-ranges
        /// and duplicate boundaries), and digit widths 8/11/16.
        #[test]
        fn prop_fused_byte_identical_to_reference(
            keys in proptest::collection::vec(0u64..(1 << 54), 0..1500),
            cuts in proptest::collection::vec(0usize..1500, 0..6),
            mut bvals in proptest::collection::vec(0u64..(1 << 54), 0..7),
            dup in any::<bool>(),
            bits_idx in 0usize..3,
        ) {
            let bits = [8u32, 11, 16][bits_idx];
            // Tuples tagged with their global index so stability differences
            // are visible as value differences.
            let tuples: Vec<KmerReadTuple> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| KmerReadTuple::new(k, i as u32))
                .collect();
            // Split into parts at the (sorted, clamped) cut points.
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(tuples.len())).collect();
            cuts.sort_unstable();
            let mut parts: Vec<Vec<KmerReadTuple>> = Vec::new();
            let mut prev = 0;
            for c in cuts {
                parts.push(tuples[prev..c].to_vec());
                prev = c;
            }
            parts.push(tuples[prev..].to_vec());
            // Sorted boundaries, optionally with a forced duplicate
            // (an empty sub-range).
            bvals.sort_unstable();
            if dup && bvals.len() >= 2 {
                bvals[0] = bvals[1];
            }
            let (ref_offs, ref_sorted) = reference_path(&parts, &bvals, bits, 54);
            let (res, sorted) = fused_path(&parts, &bvals, bits, 54);
            prop_assert_eq!(res.offsets, ref_offs);
            prop_assert_eq!(sorted, ref_sorted);
            prop_assert_eq!(
                (res.stats.passes_run + res.stats.passes_pruned) % u64::from(54u32.div_ceil(bits)),
                0
            );
        }
    }
}
