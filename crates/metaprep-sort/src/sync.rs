//! Audited synchronization shim for this crate.
//!
//! The only atomic this crate uses is the debug-build scatter tracker's
//! per-slot "written" flag ([`crate::partition::ScatterTracker`]); it is
//! imported from here, never from `std` directly. Under normal builds
//! these are the `std::sync::atomic` types; under
//! `RUSTFLAGS="--cfg loom"` they are the model-checked `loom` types, so
//! `tests/loom.rs` can explore every interleaving of scatter writers
//! against the *exact* tracker the production scatter runs in debug
//! builds.
//!
//! This file is one of the `ORDERING_AUDITED` shims known to
//! `cargo xtask check`: naming a memory ordering anywhere else in the
//! workspace requires a per-site `// ORDERING:` justification. The
//! model checker explores sequential consistency only, so ordering
//! choices are precisely what source review must still cover.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, Ordering};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, Ordering};
