//! Parallel sorts: LocalSort (partition + per-range serial radix) and the
//! fully parallel LSB radix baseline.

use crate::partition::{
    equal_boundaries_by_sample, partition_by_ranges, ScatterTracker, SharedSlice,
};
use crate::radix::{lsb_radix_sort, Keyed, SortKey};
use rayon::prelude::*;

/// METAPREP's LocalSort (paper §3.4): range-partition `data` into
/// `ranges` disjoint key sub-ranges, then sort each concurrently with a
/// serial out-of-place LSB radix sort (`bits` per pass, `key_bits`
/// meaningful key bits).
///
/// The result is in `data`; `scratch` must have the same length. Stable.
pub fn local_sort<T: Keyed + Default>(
    data: &mut Vec<T>,
    scratch: &mut Vec<T>,
    ranges: usize,
    bits: u32,
    key_bits: u32,
) {
    assert_eq!(data.len(), scratch.len());
    assert!(ranges >= 1);
    if data.len() <= 1 {
        return;
    }
    let boundaries = equal_boundaries_by_sample(&*data, ranges, 64 * ranges);
    local_sort_with_boundaries(data, scratch, &boundaries, bits, key_bits);
}

/// LocalSort with caller-provided range boundaries (the pipeline derives
/// them from the m-mer histogram rather than sampling).
pub fn local_sort_with_boundaries<T: Keyed + Default>(
    data: &mut Vec<T>,
    scratch: &mut Vec<T>,
    boundaries: &[T::Key],
    bits: u32,
    key_bits: u32,
) {
    assert_eq!(data.len(), scratch.len());
    if data.len() <= 1 {
        return;
    }
    // Stage 1: scatter data -> scratch grouped by range.
    let offsets = partition_by_ranges(&*data, scratch, boundaries);

    // Stage 2: sort each range of `scratch`, using the matching window of
    // `data` as per-range scratch space. Ranges are disjoint slices, so
    // rayon can hand each (range, scratch-window) pair to a thread safely.
    let mut rem_dst: &mut [T] = scratch;
    let mut rem_scr: &mut [T] = data;
    let mut pairs = Vec::with_capacity(offsets.len() - 1);
    let mut consumed = 0usize;
    for w in offsets.windows(2) {
        let len = w[1] - w[0];
        debug_assert_eq!(w[0], consumed);
        let (d, rd) = rem_dst.split_at_mut(len);
        let (s, rs) = rem_scr.split_at_mut(len);
        rem_dst = rd;
        rem_scr = rs;
        pairs.push((d, s));
        consumed += len;
    }
    pairs
        .into_par_iter()
        .for_each(|(d, s)| lsb_radix_sort(d, s, bits, key_bits));

    // Result currently lives in `scratch`; swap so callers see it in `data`.
    std::mem::swap(data, scratch);
}

/// Fully parallel, stable, out-of-place LSB radix sort — the stand-in for
/// the NUMA-aware sort of Polychroniou & Ross used as the paper's
/// state-of-the-art comparator (§4.2.2). Every pass does a parallel
/// histogram, a global (bucket-major, chunk-minor) prefix sum, and a
/// parallel scatter.
pub fn parallel_lsb_sort<T: Keyed + Default>(
    data: &mut Vec<T>,
    scratch: &mut Vec<T>,
    bits: u32,
    key_bits: u32,
) {
    assert!((1..=16).contains(&bits));
    assert!(key_bits <= T::Key::BITS);
    assert_eq!(data.len(), scratch.len());
    let n = data.len();
    if n <= 1 {
        return;
    }
    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;
    let passes = key_bits.div_ceil(bits);
    let chunk_size = n.div_ceil(rayon::current_num_threads().max(1)).max(1);

    // One debug-build write tracker reused (reset, not reallocated) by
    // every pass's scatter.
    let mut tracker = ScatterTracker::new();
    let mut src_is_data = true;
    for p in 0..passes {
        let shift = p * bits;
        let (src, dst): (&mut [T], &mut [T]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };

        let chunks: Vec<&[T]> = src.chunks(chunk_size).collect();
        let hists: Vec<Vec<usize>> = chunks
            .par_iter()
            .map(|chunk| {
                let mut h = vec![0usize; buckets];
                for t in chunk.iter() {
                    h[t.key().digit(shift, mask)] += 1;
                }
                h
            })
            .collect();

        // Skip identity passes (single occupied bucket across all chunks).
        let totals: Vec<usize> = (0..buckets)
            .map(|b| hists.iter().map(|h| h[b]).sum())
            .collect();
        if totals.contains(&n) {
            continue;
        }

        // Cursor for chunk c, bucket b: sum of totals[..b] + sum of
        // hists[c'][b] for c' < c (bucket-major keeps the pass stable).
        let mut bucket_starts = vec![0usize; buckets];
        let mut sum = 0usize;
        for b in 0..buckets {
            bucket_starts[b] = sum;
            sum += totals[b];
        }
        let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(chunks.len());
        let mut running = bucket_starts;
        for h in &hists {
            cursors.push(running.clone());
            for b in 0..buckets {
                running[b] += h[b];
            }
        }

        let shared = SharedSlice::new(dst, &mut tracker);
        chunks
            .par_iter()
            .zip(cursors.into_par_iter())
            .for_each(|(chunk, mut cur)| {
                for t in chunk.iter() {
                    let b = t.key().digit(shift, mask);
                    // SAFETY: per-(chunk, bucket) windows are disjoint.
                    unsafe { shared.write(cur[b], *t) };
                    cur[b] += 1;
                }
            });
        src_is_data = !src_is_data;
    }

    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_kmer::KmerReadTuple;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, seed: u64, key_bits: u32) -> Vec<KmerReadTuple> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let k = if key_bits >= 64 {
                    rng.gen()
                } else {
                    rng.gen::<u64>() & ((1u64 << key_bits) - 1)
                };
                KmerReadTuple::new(k, i as u32)
            })
            .collect()
    }

    #[test]
    fn local_sort_sorts_tuples() {
        let v = random_tuples(50_000, 1, 54);
        for ranges in [1, 2, 4, 8] {
            let mut a = v.clone();
            let mut s = vec![KmerReadTuple::default(); a.len()];
            local_sort(&mut a, &mut s, ranges, 8, 54);
            let mut want = v.clone();
            want.sort_by_key(|t| (t.kmer, t.read));
            assert_eq!(a, want, "ranges={ranges}");
        }
    }

    #[test]
    fn local_sort_empty_and_single() {
        let mut a: Vec<u64> = vec![];
        let mut s: Vec<u64> = vec![];
        local_sort(&mut a, &mut s, 4, 8, 64);
        assert!(a.is_empty());
        let mut a = vec![9u64];
        let mut s = vec![0u64];
        local_sort(&mut a, &mut s, 4, 8, 64);
        assert_eq!(a, vec![9]);
    }

    #[test]
    fn local_sort_with_explicit_boundaries() {
        let v = random_tuples(10_000, 2, 64);
        let mut a = v.clone();
        let mut s = vec![KmerReadTuple::default(); a.len()];
        local_sort_with_boundaries(&mut a, &mut s, &[1u64 << 62, 1 << 63], 8, 64);
        let mut want = v;
        want.sort_by_key(|t| (t.kmer, t.read));
        assert_eq!(a, want);
    }

    #[test]
    fn parallel_lsb_matches_std_sort() {
        let v = random_tuples(80_000, 3, 64);
        let mut a = v.clone();
        let mut s = vec![KmerReadTuple::default(); a.len()];
        parallel_lsb_sort(&mut a, &mut s, 8, 64);
        let mut want = v;
        want.sort_by_key(|t| (t.kmer, t.read));
        assert_eq!(a, want);
    }

    #[test]
    fn parallel_lsb_stability() {
        let v: Vec<KmerReadTuple> = (0..10_000)
            .map(|i| KmerReadTuple::new((i % 7) as u64, i as u32))
            .collect();
        let mut a = v.clone();
        let mut s = vec![KmerReadTuple::default(); a.len()];
        parallel_lsb_sort(&mut a, &mut s, 8, 64);
        // Within each key, read ids must be increasing.
        for w in a.windows(2) {
            if w[0].kmer == w[1].kmer {
                assert!(w[0].read < w[1].read);
            }
        }
    }

    #[test]
    fn parallel_lsb_various_digit_widths() {
        let v = random_tuples(20_000, 4, 54);
        let mut want = v.clone();
        want.sort_by_key(|t| (t.kmer, t.read));
        for bits in [4, 8, 11, 16] {
            let mut a = v.clone();
            let mut s = vec![KmerReadTuple::default(); a.len()];
            parallel_lsb_sort(&mut a, &mut s, bits, 54);
            assert_eq!(a, want, "bits={bits}");
        }
    }

    proptest! {
        #[test]
        fn prop_local_sort_matches_std(
            keys in proptest::collection::vec(any::<u64>(), 0..3000),
            ranges in 1usize..6,
        ) {
            let v: Vec<KmerReadTuple> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| KmerReadTuple::new(k, i as u32))
                .collect();
            let mut a = v.clone();
            let mut s = vec![KmerReadTuple::default(); a.len()];
            local_sort(&mut a, &mut s, ranges, 8, 64);
            let mut want = v;
            want.sort_by_key(|t| (t.kmer, t.read));
            prop_assert_eq!(a, want);
        }
    }
}
