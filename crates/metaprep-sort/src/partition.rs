//! Parallel range partitioning (stage 1 of LocalSort, paper §3.4).
//!
//! Tuples are scattered into `T` disjoint, contiguous key sub-ranges of an
//! output buffer so that stage 2 can sort each sub-range concurrently. The
//! scatter is synchronization-free: per-(chunk, range) write offsets are
//! precomputed from per-chunk histograms, exactly as METAPREP precomputes
//! offsets from the `FASTQPart` table instead of locking a shared cursor.

use crate::radix::Keyed;
use rayon::prelude::*;
use std::cell::UnsafeCell;

/// Recyclable home of the debug-build scatter "written" flags.
///
/// [`SharedSlice`] asserts its disjoint-writers contract in debug builds
/// with one `AtomicBool` per destination slot. Allocating those flags per
/// scatter made debug-build proptests over the fused path quadratic in
/// allocations, so the flags live here and are *reset* (not reallocated)
/// between scatters — a [`crate::fused::PassBuffers`] pool keeps one
/// tracker alive for a whole run. In release builds this is a zero-sized
/// no-op.
#[derive(Default)]
pub struct ScatterTracker {
    #[cfg(debug_assertions)]
    flags: Vec<crate::sync::AtomicBool>,
}

impl ScatterTracker {
    /// An empty tracker; flags grow lazily to the largest scatter seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear (and if needed grow) the first `len` flags. `&mut self` means
    /// no scatter is in flight, so plain `get_mut` stores suffice.
    fn prepare(&mut self, len: usize) {
        #[cfg(debug_assertions)]
        {
            for f in self.flags.iter_mut().take(len) {
                *f.get_mut() = false;
            }
            while self.flags.len() < len {
                self.flags.push(crate::sync::AtomicBool::new(false));
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = len;
    }
}

/// A shareable mutable slice for disjoint concurrent writes.
///
/// Safety contract: every index is written by at most one thread. The
/// partitioning code guarantees this by construction — each (chunk, range)
/// pair owns a precomputed, non-overlapping destination window.
pub struct SharedSlice<'a, T> {
    cell: &'a [UnsafeCell<T>],
    /// Debug-build scatter tracker: one "written" flag per slot, so the
    /// disjointness contract is *asserted* under `cfg(debug_assertions)`
    /// instead of merely trusted (two writers on one slot trip it in
    /// whatever order they interleave). Borrowed from a [`ScatterTracker`]
    /// so pooled callers reuse one allocation across scatters.
    #[cfg(debug_assertions)]
    written: &'a [crate::sync::AtomicBool],
}

// SAFETY: the only mutation path is `write`, whose contract (enforced in
// debug builds by the `written` flags) is that each index is written by
// at most one thread and never read during the scatter; `T: Send` makes
// moving the values across threads sound. No `&T` to a cell is ever
// handed out while the scatter runs.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: as above — concurrent `&SharedSlice` use only touches disjoint
// cells, so sharing the wrapper across threads is sound.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap `slice` for a scatter tracked by `tracker`. The tracker stays
    /// mutably borrowed for the slice's lifetime, so one tracker can't be
    /// shared by two concurrent scatters.
    pub fn new(slice: &'a mut [T], tracker: &'a mut ScatterTracker) -> Self {
        tracker.prepare(slice.len());
        #[cfg(debug_assertions)]
        let written = &tracker.flags[..slice.len()];
        // SAFETY: [T] and [UnsafeCell<T>] have identical layout, and the
        // exclusive borrow of `slice` is held by `self` for 'a, so no
        // other access to the underlying memory exists.
        let cell = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self {
            cell,
            #[cfg(debug_assertions)]
            written,
        }
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    ///
    /// The caller must ensure no other thread reads or writes index `i`
    /// during the scatter. Debug builds verify the "at most one writer per
    /// slot" half of the contract (and bounds) at runtime.
    // SAFETY: contract stated in the `# Safety` section above.
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, value: T) {
        #[cfg(debug_assertions)]
        {
            assert!(i < self.cell.len(), "scatter write out of bounds");
            // ORDERING: Relaxed — the flag carries no data, it only has
            // to make two swaps on the same slot observe each other,
            // which a single RMW cell guarantees at any ordering.
            let prior = self.written[i].swap(true, crate::sync::Ordering::Relaxed);
            assert!(!prior, "two scatter writers hit slot {i}: windows overlap");
        }
        // SAFETY: per the caller contract, this thread exclusively owns
        // slot `i` for the duration of the scatter; `cell[i]` bounds-checks.
        *self.cell[i].get() = value;
    }
}

/// Index of the range that `key` falls into, given sorted exclusive upper
/// `boundaries` (range `r` holds keys `< boundaries[r]`, the last range is
/// unbounded). `boundaries.len() + 1` ranges.
#[inline]
fn range_of<K: Ord>(key: &K, boundaries: &[K]) -> usize {
    boundaries.partition_point(|b| b <= key)
}

/// Scatter `src` into `dst` grouped by key range.
///
/// `boundaries` are `T-1` sorted keys splitting the key space into `T`
/// ranges. Returns the `T + 1` offsets of the ranges within `dst`. Order
/// *within* a range preserves `src` order (the scatter is stable), which
/// stage 2's stable sort then preserves through to LocalCC.
pub fn partition_by_ranges<T: Keyed>(
    src: &[T],
    dst: &mut [T],
    boundaries: &[T::Key],
) -> Vec<usize> {
    assert_eq!(src.len(), dst.len());
    assert!(
        boundaries.windows(2).all(|w| w[0] <= w[1]),
        "boundaries must be sorted"
    );
    let ranges = boundaries.len() + 1;
    let chunk_size = src
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);
    let chunks: Vec<&[T]> = src.chunks(chunk_size).collect();

    // Per-chunk histograms.
    let hists: Vec<Vec<usize>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut h = vec![0usize; ranges];
            for t in chunk.iter() {
                h[range_of(&t.key(), boundaries)] += 1;
            }
            h
        })
        .collect();

    // Range totals and exclusive prefix sum -> range offsets.
    let mut range_offsets = vec![0usize; ranges + 1];
    for r in 0..ranges {
        let total: usize = hists.iter().map(|h| h[r]).sum();
        range_offsets[r + 1] = range_offsets[r] + total;
    }

    // Per-(chunk, range) write cursors: chunk c writes range r at
    // range_offsets[r] + sum of hists[c'][r] for c' < c.
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(chunks.len());
    let mut running = range_offsets[..ranges].to_vec();
    for h in &hists {
        cursors.push(running.clone());
        for r in 0..ranges {
            running[r] += h[r];
        }
    }

    let mut tracker = ScatterTracker::new();
    let shared = SharedSlice::new(dst, &mut tracker);
    chunks
        .par_iter()
        .zip(cursors.into_par_iter())
        .for_each(|(chunk, mut cur)| {
            for t in chunk.iter() {
                let r = range_of(&t.key(), boundaries);
                // SAFETY: cursor windows are disjoint by construction.
                unsafe { shared.write(cur[r], *t) };
                cur[r] += 1;
            }
        });

    range_offsets
}

/// Pick `ranges - 1` boundaries that split `data` into roughly equal-count
/// key ranges, from a sample of at most `sample_cap` keys.
///
/// The real pipeline derives boundaries from the m-mer histogram (the
/// `merHist` index); this sampling fallback serves standalone sorting.
pub fn equal_boundaries_by_sample<T: Keyed>(
    data: &[T],
    ranges: usize,
    sample_cap: usize,
) -> Vec<T::Key> {
    assert!(ranges >= 1);
    if ranges == 1 || data.is_empty() {
        return Vec::new();
    }
    let step = (data.len() / sample_cap.max(1)).max(1);
    let mut sample: Vec<T::Key> = data.iter().step_by(step).map(|t| t.key()).collect();
    sample.sort_unstable();
    (1..ranges)
        .map(|r| sample[(r * sample.len()) / ranges])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn range_of_boundaries() {
        let b = vec![10u64, 20, 30];
        assert_eq!(range_of(&5u64, &b), 0);
        assert_eq!(range_of(&10u64, &b), 1); // boundaries are exclusive uppers
        assert_eq!(range_of(&19u64, &b), 1);
        assert_eq!(range_of(&30u64, &b), 3);
        assert_eq!(range_of(&u64::MAX, &b), 3);
    }

    #[test]
    fn partition_groups_and_preserves_order() {
        let src: Vec<u64> = vec![15, 3, 25, 7, 18, 40, 1];
        let mut dst = vec![0u64; src.len()];
        let offs = partition_by_ranges(&src, &mut dst, &[10, 20]);
        assert_eq!(offs, vec![0, 3, 5, 7]);
        assert_eq!(&dst[0..3], &[3, 7, 1]); // stable within range
        assert_eq!(&dst[3..5], &[15, 18]);
        assert_eq!(&dst[5..7], &[25, 40]);
    }

    #[test]
    fn empty_boundaries_is_identity_copy() {
        let src: Vec<u64> = vec![5, 4, 3];
        let mut dst = vec![0u64; 3];
        let offs = partition_by_ranges(&src, &mut dst, &[]);
        assert_eq!(offs, vec![0, 3]);
        assert_eq!(dst, src);
    }

    #[test]
    fn empty_input() {
        let src: Vec<u64> = vec![];
        let mut dst: Vec<u64> = vec![];
        let offs = partition_by_ranges(&src, &mut dst, &[10]);
        assert_eq!(offs, vec![0, 0, 0]);
    }

    #[test]
    fn large_random_partition_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let src: Vec<u64> = (0..100_000).map(|_| rng.gen()).collect();
        let mut dst = vec![0u64; src.len()];
        let boundaries = equal_boundaries_by_sample(&src, 8, 1024);
        let offs = partition_by_ranges(&src, &mut dst, &boundaries);
        // Every element lands in its range.
        for r in 0..8 {
            for &x in &dst[offs[r]..offs[r + 1]] {
                assert_eq!(range_of(&x, &boundaries), r);
            }
        }
        // Multiset preserved.
        let mut a = src.clone();
        let mut b = dst.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn equal_boundaries_balance_counts() {
        let mut rng = SmallRng::seed_from_u64(8);
        let src: Vec<u64> = (0..50_000).map(|_| rng.gen()).collect();
        let boundaries = equal_boundaries_by_sample(&src, 4, 4096);
        let mut counts = [0usize; 4];
        for x in &src {
            counts[range_of(x, &boundaries)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / src.len() as f64;
            assert!((frac - 0.25).abs() < 0.05, "counts={counts:?}");
        }
    }

    #[test]
    fn boundaries_for_single_range_are_empty() {
        let src: Vec<u64> = vec![1, 2, 3];
        assert!(equal_boundaries_by_sample(&src, 1, 10).is_empty());
    }

    #[test]
    #[should_panic]
    fn unsorted_boundaries_rejected() {
        let src: Vec<u64> = vec![1];
        let mut dst = vec![0u64];
        partition_by_ranges(&src, &mut dst, &[20, 10]);
    }

    proptest! {
        #[test]
        fn prop_partition_then_concat_sorted_ranges_equals_sort(
            src in proptest::collection::vec(any::<u64>(), 0..2000),
            nb in 0usize..6,
        ) {
            let boundaries = equal_boundaries_by_sample(&src, nb + 1, 256);
            let mut dst = vec![0u64; src.len()];
            let offs = partition_by_ranges(&src, &mut dst, &boundaries);
            let mut rebuilt = Vec::new();
            for r in 0..offs.len() - 1 {
                let mut part = dst[offs[r]..offs[r + 1]].to_vec();
                part.sort_unstable();
                rebuilt.extend(part);
            }
            let mut want = src;
            want.sort_unstable();
            prop_assert_eq!(rebuilt, want);
        }
    }
}
