//! Serial out-of-place LSB radix sort with configurable digit width.

use metaprep_kmer::{KmerReadTuple, KmerReadTuple128};

/// Unsigned key types the radix sort can digest.
///
/// The bitwise bounds let the fused scatter accumulate a per-sub-range
/// *varying-bits mask* (`OR(keys) ^ AND(keys)`: a bit is set iff it is 1
/// in some key and 0 in another) that the pruned radix sort consults to
/// skip identity passes without a counting scan.
pub trait SortKey:
    Copy
    + Ord
    + Send
    + Sync
    + std::ops::BitXor<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitAnd<Output = Self>
    + 'static
{
    /// Key width in bits.
    const BITS: u32;
    /// The all-zero key (identity for the `OR` accumulator).
    const ZERO: Self;
    /// The all-ones key (identity for the `AND` accumulator).
    const ONES: Self;
    /// Extract `(self >> shift) & mask` as a bucket index.
    fn digit(self, shift: u32, mask: u64) -> usize;
}

impl SortKey for u32 {
    const BITS: u32 = 32;
    const ZERO: u32 = 0;
    const ONES: u32 = u32::MAX;
    #[inline(always)]
    fn digit(self, shift: u32, mask: u64) -> usize {
        ((self as u64 >> shift) & mask) as usize
    }
}

impl SortKey for u64 {
    const BITS: u32 = 64;
    const ZERO: u64 = 0;
    const ONES: u64 = u64::MAX;
    #[inline(always)]
    fn digit(self, shift: u32, mask: u64) -> usize {
        ((self >> shift) & mask) as usize
    }
}

impl SortKey for u128 {
    const BITS: u32 = 128;
    const ZERO: u128 = 0;
    const ONES: u128 = u128::MAX;
    #[inline(always)]
    fn digit(self, shift: u32, mask: u64) -> usize {
        ((self >> shift) as u64 & mask) as usize
    }
}

/// Records sortable by an embedded key.
pub trait Keyed: Copy + Send + Sync + 'static {
    /// The sort key type.
    type Key: SortKey;
    /// Extract the key.
    fn key(&self) -> Self::Key;
}

impl Keyed for u32 {
    type Key = u32;
    #[inline(always)]
    fn key(&self) -> u32 {
        *self
    }
}

impl Keyed for u64 {
    type Key = u64;
    #[inline(always)]
    fn key(&self) -> u64 {
        *self
    }
}

impl Keyed for u128 {
    type Key = u128;
    #[inline(always)]
    fn key(&self) -> u128 {
        *self
    }
}

impl Keyed for KmerReadTuple {
    type Key = u64;
    #[inline(always)]
    fn key(&self) -> u64 {
        self.kmer
    }
}

impl Keyed for KmerReadTuple128 {
    type Key = u128;
    #[inline(always)]
    fn key(&self) -> u128 {
        self.kmer
    }
}

impl<K: SortKey, V: Copy + Send + Sync + 'static> Keyed for (K, V) {
    type Key = K;
    #[inline(always)]
    fn key(&self) -> K {
        self.0
    }
}

/// Serial, stable, out-of-place LSB radix sort.
///
/// * `bits` — digit width per pass (the paper uses 8; the ablation bench
///   sweeps 8/11/16). Must be in `1..=16`.
/// * `key_bits` — number of *meaningful* low bits in the key; passes above
///   this are skipped. For `k`-mers this is `2k`, so sorting 27-mers takes
///   `ceil(54 / 8) = 7` passes rather than 8 (pass `2k..64` would be all
///   zeros). Pass `K::Key::BITS` to force full-width behaviour.
/// * `scratch` — same length as `data`; used for ping-pong copies.
///
/// The result always ends in `data`. Stability preserves the relative order
/// of tuples with equal k-mers, which LocalCC exploits (the first read of a
/// group is the union anchor).
///
/// ```
/// use metaprep_sort::lsb_radix_sort;
///
/// let mut data: Vec<u64> = vec![9, 2, 7, 2, 0];
/// let mut scratch = vec![0u64; data.len()];
/// lsb_radix_sort(&mut data, &mut scratch, 8, 64);
/// assert_eq!(data, vec![0, 2, 2, 7, 9]);
/// ```
pub fn lsb_radix_sort<T: Keyed>(data: &mut [T], scratch: &mut [T], bits: u32, key_bits: u32) {
    assert!((1..=16).contains(&bits), "digit width {bits} not in 1..=16");
    assert!(key_bits <= T::Key::BITS);
    assert_eq!(data.len(), scratch.len());
    if data.len() <= 1 {
        return;
    }

    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;
    let passes = key_bits.div_ceil(bits);

    // Ping-pong between data and scratch; `src_is_data` tracks parity.
    let mut src_is_data = true;
    let mut counts = vec![0usize; buckets];
    for p in 0..passes {
        let shift = p * bits;
        let (src, dst): (&mut [T], &mut [T]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };

        counts.iter_mut().for_each(|c| *c = 0);
        for t in src.iter() {
            counts[t.key().digit(shift, mask)] += 1;
        }
        // Skip passes where every key shares one digit (all elements land
        // in one bucket): the permutation would be the identity.
        if counts.contains(&src.len()) {
            continue;
        }
        // Exclusive prefix sum -> write cursors.
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let x = *c;
            *c = sum;
            sum += x;
        }
        for t in src.iter() {
            let d = t.key().digit(shift, mask);
            dst[counts[d]] = *t;
            counts[d] += 1;
        }
        src_is_data = !src_is_data;
    }

    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// How much work a (pruned) radix sort actually did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RadixStats {
    /// Counting + scatter passes executed.
    pub passes_run: u64,
    /// Passes skipped because the digit window held no varying key bits.
    pub passes_pruned: u64,
}

impl RadixStats {
    /// Combine two per-sub-range stats (e.g. across a parallel reduce).
    pub fn merged(self, other: RadixStats) -> RadixStats {
        RadixStats {
            passes_run: self.passes_run + other.passes_run,
            passes_pruned: self.passes_pruned + other.passes_pruned,
        }
    }
}

/// [`lsb_radix_sort`] with pass pruning driven by a precomputed
/// *varying-bits mask* instead of a per-pass counting scan.
///
/// `varying` must have a bit set wherever any two keys in `data` differ —
/// the fused scatter accumulates it as `OR(key ^ reference)` while it
/// histograms, so it arrives here for free. A digit window with no varying
/// bits means every key shares that digit, the pass permutation would be
/// the identity, and the pass is skipped *without* the full counting scan
/// [`lsb_radix_sort`] pays to discover the same thing. Sub-ranges span
/// narrow key windows in deep `S·P·T` configurations, so this typically
/// cuts 7 passes (54-bit k-mer keys, 8-bit digits) down to 2–3.
///
/// Skipped passes are exactly the passes the unpruned sort's counting
/// heuristic skips (a constant digit ⇔ one occupied bucket), and a stable
/// sort's output is unique, so the result is byte-identical to
/// [`lsb_radix_sort`] — including the ping-pong parity, hence the same
/// number of copies. Overstating `varying` (extra bits set) only costs an
/// identity pass; understating it breaks sorting, so don't.
pub fn lsb_radix_sort_pruned<T: Keyed>(
    data: &mut [T],
    scratch: &mut [T],
    bits: u32,
    key_bits: u32,
    varying: T::Key,
) -> RadixStats {
    assert!((1..=16).contains(&bits), "digit width {bits} not in 1..=16");
    assert!(key_bits <= T::Key::BITS);
    assert_eq!(data.len(), scratch.len());
    let mut stats = RadixStats::default();
    if data.len() <= 1 {
        return stats;
    }

    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;
    let passes = key_bits.div_ceil(bits);

    let mut src_is_data = true;
    let mut counts = vec![0usize; buckets];
    for p in 0..passes {
        let shift = p * bits;
        // No varying key bit in this digit window: every element would
        // land in the single occupied bucket, i.e. the identity pass the
        // unpruned sort pays a full counting scan to detect.
        if varying.digit(shift, mask) == 0 {
            stats.passes_pruned += 1;
            continue;
        }
        stats.passes_run += 1;
        let (src, dst): (&mut [T], &mut [T]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };

        counts.iter_mut().for_each(|c| *c = 0);
        for t in src.iter() {
            counts[t.key().digit(shift, mask)] += 1;
        }
        // Exclusive prefix sum -> write cursors.
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let x = *c;
            *c = sum;
            sum += x;
        }
        for t in src.iter() {
            let d = t.key().digit(shift, mask);
            dst[counts[d]] = *t;
            counts[d] += 1;
        }
        src_is_data = !src_is_data;
    }

    if !src_is_data {
        data.copy_from_slice(scratch);
    }
    stats
}

/// True if `data` is non-decreasing by key.
pub fn is_sorted_by_key<T: Keyed>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0].key() <= w[1].key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_kmer::KmerReadTuple;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sort_u64(mut v: Vec<u64>, bits: u32) -> Vec<u64> {
        let mut scratch = vec![0u64; v.len()];
        lsb_radix_sort(&mut v, &mut scratch, bits, 64);
        v
    }

    #[test]
    fn sorts_small_vectors() {
        assert_eq!(sort_u64(vec![3, 1, 2], 8), vec![1, 2, 3]);
        assert_eq!(sort_u64(vec![], 8), Vec::<u64>::new());
        assert_eq!(sort_u64(vec![5], 8), vec![5]);
        assert_eq!(sort_u64(vec![2, 2, 2], 8), vec![2, 2, 2]);
    }

    #[test]
    fn sorts_random_u64s_all_digit_widths() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v: Vec<u64> = (0..10_000).map(|_| rng.gen()).collect();
        let mut want = v.clone();
        want.sort_unstable();
        for bits in [1, 4, 8, 11, 16] {
            assert_eq!(sort_u64(v.clone(), bits), want, "bits={bits}");
        }
    }

    #[test]
    fn key_bits_skips_high_passes_correctly() {
        // 54-bit keys (27-mers): sorting with key_bits = 54 must equal
        // sorting with key_bits = 64.
        let mut rng = SmallRng::seed_from_u64(2);
        let v: Vec<u64> = (0..5_000).map(|_| rng.gen::<u64>() >> 10).collect();
        let mut a = v.clone();
        let mut s = vec![0u64; v.len()];
        lsb_radix_sort(&mut a, &mut s, 8, 54);
        let mut want = v;
        want.sort_unstable();
        assert_eq!(a, want);
    }

    #[test]
    fn tuple_sort_is_stable() {
        // Equal keys keep their original (read id) order.
        let mut v: Vec<KmerReadTuple> = vec![
            KmerReadTuple::new(7, 0),
            KmerReadTuple::new(3, 1),
            KmerReadTuple::new(7, 2),
            KmerReadTuple::new(3, 3),
            KmerReadTuple::new(7, 4),
        ];
        let mut s = vec![KmerReadTuple::default(); v.len()];
        lsb_radix_sort(&mut v, &mut s, 8, 64);
        let reads: Vec<u32> = v.iter().map(|t| t.read).collect();
        assert_eq!(reads, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn u128_keys_sort() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u128> = (0..3_000)
            .map(|_| (rng.gen::<u64>() as u128) << 62 | rng.gen::<u64>() as u128)
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        let mut s = vec![0u128; v.len()];
        lsb_radix_sort(&mut v, &mut s, 8, 126);
        assert_eq!(v, want);
    }

    #[test]
    fn already_sorted_and_reverse_sorted() {
        let asc: Vec<u64> = (0..1000).collect();
        let desc: Vec<u64> = (0..1000).rev().collect();
        assert_eq!(sort_u64(asc.clone(), 8), asc);
        assert_eq!(sort_u64(desc, 8), asc);
    }

    #[test]
    fn all_equal_keys_skip_every_pass() {
        let v = vec![42u64; 512];
        assert_eq!(sort_u64(v.clone(), 8), v);
    }

    #[test]
    fn is_sorted_by_key_works() {
        assert!(is_sorted_by_key(&[1u64, 2, 2, 3]));
        assert!(!is_sorted_by_key(&[2u64, 1]));
        assert!(is_sorted_by_key::<u64>(&[]));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bits() {
        let mut v = vec![1u64];
        let mut s = vec![0u64];
        lsb_radix_sort(&mut v, &mut s, 0, 64);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_scratch() {
        let mut v = vec![1u64, 2];
        let mut s = vec![0u64];
        lsb_radix_sort(&mut v, &mut s, 8, 64);
    }

    proptest! {
        #[test]
        fn prop_matches_std_sort(
            v in proptest::collection::vec(any::<u64>(), 0..2000),
            bits in 1u32..=16,
        ) {
            let mut want = v.clone();
            want.sort_unstable();
            prop_assert_eq!(sort_u64(v, bits), want);
        }

        #[test]
        fn prop_stability(
            keys in proptest::collection::vec(0u64..16, 0..500),
        ) {
            let v: Vec<KmerReadTuple> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| KmerReadTuple::new(k, i as u32))
                .collect();
            let mut a = v.clone();
            let mut s = vec![KmerReadTuple::default(); v.len()];
            lsb_radix_sort(&mut a, &mut s, 8, 64);
            let mut want = v;
            want.sort_by_key(|t| (t.kmer, t.read)); // stable by construction
            prop_assert_eq!(a, want);
        }
    }
}
