//! Radix sorts for k-mer tuples (LocalSort, paper §3.4).
//!
//! METAPREP sorts `(k-mer, read id)` tuples with the k-mer as key in two
//! stages:
//!
//! 1. **Parallel partitioning** — tuples are scattered into `T` disjoint
//!    k-mer sub-ranges so each can be sorted concurrently
//!    ([`partition::partition_by_ranges`]);
//! 2. **Serial radix sort** — each sub-range is sorted by a serial
//!    out-of-place LSB radix sort, 8 bits per pass; the paper found 8-bit
//!    digits faster than 16-bit because 256 bucket counters stay resident
//!    in L1 ([`radix::lsb_radix_sort`] — digit width is a parameter here so
//!    the ablation bench can reproduce that finding).
//!
//! [`parallel::parallel_lsb_sort`] is the fully-parallel stable LSB radix
//! sort standing in for the NUMA-aware sort of Polychroniou & Ross that the
//! paper benchmarks against (§4.2.2).
//!
//! The pipeline itself uses the **fused receive-side path**
//! ([`fused::fused_local_sort`]): the per-sender all-to-all buffers are
//! scattered straight into the final partitioned buffer (no concat copy),
//! and each sub-range is sorted with [`radix::lsb_radix_sort_pruned`],
//! which skips identity passes via a varying-bits mask accumulated during
//! the scatter — byte-identical output to the two-stage path above.

pub mod fused;
pub mod parallel;
pub mod partition;
pub mod radix;
pub mod sync;

pub use fused::{
    fused_local_sort, scatter_from_parts, BoundaryTable, FusedSortResult, PassBuffers,
    ScatterResult,
};
pub use parallel::{local_sort, local_sort_with_boundaries, parallel_lsb_sort};
pub use partition::{equal_boundaries_by_sample, partition_by_ranges, ScatterTracker, SharedSlice};
pub use radix::{
    is_sorted_by_key, lsb_radix_sort, lsb_radix_sort_pruned, Keyed, RadixStats, SortKey,
};
