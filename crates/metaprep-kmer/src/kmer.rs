//! Packed k-mer values with rolling updates.
//!
//! [`Kmer64`] packs up to 32 bases into a `u64`; [`Kmer128`] packs up to 63
//! bases into a `u128` (the paper's extension for `k` up to 63, §4.4).
//! Packing is MSB-first within the low `2k` bits: the *first* base of the
//! string occupies the highest bit pair, so `packed(a) < packed(b)` iff
//! string `a < b` lexicographically for equal `k`.
//!
//! Both types support O(1) rolling: [`Kmer::roll`] appends one base to the
//! forward strand while simultaneously updating the reverse complement, which
//! is how the KmerGen step enumerates all `l - k + 1` windows of a read in
//! O(l) total work.

use crate::alphabet::complement_code;

/// Abstraction over the two packed k-mer widths.
///
/// The pipeline is generic over this trait so every step (enumeration,
/// histogramming, sorting, connectivity) works identically for `k <= 32`
/// (12-byte tuples) and `k <= 63` (the paper's 20-byte tuples).
///
/// ```
/// use metaprep_kmer::{Kmer, Kmer64};
///
/// // Build GATT, roll in an A: window becomes ATTA.
/// let mut km = Kmer64::from_codes(&[2, 0, 3, 3]); // G A T T
/// km.roll(0);                                     // push A
/// assert_eq!(km.to_ascii(), b"ATTA");
/// // Canonical = min(fwd, revcomp): ATTA vs TAAT -> ATTA.
/// assert_eq!(km.canonical_value(), km.value());
/// ```
pub trait Kmer: Copy + Clone + Eq + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Unsigned integer type holding the packed value.
    type Repr: Copy + Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static;

    /// Largest supported `k` for this width.
    const MAX_K: usize;

    /// Construct the all-zero (`AAA...A`) k-mer of length `k`.
    fn zero(k: usize) -> Self;

    /// k-mer length in bases.
    fn k(&self) -> usize;

    /// Packed forward-strand value (low `2k` bits, MSB-first).
    fn value(&self) -> Self::Repr;

    /// Packed reverse-complement value.
    fn rc_value(&self) -> Self::Repr;

    /// Packed canonical value: `min(value, rc_value)`.
    fn canonical_value(&self) -> Self::Repr {
        std::cmp::min(self.value(), self.rc_value())
    }

    /// Append base code `c` (0..4) on the right, dropping the leftmost base.
    /// Updates forward and reverse-complement strands in O(1).
    fn roll(&mut self, c: u8);

    /// Build a k-mer from exactly `k` base codes.
    fn from_codes(codes: &[u8]) -> Self;

    /// Build a k-mer of length `k` from a packed forward value.
    fn from_value(k: usize, v: Self::Repr) -> Self;

    /// The same physical k-mer viewed from the opposite strand (forward and
    /// reverse-complement values swapped). Walking right on `flipped()`
    /// walks left on the original — how the assembler extends unitigs in
    /// both directions with one routine.
    fn flipped(&self) -> Self;

    /// Decode the forward strand into an ASCII string.
    fn to_ascii(&self) -> Vec<u8>;

    /// Convert the packed representation to `u128` for width-agnostic math
    /// (range planning, m-mer binning).
    fn repr_to_u128(v: Self::Repr) -> u128;

    /// m-mer prefix bin of the *packed value* `v`: its top `2m` bits within
    /// the `2k`-bit field. This is the histogram bin used by `merHist` and
    /// `FASTQPart` (paper §3.1.1).
    fn prefix_bin(&self, v: Self::Repr, m: usize) -> u32 {
        debug_assert!(m <= self.k());
        (Self::repr_to_u128(v) >> (2 * (self.k() - m))) as u32
    }
}

/// k-mer packed into a `u64`; supports `k <= 32`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Kmer64 {
    fwd: u64,
    rc: u64,
    k: u32,
}

/// k-mer packed into a `u128`; supports `k <= 63`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Kmer128 {
    fwd: u128,
    rc: u128,
    k: u32,
}

macro_rules! impl_kmer {
    ($name:ident, $repr:ty, $max_k:expr) => {
        impl $name {
            /// Mask selecting the low `2k` bits.
            #[inline(always)]
            fn mask(k: u32) -> $repr {
                if k as usize == $max_k && 2 * $max_k == <$repr>::BITS as usize {
                    <$repr>::MAX
                } else {
                    (1 as $repr << (2 * k)) - 1
                }
            }
        }

        impl Kmer for $name {
            type Repr = $repr;
            const MAX_K: usize = $max_k;

            #[inline]
            fn zero(k: usize) -> Self {
                assert!((1..=Self::MAX_K).contains(&k), "k={k} out of range");
                // `AA..A` reverse-complements to `TT..T`.
                Self {
                    fwd: 0,
                    rc: Self::mask(k as u32),
                    k: k as u32,
                }
            }

            #[inline(always)]
            fn k(&self) -> usize {
                self.k as usize
            }

            #[inline(always)]
            fn value(&self) -> $repr {
                self.fwd
            }

            #[inline(always)]
            fn rc_value(&self) -> $repr {
                self.rc
            }

            #[inline(always)]
            fn roll(&mut self, c: u8) {
                debug_assert!(c < 4);
                let k = self.k;
                self.fwd = ((self.fwd << 2) | c as $repr) & Self::mask(k);
                self.rc = (self.rc >> 2)
                    | ((complement_code(c) as $repr) << (2 * (k - 1)));
            }

            fn from_codes(codes: &[u8]) -> Self {
                let mut km = Self::zero(codes.len());
                // Rolling `k` times through a zero k-mer leaves exactly the
                // pushed codes in the window, and keeps `rc` consistent.
                for &c in codes {
                    km.roll(c);
                }
                km
            }

            fn from_value(k: usize, v: $repr) -> Self {
                let mut km = Self::zero(k);
                for i in (0..k).rev() {
                    km.roll(((v >> (2 * i)) & 3) as u8);
                }
                km
            }

            #[inline]
            fn flipped(&self) -> Self {
                Self {
                    fwd: self.rc,
                    rc: self.fwd,
                    k: self.k,
                }
            }

            fn to_ascii(&self) -> Vec<u8> {
                let k = self.k as usize;
                (0..k)
                    .map(|i| {
                        let shift = 2 * (k - 1 - i);
                        crate::alphabet::decode_base(((self.fwd >> shift) & 3) as u8)
                    })
                    .collect()
            }

            #[inline(always)]
            fn repr_to_u128(v: $repr) -> u128 {
                v as u128
            }
        }
    };
}

impl_kmer!(Kmer64, u64, 32);
impl_kmer!(Kmer128, u128, 63);

/// Fold a packed k-mer value into the `u64` key space of the count-min
/// presolve sketch.
///
/// For `k <= 32` the packed value already fits in 64 bits and is returned
/// unchanged — distinct k-mers stay distinct, so the only estimation error
/// is the sketch's own. For wider k-mers the high word is passed through a
/// SplitMix64 finalizer before xoring with the low word, so k-mers that
/// share a 32-base suffix (identical low words) or differ only in word
/// order still land on well-spread keys. Folding 126 bits into 64 can
/// collide, but a collision only ever *raises* an estimate — the filter's
/// no-false-negative guarantee is unaffected.
#[inline]
pub fn fold_kmer_key(v: u128) -> u64 {
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    if hi == 0 {
        return lo;
    }
    let mut z = hi.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) ^ lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{encode_base, reverse_complement_ascii};
    use proptest::prelude::*;

    fn codes(s: &[u8]) -> Vec<u8> {
        s.iter().map(|&b| encode_base(b)).collect()
    }

    fn pack_naive(s: &[u8]) -> u128 {
        s.iter()
            .fold(0u128, |acc, &b| (acc << 2) | encode_base(b) as u128)
    }

    #[test]
    fn from_codes_packs_msb_first() {
        let km = Kmer64::from_codes(&codes(b"ACGT"));
        // A=00 C=01 G=10 T=11 -> 0b00011011
        assert_eq!(km.value(), 0b0001_1011);
    }

    #[test]
    fn to_ascii_roundtrips() {
        for s in [&b"ACGT"[..], b"TTTT", b"GATTACA", b"A", b"CCCCCCCCCCCCCCCC"] {
            let km = Kmer64::from_codes(&codes(s));
            assert_eq!(km.to_ascii(), s.to_ascii_uppercase());
        }
    }

    #[test]
    fn rc_value_matches_string_reverse_complement() {
        for s in [&b"ACGT"[..], b"AAAA", b"GATTACA", b"TGCATGCA"] {
            let km = Kmer64::from_codes(&codes(s));
            let rc = reverse_complement_ascii(s);
            assert_eq!(km.rc_value() as u128, pack_naive(&rc));
        }
    }

    #[test]
    fn canonical_is_min_of_strands() {
        // GGG < CCC is false (C=01 < G=10), so canonical of CCC is CCC,
        // canonical of GGG is CCC (its RC).
        let ccc = Kmer64::from_codes(&codes(b"CCC"));
        let ggg = Kmer64::from_codes(&codes(b"GGG"));
        assert_eq!(ccc.canonical_value(), ccc.value());
        assert_eq!(ggg.canonical_value(), ggg.rc_value());
        assert_eq!(ccc.canonical_value(), ggg.canonical_value());
    }

    #[test]
    fn roll_slides_the_window() {
        let s = b"ACGTACGTT";
        let k = 4;
        let mut km = Kmer64::from_codes(&codes(&s[..k]));
        for i in k..s.len() {
            km.roll(encode_base(s[i]));
            let want = Kmer64::from_codes(&codes(&s[i + 1 - k..=i]));
            assert_eq!(km.value(), want.value(), "window at {i}");
            assert_eq!(km.rc_value(), want.rc_value(), "rc window at {i}");
        }
    }

    #[test]
    fn max_k_masks_do_not_overflow() {
        // k = 32 for Kmer64 uses the full 64 bits.
        let s: Vec<u8> = std::iter::repeat_n(b'T', 32).collect();
        let km = Kmer64::from_codes(&codes(&s));
        assert_eq!(km.value(), u64::MAX);
        assert_eq!(km.rc_value(), 0); // RC of T^32 is A^32

        // k = 63 for Kmer128 uses 126 of the 128 bits.
        let s: Vec<u8> = std::iter::repeat_n(b'T', 63).collect();
        let km = Kmer128::from_codes(&codes(&s));
        assert_eq!(km.value(), (1u128 << 126) - 1);
        assert_eq!(km.rc_value(), 0);
    }

    #[test]
    fn from_value_reconstructs_both_strands() {
        for s in [&b"ACGT"[..], b"GATTACA", b"TTTT"] {
            let km = Kmer64::from_codes(&codes(s));
            let re = Kmer64::from_value(s.len(), km.value());
            assert_eq!(re.value(), km.value());
            assert_eq!(re.rc_value(), km.rc_value());
        }
    }

    #[test]
    fn flipped_swaps_strands() {
        let km = Kmer64::from_codes(&codes(b"GATTACA"));
        let f = km.flipped();
        assert_eq!(f.value(), km.rc_value());
        assert_eq!(f.rc_value(), km.value());
        assert_eq!(f.flipped().value(), km.value());
        assert_eq!(f.canonical_value(), km.canonical_value());
    }

    #[test]
    fn prefix_bin_extracts_top_bits() {
        let km = Kmer64::from_codes(&codes(b"ACGTACGT"));
        // m = 2 -> top 4 bits = AC = 0b0001
        assert_eq!(km.prefix_bin(km.value(), 2), 0b0001);
        // m = k -> whole value
        assert_eq!(km.prefix_bin(km.value(), 8), km.value() as u32);
    }

    #[test]
    fn fold_kmer_key_is_identity_for_narrow_kmers() {
        for s in [&b"ACGT"[..], b"GATTACA", b"TTTT"] {
            let km = Kmer64::from_codes(&codes(s));
            assert_eq!(fold_kmer_key(km.value() as u128), km.value());
        }
        // Any value fitting 64 bits folds to itself.
        assert_eq!(fold_kmer_key(u64::MAX as u128), u64::MAX);
    }

    #[test]
    fn fold_kmer_key_separates_shared_suffixes() {
        // Wide k-mers sharing their entire low word must not fold to the
        // same key just because only high-word bits differ.
        let lo = 0x0123_4567_89AB_CDEFu128;
        let a = fold_kmer_key((1u128 << 64) | lo);
        let b = fold_kmer_key((2u128 << 64) | lo);
        let c = fold_kmer_key(lo);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic]
    fn zero_rejects_k_too_large() {
        let _ = Kmer64::zero(33);
    }

    #[test]
    #[should_panic]
    fn zero_rejects_k_zero() {
        let _ = Kmer64::zero(0);
    }

    proptest! {
        #[test]
        fn prop_order_matches_lexicographic(
            a in proptest::collection::vec(0u8..4, 10),
            b in proptest::collection::vec(0u8..4, 10),
        ) {
            let ka = Kmer64::from_codes(&a);
            let kb = Kmer64::from_codes(&b);
            prop_assert_eq!(ka.value() < kb.value(), a < b);
        }

        #[test]
        fn prop_rc_is_involution(s in proptest::collection::vec(0u8..4, 1..32)) {
            let km = Kmer64::from_codes(&s);
            // Build k-mer of the RC string and check it flips strands.
            let rc_codes: Vec<u8> =
                s.iter().rev().map(|&c| complement_code(c)).collect();
            let rkm = Kmer64::from_codes(&rc_codes);
            prop_assert_eq!(rkm.value(), km.rc_value());
            prop_assert_eq!(rkm.rc_value(), km.value());
            prop_assert_eq!(rkm.canonical_value(), km.canonical_value());
        }

        #[test]
        fn prop_kmer128_agrees_with_kmer64(s in proptest::collection::vec(0u8..4, 1..32)) {
            let k64 = Kmer64::from_codes(&s);
            let k128 = Kmer128::from_codes(&s);
            prop_assert_eq!(k64.value() as u128, k128.value());
            prop_assert_eq!(k64.rc_value() as u128, k128.rc_value());
            prop_assert_eq!(k64.canonical_value() as u128, k128.canonical_value());
        }

        #[test]
        fn prop_roll_equals_rebuild(
            s in proptest::collection::vec(0u8..4, 8..40),
            k in 2usize..8,
        ) {
            let mut km = Kmer64::from_codes(&s[..k]);
            for &code in &s[k..] {
                km.roll(code);
            }
            let want = Kmer64::from_codes(&s[s.len() - k..]);
            prop_assert_eq!(km.value(), want.value());
            prop_assert_eq!(km.rc_value(), want.rc_value());
        }
    }
}
