//! 2-bit DNA alphabet encoding.
//!
//! Bases map to codes `A=0, C=1, G=2, T=3` so that the integer order of
//! packed k-mers equals lexicographic order of the base strings, and the
//! complement of a code is its bitwise NOT in 2 bits (`c ^ 3`).

/// Code returned by [`encode_base_checked`] for bytes that are not
/// `A/C/G/T` (any case). `N` and every other byte are invalid: METAPREP
/// never enumerates k-mers containing them.
pub const INVALID_CODE: u8 = 0xFF;

/// Lookup table mapping ASCII bytes to 2-bit codes (or [`INVALID_CODE`]).
static ENCODE: [u8; 256] = {
    let mut t = [INVALID_CODE; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t
};

/// Encode an ASCII base into its 2-bit code.
///
/// # Panics
/// Panics in debug builds if `b` is not one of `ACGTacgt`; in release
/// builds the result for invalid bytes is unspecified garbage. Use
/// [`encode_base_checked`] when the input may contain `N`.
#[inline(always)]
pub fn encode_base(b: u8) -> u8 {
    let c = ENCODE[b as usize];
    debug_assert!(c != INVALID_CODE, "invalid base byte {b:#x}");
    c & 3
}

/// Encode an ASCII base, returning `None` for anything that is not
/// `A/C/G/T` in either case (including `N`).
#[inline(always)]
pub fn encode_base_checked(b: u8) -> Option<u8> {
    let c = ENCODE[b as usize];
    if c == INVALID_CODE {
        None
    } else {
        Some(c)
    }
}

/// True if the byte is an unambiguous DNA base (`ACGT`, any case).
#[inline(always)]
pub fn is_valid_base(b: u8) -> bool {
    ENCODE[b as usize] != INVALID_CODE
}

/// Encode an ASCII base into its 2-bit code, or [`INVALID_CODE`] for any
/// byte outside `ACGTacgt` — the raw table lookup without the `Option`
/// wrapper. This is the scalar reference for the vectorized
/// classify-and-encode kernels in [`crate::simd`]: a code buffer produced
/// by any backend is byte-identical to mapping this function over the
/// input.
#[inline(always)]
pub fn classify_base(b: u8) -> u8 {
    ENCODE[b as usize]
}

/// Complement of a 2-bit base code (`A<->T`, `C<->G`).
#[inline(always)]
pub fn complement_code(c: u8) -> u8 {
    debug_assert!(c < 4);
    c ^ 3
}

/// Decode a 2-bit code back to an upper-case ASCII base.
#[inline(always)]
pub fn decode_base(c: u8) -> u8 {
    debug_assert!(c < 4);
    b"ACGT"[(c & 3) as usize]
}

/// Reverse-complement an ASCII sequence into a fresh `Vec`.
///
/// Bytes outside `ACGTacgt` are mapped to `N`; this mirrors how sequencing
/// toolchains treat ambiguity codes and keeps the operation total.
pub fn reverse_complement_ascii(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| match encode_base_checked(b) {
            Some(c) => decode_base(complement_code(c)),
            None => b'N',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_maps_acgt_in_order() {
        assert_eq!(encode_base(b'A'), 0);
        assert_eq!(encode_base(b'C'), 1);
        assert_eq!(encode_base(b'G'), 2);
        assert_eq!(encode_base(b'T'), 3);
    }

    #[test]
    fn encode_is_case_insensitive() {
        for (lo, up) in [(b'a', b'A'), (b'c', b'C'), (b'g', b'G'), (b't', b'T')] {
            assert_eq!(encode_base(lo), encode_base(up));
        }
    }

    #[test]
    fn checked_encode_rejects_n_and_others() {
        assert_eq!(encode_base_checked(b'N'), None);
        assert_eq!(encode_base_checked(b'n'), None);
        assert_eq!(encode_base_checked(b'.'), None);
        assert_eq!(encode_base_checked(0), None);
        assert_eq!(encode_base_checked(b'U'), None);
    }

    #[test]
    fn is_valid_base_matches_checked_encode() {
        for b in 0..=255u8 {
            assert_eq!(is_valid_base(b), encode_base_checked(b).is_some());
        }
    }

    #[test]
    fn complement_is_an_involution() {
        for c in 0..4u8 {
            assert_eq!(complement_code(complement_code(c)), c);
        }
        assert_eq!(complement_code(encode_base(b'A')), encode_base(b'T'));
        assert_eq!(complement_code(encode_base(b'C')), encode_base(b'G'));
    }

    #[test]
    fn decode_roundtrips() {
        for b in [b'A', b'C', b'G', b'T'] {
            assert_eq!(decode_base(encode_base(b)), b);
        }
    }

    #[test]
    fn reverse_complement_ascii_basic() {
        assert_eq!(reverse_complement_ascii(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(reverse_complement_ascii(b"AACC"), b"GGTT".to_vec());
        assert_eq!(reverse_complement_ascii(b"ANT"), b"ANT".to_vec());
    }

    #[test]
    fn reverse_complement_ascii_is_involution_on_valid() {
        let s = b"ACGTACGTTTGGCCAA";
        assert_eq!(
            reverse_complement_ascii(&reverse_complement_ascii(s)),
            s.to_vec()
        );
    }
}
