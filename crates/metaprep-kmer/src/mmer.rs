//! m-mer prefix binning.
//!
//! The `merHist` and `FASTQPart` index tables (paper §3.1) bin canonical
//! k-mers by their length-`m` prefix (`m < k`; the paper uses `m = 10`).
//! Because packed k-mers are MSB-first, the prefix bin is simply the top
//! `2m` bits of the packed value, and bin order equals k-mer value order —
//! the property that lets bins partition the k-mer *range* for passes,
//! tasks, and threads.

/// A configured m-mer space: bin extraction for a fixed `(k, m)` pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MmerSpace {
    k: usize,
    m: usize,
}

impl MmerSpace {
    /// Create the space. Requires `1 <= m <= k` and `4^m` to fit in `u32`
    /// bin indices (`m <= 16`).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= k, "require 1 <= m <= k (m={m}, k={k})");
        assert!(m <= 16, "m-mer bins must fit u32 (m={m})");
        Self { k, m }
    }

    /// k-mer length this space was configured for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// m-mer prefix length.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of histogram bins, `4^m`.
    #[inline]
    pub fn bins(&self) -> usize {
        1usize << (2 * self.m)
    }

    /// Bin of a packed canonical k-mer value (given as `u128` so both k-mer
    /// widths share one code path).
    #[inline(always)]
    pub fn bin_of(&self, packed: u128) -> u32 {
        (packed >> (2 * (self.k - self.m))) as u32
    }

    /// Smallest packed k-mer value whose bin is `bin` (inclusive lower
    /// boundary of the bin's k-mer sub-range).
    #[inline]
    pub fn bin_lower_bound(&self, bin: u32) -> u128 {
        (bin as u128) << (2 * (self.k - self.m))
    }

    /// One past the largest packed value in `bin` (exclusive upper
    /// boundary). For the last bin this is `4^k`.
    #[inline]
    pub fn bin_upper_bound(&self, bin: u32) -> u128 {
        self.bin_lower_bound(bin + 1)
    }
}

/// Convenience: bin of `packed` under `(k, m)` without constructing a space.
#[inline]
pub fn mmer_bin(packed: u128, k: usize, m: usize) -> u32 {
    MmerSpace::new(k, m).bin_of(packed)
}

/// Number of bins for prefix length `m`.
#[inline]
pub fn mmer_bin_count(m: usize) -> usize {
    1usize << (2 * m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::{Kmer, Kmer64};
    use proptest::prelude::*;

    #[test]
    fn bin_count() {
        assert_eq!(MmerSpace::new(27, 10).bins(), 1 << 20);
        assert_eq!(MmerSpace::new(8, 1).bins(), 4);
        assert_eq!(mmer_bin_count(2), 16);
    }

    #[test]
    fn bin_of_extracts_prefix() {
        // k=4, m=2: bin of ACGT is AC = 0b0001.
        let km = Kmer64::from_codes(&[0, 1, 2, 3]);
        let sp = MmerSpace::new(4, 2);
        assert_eq!(sp.bin_of(km.value() as u128), 0b0001);
    }

    #[test]
    fn bounds_bracket_the_bin() {
        let sp = MmerSpace::new(6, 2);
        for bin in 0..sp.bins() as u32 {
            let lo = sp.bin_lower_bound(bin);
            let hi = sp.bin_upper_bound(bin);
            assert!(lo < hi);
            assert_eq!(sp.bin_of(lo), bin);
            assert_eq!(sp.bin_of(hi - 1), bin);
        }
        // Ranges tile [0, 4^k) exactly.
        assert_eq!(sp.bin_upper_bound(sp.bins() as u32 - 1), 1u128 << (2 * 6));
    }

    #[test]
    fn m_equals_k_is_identity() {
        let sp = MmerSpace::new(5, 5);
        assert_eq!(sp.bin_of(0b11_00_01_10_11), 0b11_00_01_10_11);
    }

    #[test]
    #[should_panic]
    fn rejects_m_larger_than_k() {
        let _ = MmerSpace::new(4, 5);
    }

    proptest! {
        #[test]
        fn prop_bins_are_monotone_in_value(
            a in 0u64..(1 << 40),
            b in 0u64..(1 << 40),
            m in 1usize..10,
        ) {
            let sp = MmerSpace::new(20, m);
            let (a, b) = (a as u128, b as u128);
            if a <= b {
                prop_assert!(sp.bin_of(a) <= sp.bin_of(b));
            } else {
                prop_assert!(sp.bin_of(a) >= sp.bin_of(b));
            }
        }

        #[test]
        fn prop_value_within_its_bin_bounds(v in 0u64..(1 << 40), m in 1usize..10) {
            let sp = MmerSpace::new(20, m);
            let bin = sp.bin_of(v as u128);
            prop_assert!(sp.bin_lower_bound(bin) <= v as u128);
            prop_assert!((v as u128) < sp.bin_upper_bound(bin));
        }
    }
}
