//! Canonical k-mer primitives for METAPREP.
//!
//! This crate implements the sequence-level building blocks of the METAPREP
//! preprocessing pipeline (Rengasamy, Medvedev, Madduri; IPDPSW 2017):
//!
//! * 2-bit DNA base encoding ([`alphabet`]),
//! * packed k-mer values for `k <= 32` ([`Kmer64`]) and `k <= 63`
//!   ([`Kmer128`]) with rolling updates and reverse complements ([`kmer`]),
//! * canonical k-mer enumeration over reads, skipping `N` runs, in both a
//!   scalar rolling form and the paper's 4-lane batched form
//!   ([`enumerate`], [`lanes`]),
//! * runtime-dispatched SIMD kernels (AVX2 / NEON / scalar) for whole-read
//!   2-bit encoding + validity classification and memchr-style byte
//!   scanning, feeding the enumeration hot path and `metaprep-io`'s
//!   record scanner ([`simd`]),
//! * m-mer prefix binning used by the `merHist` / `FASTQPart` index tables
//!   ([`mmer`]),
//! * minimizers and super-k-mer splitting used by the KMC2-style baseline
//!   ([`minimizer`]).
//!
//! A *canonical* k-mer is the lexicographically smaller of a k-mer and its
//! reverse complement. Packing is MSB-first (the first base occupies the
//! highest bits), so integer order on packed values equals lexicographic
//! order on the underlying strings — the property every range-partitioning
//! step of the pipeline relies on.

pub mod alphabet;
pub mod enumerate;
pub mod kmer;
pub mod lanes;
pub mod minimizer;
pub mod mmer;
pub mod simd;
pub mod tuple;

pub use alphabet::{classify_base, complement_code, decode_base, encode_base, is_valid_base};
pub use enumerate::{for_each_canonical_kmer, for_each_canonical_kmer_scalar, CanonicalKmers};
pub use kmer::{fold_kmer_key, Kmer, Kmer128, Kmer64};
pub use minimizer::{minimizer_of, superkmers, SuperKmer};
pub use mmer::{mmer_bin, mmer_bin_count, MmerSpace};
pub use tuple::{KmerReadTuple, KmerReadTuple128};
