//! Scalar canonical k-mer enumeration over reads.
//!
//! A read may contain `N` (or other ambiguity codes); METAPREP never
//! enumerates a k-mer containing such a position (paper §3.2). The
//! enumerator therefore splits the read into maximal valid runs and rolls a
//! k-mer window through each run.

use crate::alphabet::{encode_base_checked, INVALID_CODE};
use crate::kmer::Kmer;
use crate::simd;
use std::cell::RefCell;

/// Below this length the dispatched path falls back to the scalar
/// enumerator: a read shorter than one vector register gains nothing
/// from the classify kernel, and skipping the code-buffer borrow keeps
/// tiny inputs allocation-free.
const SIMD_MIN_LEN: usize = 32;

thread_local! {
    // Recycled per-thread code buffer for the dispatched path: one read's
    // classify output at a time, so in-flight memory is O(longest read)
    // per thread regardless of how many reads stream through.
    static CODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Call `f(canonical_value, offset)` for every canonical k-mer of `seq`,
/// where `offset` is the 0-based position of the window's first base.
///
/// Windows overlapping an invalid byte (e.g. `N`) are skipped. Does nothing
/// when `seq.len() < k`.
///
/// Dispatched hot path: the read is classified and 2-bit-encoded in one
/// vectorized pass ([`simd::encode_classify`]), then the canonical values
/// roll over the packed code lanes with no per-byte table lookups. The
/// emitted `(value, offset)` sequence — including order — is identical to
/// [`for_each_canonical_kmer_scalar`]'s on every backend (property-tested
/// in `tests/simd_equivalence.rs`).
#[inline]
pub fn for_each_canonical_kmer<K: Kmer>(seq: &[u8], k: usize, mut f: impl FnMut(K::Repr, usize)) {
    assert!(k >= 1 && k <= K::MAX_K);
    if simd::active() == simd::Backend::Scalar || seq.len() < SIMD_MIN_LEN {
        return for_each_canonical_kmer_scalar::<K>(seq, k, f);
    }
    CODE_BUF.with(|cell| match cell.try_borrow_mut() {
        Ok(mut codes) => {
            simd::encode_classify(seq, &mut codes);
            for_each_in_codes::<K>(&codes, k, &mut f);
        }
        // Re-entrant call (f itself enumerates k-mers on this thread):
        // the buffer is busy, and correctness beats vectorization.
        Err(_) => for_each_canonical_kmer_scalar::<K>(seq, k, f),
    })
}

/// Enumerate canonical k-mers over a packed 2-bit code buffer (one code
/// or [`INVALID_CODE`] per input byte, as produced by
/// [`simd::encode_classify`]). Runs are split on invalid codes exactly
/// like the byte-level enumerator splits on invalid bases.
fn for_each_in_codes<K: Kmer>(codes: &[u8], k: usize, f: &mut impl FnMut(K::Repr, usize)) {
    let mut i = 0;
    let n = codes.len();
    while i < n {
        // Invalid runs are rare and short (N stretches); skip them byte-wise.
        while i < n && codes[i] == INVALID_CODE {
            i += 1;
        }
        let start = i;
        // Valid runs are long (often the whole read): find their end with
        // the vectorized scanner instead of a per-byte compare loop.
        i = match simd::find_byte(&codes[i..], INVALID_CODE) {
            Some(j) => i + j,
            None => n,
        };
        let run = &codes[start..i];
        if run.len() < k {
            continue;
        }
        let mut km = K::zero(k);
        // Warm the first k-1 codes, then emit one window per remaining
        // code — the steady-state loop carries no fill-count branch.
        for &c in &run[..k - 1] {
            km.roll(c);
        }
        for (w, &c) in run[k - 1..].iter().enumerate() {
            km.roll(c);
            f(km.canonical_value(), start + w);
        }
    }
}

/// Scalar reference enumerator: per-byte table lookups, no code buffer.
/// This is the oracle the dispatched path is property-tested against and
/// the baseline `BENCH_kmergen.json` ratios are measured from.
#[inline]
pub fn for_each_canonical_kmer_scalar<K: Kmer>(
    seq: &[u8],
    k: usize,
    mut f: impl FnMut(K::Repr, usize),
) {
    assert!(k >= 1 && k <= K::MAX_K);
    let mut i = 0;
    while i < seq.len() {
        // Find the next maximal run of valid bases starting at or after `i`.
        while i < seq.len() && encode_base_checked(seq[i]).is_none() {
            i += 1;
        }
        let start = i;
        while i < seq.len() && encode_base_checked(seq[i]).is_some() {
            i += 1;
        }
        let run = &seq[start..i];
        if run.len() < k {
            continue;
        }
        let mut km = K::zero(k);
        for (j, &b) in run.iter().enumerate() {
            // EXPECT: the run was split on invalid bases, so every byte in it encodes.
            km.roll(encode_base_checked(b).expect("run contains only valid bases"));
            if j + 1 >= k {
                f(km.canonical_value(), start + j + 1 - k);
            }
        }
    }
}

/// Iterator form of [`for_each_canonical_kmer`], yielding
/// `(canonical_value, offset)` pairs.
///
/// The closure form is faster in hot loops (no per-item state machine); the
/// iterator form composes with adapter chains in tests and examples.
pub struct CanonicalKmers<'a, K: Kmer> {
    seq: &'a [u8],
    k: usize,
    /// Position of the next byte to consume.
    pos: usize,
    /// Number of consecutive valid bases currently inside the window.
    filled: usize,
    km: K,
}

impl<'a, K: Kmer> CanonicalKmers<'a, K> {
    /// Create an enumerator over `seq` with k-mer length `k`.
    pub fn new(seq: &'a [u8], k: usize) -> Self {
        assert!(k >= 1 && k <= K::MAX_K);
        Self {
            seq,
            k,
            pos: 0,
            filled: 0,
            km: K::zero(k),
        }
    }
}

impl<'a, K: Kmer> Iterator for CanonicalKmers<'a, K> {
    type Item = (K::Repr, usize);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match encode_base_checked(b) {
                Some(c) => {
                    self.km.roll(c);
                    self.filled += 1;
                    if self.filled >= self.k {
                        return Some((self.km.canonical_value(), self.pos - self.k));
                    }
                }
                None => {
                    self.filled = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        // At most one k-mer per remaining byte plus one for a full window.
        (0, Some(remaining + usize::from(self.filled >= self.k)))
    }
}

/// Count k-mers of `seq` that would be enumerated (i.e. valid windows).
///
/// # Panics
/// Panics when `k` is 0 or exceeds [`Kmer128::MAX_K`](crate::Kmer128),
/// like [`for_each_canonical_kmer`] does. (An earlier version silently
/// clamped `k` to 63, returning the count for the wrong k-mer length.)
pub fn count_valid_kmers(seq: &[u8], k: usize) -> usize {
    assert!(
        (1..=<crate::Kmer128 as Kmer>::MAX_K).contains(&k),
        "k={k} out of range 1..={}",
        <crate::Kmer128 as Kmer>::MAX_K
    );
    let mut n = 0usize;
    for_each_canonical_kmer::<crate::Kmer128>(seq, k, |_, _| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::{Kmer128, Kmer64};
    use proptest::prelude::*;

    fn collect64(seq: &[u8], k: usize) -> Vec<(u64, usize)> {
        let mut v = Vec::new();
        for_each_canonical_kmer::<Kmer64>(seq, k, |x, o| v.push((x, o)));
        v
    }

    /// Reference: canonical value via naive string construction per window.
    fn naive(seq: &[u8], k: usize) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        if seq.len() < k {
            return out;
        }
        'w: for o in 0..=seq.len() - k {
            let win = &seq[o..o + k];
            let mut codes = Vec::with_capacity(k);
            for &b in win {
                match encode_base_checked(b) {
                    Some(c) => codes.push(c),
                    None => continue 'w,
                }
            }
            let km = Kmer64::from_codes(&codes);
            out.push((km.canonical_value(), o));
        }
        out
    }

    #[test]
    fn simple_sequence_counts() {
        let v = collect64(b"ACGTACGT", 4);
        assert_eq!(v.len(), 5);
        assert_eq!(v, naive(b"ACGTACGT", 4));
    }

    #[test]
    fn skips_windows_with_n() {
        let v = collect64(b"ACGNTACG", 3);
        // Valid runs: ACG (1 window), TACG (2 windows).
        assert_eq!(v.len(), 3);
        assert_eq!(v, naive(b"ACGNTACG", 3));
    }

    #[test]
    fn short_sequence_yields_nothing() {
        assert!(collect64(b"ACG", 4).is_empty());
        assert!(collect64(b"", 4).is_empty());
        assert!(collect64(b"NNNNNNNN", 4).is_empty());
    }

    #[test]
    fn run_shorter_than_k_is_skipped() {
        // Runs: AC (too short), GGGG (one 4-window).
        let v = collect64(b"ACNGGGG", 4);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 3);
    }

    #[test]
    fn iterator_matches_closure_form() {
        let seq = b"ACGTNNACGTACGTTGCA";
        let it: Vec<_> = CanonicalKmers::<Kmer64>::new(seq, 5).collect();
        assert_eq!(it, collect64(seq, 5));
    }

    #[test]
    fn offsets_are_window_starts() {
        let v = collect64(b"AAAAA", 3);
        assert_eq!(v.iter().map(|&(_, o)| o).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn kmer128_handles_large_k() {
        let seq: Vec<u8> = b"ACGT".iter().cycle().take(80).copied().collect();
        let mut v = Vec::new();
        for_each_canonical_kmer::<Kmer128>(&seq, 63, |x, o| v.push((x, o)));
        assert_eq!(v.len(), 80 - 63 + 1);
        // All windows of a period-4 sequence at offsets ≡ mod 4 are equal.
        assert_eq!(v[0].0, v[4].0);
    }

    #[test]
    fn count_valid_kmers_counts_windows() {
        assert_eq!(count_valid_kmers(b"ACGTACGT", 4), 5);
        assert_eq!(count_valid_kmers(b"ACGNTACG", 3), 3);
        assert_eq!(count_valid_kmers(b"NN", 1), 0);
    }

    #[test]
    fn count_valid_kmers_honest_at_max_k_boundary() {
        // Regression: `k` used to be clamped with `k.min(63)`, so k = 64+
        // silently returned the k = 63 count. A 64-base read has exactly
        // one 64-window but two 63-windows — the clamp was observable.
        let seq: Vec<u8> = b"ACGT".iter().cycle().take(64).copied().collect();
        assert_eq!(count_valid_kmers(&seq, 63), 2);
        assert_eq!(count_valid_kmers(&seq, 62), 3);
        let err = std::panic::catch_unwind(|| count_valid_kmers(&seq, 64));
        assert!(err.is_err(), "k=64 must panic, not count 63-mers");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn count_valid_kmers_rejects_k_zero() {
        count_valid_kmers(b"ACGT", 0);
    }

    #[test]
    fn dispatched_matches_scalar_in_order() {
        // Long mixed-case read with N runs: the dispatched path must
        // reproduce the scalar sequence exactly, offsets and order
        // included (not just the multiset).
        let seq: Vec<u8> = b"acgtACGTnNtgcaTTggccAANrya"
            .iter()
            .cycle()
            .take(500)
            .copied()
            .collect();
        for k in [1, 2, 5, 31, 32] {
            let mut a = Vec::new();
            for_each_canonical_kmer::<Kmer64>(&seq, k, |x, o| a.push((x, o)));
            let mut b = Vec::new();
            for_each_canonical_kmer_scalar::<Kmer64>(&seq, k, |x, o| b.push((x, o)));
            assert_eq!(a, b, "k={k}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_naive(
            seq in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..64),
            k in 1usize..9,
        ) {
            prop_assert_eq!(collect64(&seq, k), naive(&seq, k));
        }

        #[test]
        fn prop_reverse_complement_read_yields_same_multiset(
            seq in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 8..48),
            k in 2usize..8,
        ) {
            let rc = crate::alphabet::reverse_complement_ascii(&seq);
            let mut a: Vec<u64> = collect64(&seq, k).into_iter().map(|(x, _)| x).collect();
            let mut b: Vec<u64> = collect64(&rc, k).into_iter().map(|(x, _)| x).collect();
            a.sort_unstable();
            b.sort_unstable();
            // Canonicalization makes enumeration strand-independent.
            prop_assert_eq!(a, b);
        }
    }
}
