//! 4-lane batched canonical k-mer generation.
//!
//! Portable reimplementation of the paper's vectorized KmerGen (§3.2.1,
//! Figure 3): four k-mer windows are started at equidistant points of the
//! read and all four are advanced by one base per iteration. On the
//! original system the four forward (and four reverse-complement) windows
//! live in two 128-bit SIMD registers; here each lane is a scalar register
//! and the loop body is written so the compiler can keep the eight words in
//! registers and overlap the four independent dependency chains (ILP). The
//! emission *order* differs from the scalar enumerator (lane-interleaved),
//! which is irrelevant to the pipeline because tuples are sorted afterwards.

use crate::alphabet::encode_base_checked;
use crate::kmer::Kmer;

/// Number of concurrent windows, matching the paper's 4×64-bit layout.
pub const LANES: usize = 4;

/// Call `f(canonical_value, offset)` for every canonical k-mer of `seq`
/// using 4-lane batched generation. Produces exactly the same multiset of
/// `(value, offset)` pairs as
/// [`for_each_canonical_kmer`](crate::enumerate::for_each_canonical_kmer).
pub fn for_each_canonical_kmer_x4<K: Kmer>(
    seq: &[u8],
    k: usize,
    mut f: impl FnMut(K::Repr, usize),
) {
    assert!(k >= 1 && k <= K::MAX_K);
    let mut i = 0;
    while i < seq.len() {
        while i < seq.len() && encode_base_checked(seq[i]).is_none() {
            i += 1;
        }
        let start = i;
        while i < seq.len() && encode_base_checked(seq[i]).is_some() {
            i += 1;
        }
        let run = &seq[start..i];
        if run.len() >= k {
            run_x4::<K>(run, k, start, &mut f);
        }
    }
}

/// Process one maximal valid run (no `N`) of length `>= k`.
fn run_x4<K: Kmer>(run: &[u8], k: usize, base_off: usize, f: &mut impl FnMut(K::Repr, usize)) {
    let n = run.len() - k + 1; // number of windows
    if n < 2 * LANES {
        // Short runs: lane setup (4 full window initializations) would
        // dominate; fall back to scalar rolling.
        let mut km = K::zero(k);
        for (j, &b) in run.iter().enumerate() {
            km.roll(code(b));
            if j + 1 >= k {
                f(km.canonical_value(), base_off + j + 1 - k);
            }
        }
        return;
    }

    // Segment the n windows into LANES contiguous chunks; lane L owns
    // windows [seg_start[L], seg_start[L+1]).
    let q = n / LANES;
    let r = n % LANES;
    let mut seg_start = [0usize; LANES + 1];
    for l in 0..LANES {
        seg_start[l + 1] = seg_start[l] + q + usize::from(l < r);
    }

    // Initialize each lane's first window.
    let mut kms: [K; LANES] = std::array::from_fn(|l| {
        let s = seg_start[l];
        let mut km = K::zero(k);
        for &b in &run[s..s + k] {
            km.roll(code(b));
        }
        km
    });

    // Uniform phase: every lane has at least `q` windows, so the loop body
    // is branch-free across lanes (four independent roll chains).
    for step in 0..q {
        for l in 0..LANES {
            let w = seg_start[l] + step;
            f(kms[l].canonical_value(), base_off + w);
            // Prepare the next window unless this was the lane's last.
            if step + 1 < seg_start[l + 1] - seg_start[l] {
                kms[l].roll(code(run[w + k]));
            }
        }
    }
    // Remainder: the first `r` lanes own one extra window each.
    for l in 0..r {
        let w = seg_start[l] + q;
        f(kms[l].canonical_value(), base_off + w);
    }
}

#[inline(always)]
fn code(b: u8) -> u8 {
    // EXPECT: callers pass bytes from runs already split on invalid bases.
    encode_base_checked(b).expect("run contains only valid bases")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_canonical_kmer;
    use crate::kmer::{Kmer128, Kmer64};
    use proptest::prelude::*;

    fn sorted_pairs_x4(seq: &[u8], k: usize) -> Vec<(u64, usize)> {
        let mut v = Vec::new();
        for_each_canonical_kmer_x4::<Kmer64>(seq, k, |x, o| v.push((x, o)));
        v.sort_unstable();
        v
    }

    fn sorted_pairs_scalar(seq: &[u8], k: usize) -> Vec<(u64, usize)> {
        let mut v = Vec::new();
        for_each_canonical_kmer::<Kmer64>(seq, k, |x, o| v.push((x, o)));
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_scalar_on_long_read() {
        let seq: Vec<u8> = b"ACGTTGCAAGCTTAGCGCGCGATATATTTTGGGCCCAAACGTACGTACGT"
            .iter()
            .cycle()
            .take(200)
            .copied()
            .collect();
        assert_eq!(sorted_pairs_x4(&seq, 27), sorted_pairs_scalar(&seq, 27));
    }

    #[test]
    fn matches_scalar_on_short_run_fallback() {
        // n = l - k + 1 = 3 < 8 windows -> scalar fallback path.
        let seq = b"ACGTACGTAC";
        assert_eq!(sorted_pairs_x4(seq, 8), sorted_pairs_scalar(seq, 8));
    }

    #[test]
    fn handles_n_runs() {
        let seq = b"ACGTACGTACGTNNNACGTACGTACGTACGTACGTACGTACGT";
        assert_eq!(sorted_pairs_x4(seq, 5), sorted_pairs_scalar(seq, 5));
    }

    #[test]
    fn empty_and_too_short() {
        assert!(sorted_pairs_x4(b"", 4).is_empty());
        assert!(sorted_pairs_x4(b"ACG", 4).is_empty());
    }

    #[test]
    fn boundary_exactly_two_lanes_worth() {
        // n = 2 * LANES windows: smallest input on the lane path.
        let k = 4;
        let n = 2 * LANES;
        let seq: Vec<u8> = b"ACGTTGCA"
            .iter()
            .cycle()
            .take(n + k - 1)
            .copied()
            .collect();
        assert_eq!(sorted_pairs_x4(&seq, k), sorted_pairs_scalar(&seq, k));
    }

    #[test]
    fn kmer128_lane_path() {
        let seq: Vec<u8> = b"ACGTTGCATTAGC".iter().cycle().take(300).copied().collect();
        let mut a = Vec::new();
        for_each_canonical_kmer_x4::<Kmer128>(&seq, 63, |x, o| a.push((x, o)));
        let mut b = Vec::new();
        for_each_canonical_kmer::<Kmer128>(&seq, 63, |x, o| b.push((x, o)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_x4_matches_scalar(
            seq in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..128),
            k in 1usize..16,
        ) {
            prop_assert_eq!(sorted_pairs_x4(&seq, k), sorted_pairs_scalar(&seq, k));
        }
    }
}
