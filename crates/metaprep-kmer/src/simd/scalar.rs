//! Portable scalar kernels — the always-available dispatch arm and the
//! reference implementation the vector backends are property-tested
//! against.

use crate::alphabet::classify_base;

/// Scalar [`super::encode_classify`]: one table lookup per byte.
pub fn encode_classify(seq: &[u8], out: &mut [u8]) {
    debug_assert_eq!(seq.len(), out.len());
    for (o, &b) in out.iter_mut().zip(seq) {
        *o = classify_base(b);
    }
}

/// Scalar [`super::find_byte`]: the definitionally-correct linear scan.
#[inline]
pub fn find_byte(data: &[u8], needle: u8) -> Option<usize> {
    data.iter().position(|&b| b == needle)
}
