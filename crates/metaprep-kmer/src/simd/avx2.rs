//! AVX2 kernels (x86_64): 32 bytes per iteration.
//!
//! Both kernels are `unsafe fn` with an `avx2` target-feature contract;
//! the dispatcher in [`super`] only reaches them after
//! `is_x86_feature_detected!("avx2")` succeeded. Tails shorter than one
//! vector fall through to the scalar kernels, so any slice length is
//! handled and the output is byte-identical to [`super::scalar`]'s.

use super::scalar;
use std::arch::x86_64::*;

/// Bytes processed per vector iteration.
const LANES: usize = 32;

/// AVX2 [`super::encode_classify`].
///
/// Per 32-byte block:
/// 1. clear the ASCII case bit (`b & 0xDF`) and compare against
///    `A/C/G/T` — the OR of the four equality masks marks valid lanes;
/// 2. translate the low nibble through a 16-entry shuffle table
///    (uppercase and lowercase of each base share a low nibble:
///    `A/a→1, C/c→3, G/g→7, T/t→4`) to the 2-bit code;
/// 3. force invalid lanes to `INVALID_CODE` (0xFF) by OR-ing the
///    complement of the validity mask.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` only for the avx2 target-feature contract above —
// the dispatcher calls it strictly after feature detection succeeded.
pub unsafe fn encode_classify(seq: &[u8], out: &mut [u8]) {
    debug_assert_eq!(seq.len(), out.len());
    // Low-nibble -> code table: index 1 = A/a -> 0, 3 = C/c -> 1,
    // 7 = G/g -> 2, 4 = T/t -> 3; every other slot is don't-care (the
    // validity mask overrides it). One 128-bit row, used in both lanes.
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 0, 0, 1, 3, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0,
        0, 0, 0, 1, 3, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0,
    );
    let low4 = _mm256_set1_epi8(0x0F);
    let case_mask = _mm256_set1_epi8(0xDFu8 as i8);
    let ones = _mm256_set1_epi8(-1);
    let ba = _mm256_set1_epi8(b'A' as i8);
    let bc = _mm256_set1_epi8(b'C' as i8);
    let bg = _mm256_set1_epi8(b'G' as i8);
    let bt = _mm256_set1_epi8(b'T' as i8);

    let n = seq.len();
    let mut i = 0;
    while i + LANES <= n {
        // SAFETY: i + 32 <= seq.len() == out.len(); unaligned load/store
        // intrinsics have no alignment requirement.
        unsafe {
            let v = _mm256_loadu_si256(seq.as_ptr().add(i) as *const __m256i);
            let up = _mm256_and_si256(v, case_mask);
            let valid = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpeq_epi8(up, ba), _mm256_cmpeq_epi8(up, bc)),
                _mm256_or_si256(_mm256_cmpeq_epi8(up, bg), _mm256_cmpeq_epi8(up, bt)),
            );
            let code = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low4));
            // valid lanes keep their code; invalid lanes become 0xFF.
            let res = _mm256_or_si256(code, _mm256_xor_si256(valid, ones));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, res);
        }
        i += LANES;
    }
    scalar::encode_classify(&seq[i..], &mut out[i..]);
}

/// AVX2 [`super::find_byte`]: 32-byte equality compare + movemask, first
/// set bit wins; the sub-vector tail is scanned scalar.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` only for the avx2 target-feature contract above —
// the dispatcher calls it strictly after feature detection succeeded.
pub unsafe fn find_byte(data: &[u8], needle: u8) -> Option<usize> {
    let nv = _mm256_set1_epi8(needle as i8);
    let n = data.len();
    let mut i = 0;
    while i + LANES <= n {
        // SAFETY: i + 32 <= data.len(); unaligned load.
        let mask = unsafe {
            let v = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, nv)) as u32
        };
        if mask != 0 {
            return Some(i + mask.trailing_zeros() as usize);
        }
        i += LANES;
    }
    scalar::find_byte(&data[i..], needle).map(|p| i + p)
}
