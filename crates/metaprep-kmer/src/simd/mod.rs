//! Runtime-dispatched SIMD kernels for the KmerGen / FASTQ-scan hot path.
//!
//! The paper's single-node throughput story (§3.2.1) rests on KmerGen and
//! record scanning keeping pace with I/O. This module provides the two
//! byte-level kernels those stages spend their time in, each with an AVX2
//! (x86_64), NEON (aarch64) and scalar implementation selected **once** at
//! startup:
//!
//! * [`encode_classify`] — 2-bit base encoding *and* validity
//!   classification of a whole read slice in one pass. The output code
//!   buffer is byte-identical to mapping
//!   [`classify_base`](crate::alphabet::classify_base) over the input:
//!   `0..=3` for `ACGTacgt`, [`INVALID_CODE`](crate::alphabet::INVALID_CODE)
//!   for everything else (`N`, ambiguity codes, junk). Canonical k-mer
//!   generation then rolls over the packed lanes without any per-byte
//!   table lookups or `Option` branching
//!   ([`for_each_canonical_kmer`](crate::enumerate::for_each_canonical_kmer)).
//! * [`find_byte`] — memchr-style first-occurrence scan, the primitive
//!   under `metaprep-io`'s `find_record_start` / `count_record_starts`
//!   and the `StreamChunker` window-probe path.
//!
//! # Dispatch
//!
//! [`active`] resolves the backend on first use, in priority order:
//!
//! 1. a programmatic [`force`] (the CLI's `--simd` flag);
//! 2. the `METAPREP_SIMD` environment variable
//!    (`auto` / `avx2` / `neon` / `scalar`) — the knob the scalar-forced
//!    CI job and the differential tests use;
//! 3. runtime feature detection (AVX2 on x86_64, NEON on aarch64),
//!    falling back to scalar.
//!
//! Requesting a backend the running CPU cannot execute is a hard error,
//! not a silent downgrade: the knob exists to *pin* a path under test,
//! and degrading would invalidate exactly the run that set it.
//!
//! # Testing strategy
//!
//! Every kernel has a `*_with(backend, ..)` form so one process can run
//! all backends the host supports ([`available_backends`]) against the
//! scalar reference; the property tests in `tests/simd_equivalence.rs`
//! drive mixed-case bases, ambiguity codes and arbitrary junk bytes
//! through each pair. The dispatched forms are what the pipeline calls.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;

/// Which kernel family executes the hot-path scans.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 kernels (x86_64 with runtime `avx2` support).
    Avx2,
    /// 128-bit NEON kernels (aarch64).
    Neon,
    /// Portable scalar reference — always available, and the oracle every
    /// vector kernel is property-tested against.
    Scalar,
}

impl Backend {
    /// Stable lowercase name (used in `BENCH_kmergen.json` and logs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

/// Best backend the running CPU supports.
fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    if std::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return Backend::Neon;
    }
    Backend::Scalar
}

/// True if `b`'s kernels can execute on the running CPU.
fn supported(b: Backend) -> bool {
    match b {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => std::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        Backend::Scalar => true,
        #[allow(unreachable_patterns)] // Avx2/Neon on the foreign arch
        _ => false,
    }
}

/// Resolve `METAPREP_SIMD` (or fall back to detection).
///
/// # Panics
/// Panics on an unknown value or on a backend the CPU cannot execute —
/// the override is a testing knob, and degrading silently would
/// invalidate the run that set it.
fn from_env_or_detect() -> Backend {
    let Ok(raw) = std::env::var("METAPREP_SIMD") else {
        return detect();
    };
    let want = match raw.as_str() {
        "" | "auto" => return detect(),
        "avx2" => Backend::Avx2,
        "neon" => Backend::Neon,
        "scalar" => Backend::Scalar,
        other => panic!("METAPREP_SIMD={other:?}: expected auto, avx2, neon or scalar"),
    };
    assert!(
        supported(want),
        "METAPREP_SIMD={raw}: backend not supported on this CPU/architecture"
    );
    want
}

/// The backend every dispatched kernel in this process uses. Resolved on
/// first call and never changes afterwards (the kernels are selected once
/// at startup, not per call site).
#[inline]
pub fn active() -> Backend {
    *ACTIVE.get_or_init(from_env_or_detect)
}

/// Pin the process-wide backend before first use (the CLI's `--simd`
/// flag). Returns `Err` with the already-active backend if dispatch has
/// already been resolved (or `force` already called) — late overrides
/// would leave earlier results computed by a different kernel family.
pub fn force(b: Backend) -> Result<(), Backend> {
    assert!(
        supported(b),
        "simd::force({}): backend not supported on this CPU/architecture",
        b.name()
    );
    ACTIVE.set(b).map_err(|_| active())
}

/// Backends executable on this host, best first, always ending in
/// `Scalar`. Differential tests iterate this to cover every arm CI's
/// hardware can reach.
pub fn available_backends() -> Vec<Backend> {
    let best = detect();
    if best == Backend::Scalar {
        vec![Backend::Scalar]
    } else {
        vec![best, Backend::Scalar]
    }
}

/// Fill `out` with the 2-bit code of every byte of `seq`
/// (`0..=3` for `ACGTacgt`, [`INVALID_CODE`](crate::alphabet::INVALID_CODE)
/// otherwise), using the [`active`] backend. `out` is cleared and resized
/// to `seq.len()`; its capacity is reused across calls.
#[inline]
pub fn encode_classify(seq: &[u8], out: &mut Vec<u8>) {
    encode_classify_with(active(), seq, out)
}

/// [`encode_classify`] with an explicit backend (differential testing).
pub fn encode_classify_with(backend: Backend, seq: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.resize(seq.len(), 0);
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 is only produced by detect()/from_env_or_detect()/
        // force() after is_x86_feature_detected!("avx2") returned true, so the
        // avx2 target-feature code is executable on this CPU.
        Backend::Avx2 => unsafe { avx2::encode_classify(seq, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Backend::Neon is only produced after
        // is_aarch64_feature_detected!("neon") returned true.
        Backend::Neon => unsafe { neon::encode_classify(seq, out) },
        _ => scalar::encode_classify(seq, out),
    }
}

/// Index of the first `needle` in `data` (memchr), using the [`active`]
/// backend. Matches `data.iter().position(|&b| b == needle)` exactly.
#[inline]
pub fn find_byte(data: &[u8], needle: u8) -> Option<usize> {
    find_byte_with(active(), data, needle)
}

/// [`find_byte`] with an explicit backend (differential testing).
#[inline]
pub fn find_byte_with(backend: Backend, data: &[u8], needle: u8) -> Option<usize> {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 is only produced after a successful
        // is_x86_feature_detected!("avx2") check (see encode_classify_with).
        Backend::Avx2 => unsafe { avx2::find_byte(data, needle) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Backend::Neon is only produced after a successful
        // is_aarch64_feature_detected!("neon") check.
        Backend::Neon => unsafe { neon::find_byte(data, needle) },
        _ => scalar::find_byte(data, needle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::classify_base;

    #[test]
    fn available_backends_ends_in_scalar() {
        let b = available_backends();
        assert_eq!(*b.last().unwrap(), Backend::Scalar);
        assert!(b.contains(&detect()));
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(active(), active());
    }

    #[test]
    fn force_after_resolution_reports_active() {
        let _ = active();
        // Dispatch is resolved (line above), so force must refuse.
        assert_eq!(force(Backend::Scalar), Err(active()));
    }

    #[test]
    fn encode_classify_matches_table_on_all_backends() {
        let seq: Vec<u8> = (0u8..=255).collect();
        let want: Vec<u8> = seq.iter().map(|&b| classify_base(b)).collect();
        for backend in available_backends() {
            let mut out = Vec::new();
            encode_classify_with(backend, &seq, &mut out);
            assert_eq!(out, want, "backend={backend}");
        }
    }

    #[test]
    fn encode_classify_long_mixed_case() {
        // Longer than one vector register on every backend, with the
        // tail exercising the non-vector remainder path.
        let seq: Vec<u8> = b"AcGtNnacgtACGT.RYWSKMBDHVU@+\n\t x"
            .iter()
            .cycle()
            .take(32 * 7 + 13)
            .copied()
            .collect();
        let want: Vec<u8> = seq.iter().map(|&b| classify_base(b)).collect();
        for backend in available_backends() {
            let mut out = Vec::new();
            encode_classify_with(backend, &seq, &mut out);
            assert_eq!(out, want, "backend={backend}");
        }
    }

    #[test]
    fn encode_classify_reuses_capacity() {
        let mut out = Vec::new();
        encode_classify(&[b'A'; 100], &mut out);
        let cap = out.capacity();
        encode_classify(&[b'C'; 64], &mut out);
        assert_eq!(out.len(), 64);
        assert_eq!(out.capacity(), cap, "buffer must be recycled");
    }

    #[test]
    fn find_byte_matches_position_on_all_backends() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        for backend in available_backends() {
            for needle in [0u8, 1, 13, 250, 251, 255, b'\n'] {
                let want = data.iter().position(|&b| b == needle);
                let got = find_byte_with(backend, &data, needle);
                assert_eq!(got, want, "backend={backend} needle={needle}");
            }
            assert_eq!(find_byte_with(backend, &[], b'\n'), None);
        }
    }

    #[test]
    fn find_byte_hits_every_offset() {
        // A hit in each position of a 100-byte buffer: covers vector-block
        // hits, cross-block hits and tail hits on every backend.
        for backend in available_backends() {
            for at in 0..100usize {
                let mut data = vec![b'x'; 100];
                data[at] = b'\n';
                assert_eq!(
                    find_byte_with(backend, &data, b'\n'),
                    Some(at),
                    "backend={backend} at={at}"
                );
            }
        }
    }
}
