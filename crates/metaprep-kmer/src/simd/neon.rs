//! NEON kernels (aarch64): 16 bytes per iteration.
//!
//! Mirrors the AVX2 kernels at half the vector width; see
//! [`super::avx2`] for the algorithm notes. The dispatcher only reaches
//! this module after `is_aarch64_feature_detected!("neon")` succeeded.

use super::scalar;
use std::arch::aarch64::*;

/// Bytes processed per vector iteration.
const LANES: usize = 16;

/// NEON [`super::encode_classify`]: case-folded compare against the four
/// bases for validity, `vqtbl1q` low-nibble translation for the code,
/// invalid lanes forced to 0xFF.
///
/// # Safety
/// Caller must ensure the CPU supports NEON.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only for the neon target-feature contract above —
// the dispatcher calls it strictly after feature detection succeeded.
pub unsafe fn encode_classify(seq: &[u8], out: &mut [u8]) {
    debug_assert_eq!(seq.len(), out.len());
    // Low-nibble -> code table (A/a=1->0, C/c=3->1, G/g=7->2, T/t=4->3);
    // other slots are don't-care, overridden by the validity mask.
    let lut_bytes: [u8; 16] = [0, 0, 0, 1, 3, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0];
    let n = seq.len();
    let mut i = 0;
    // SAFETY: all intrinsics below are plain NEON data ops; loads/stores
    // stay in-bounds because i + 16 <= seq.len() == out.len().
    unsafe {
        let lut = vld1q_u8(lut_bytes.as_ptr());
        let low4 = vdupq_n_u8(0x0F);
        let case_mask = vdupq_n_u8(0xDF);
        let ba = vdupq_n_u8(b'A');
        let bc = vdupq_n_u8(b'C');
        let bg = vdupq_n_u8(b'G');
        let bt = vdupq_n_u8(b'T');
        while i + LANES <= n {
            let v = vld1q_u8(seq.as_ptr().add(i));
            let up = vandq_u8(v, case_mask);
            let valid = vorrq_u8(
                vorrq_u8(vceqq_u8(up, ba), vceqq_u8(up, bc)),
                vorrq_u8(vceqq_u8(up, bg), vceqq_u8(up, bt)),
            );
            let code = vqtbl1q_u8(lut, vandq_u8(v, low4));
            let res = vorrq_u8(code, vmvnq_u8(valid));
            vst1q_u8(out.as_mut_ptr().add(i), res);
            i += LANES;
        }
    }
    scalar::encode_classify(&seq[i..], &mut out[i..]);
}

/// NEON [`super::find_byte`]: 16-byte equality compare; a nonzero
/// across-vector max means a hit somewhere in the block, located with a
/// narrow scalar scan (branch taken at most once per call).
///
/// # Safety
/// Caller must ensure the CPU supports NEON.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only for the neon target-feature contract above —
// the dispatcher calls it strictly after feature detection succeeded.
pub unsafe fn find_byte(data: &[u8], needle: u8) -> Option<usize> {
    let n = data.len();
    let mut i = 0;
    // SAFETY: loads stay in-bounds because i + 16 <= data.len().
    unsafe {
        let nv = vdupq_n_u8(needle);
        while i + LANES <= n {
            let v = vld1q_u8(data.as_ptr().add(i));
            if vmaxvq_u8(vceqq_u8(v, nv)) != 0 {
                // A hit exists in this block; find it scalar.
                return scalar::find_byte(&data[i..i + LANES], needle).map(|p| i + p);
            }
            i += LANES;
        }
    }
    scalar::find_byte(&data[i..], needle).map(|p| i + p)
}
