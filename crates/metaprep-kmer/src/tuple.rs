//! `(k-mer, read id)` tuples — the unit of work of the whole pipeline.
//!
//! The paper stores 12-byte tuples for `k <= 27` (64-bit k-mer + 32-bit
//! global read id) and 20-byte tuples for `k <= 63` (§4.4). Rust's layout
//! rules align `u64`/`u128` fields, so the in-memory sizes here are 16 and
//! 32 bytes respectively; the *memory model* (metaprep-core) reports both
//! the paper's packed sizes and the actual sizes.

/// Tuple for `k <= 32`: packed canonical k-mer plus global read id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KmerReadTuple {
    /// Packed canonical k-mer value (sort key).
    pub kmer: u64,
    /// Global read id; both mates of a paired-end read share one id so that
    /// pairing survives partitioning (paper §3.2).
    pub read: u32,
}

impl KmerReadTuple {
    /// Construct a tuple.
    #[inline(always)]
    pub fn new(kmer: u64, read: u32) -> Self {
        Self { kmer, read }
    }

    /// Bytes per tuple in the paper's packed representation.
    pub const PACKED_BYTES: usize = 12;
}

/// Tuple for `k <= 63`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KmerReadTuple128 {
    /// Packed canonical k-mer value (sort key).
    pub kmer: u128,
    /// Global read id.
    pub read: u32,
}

impl KmerReadTuple128 {
    /// Construct a tuple.
    #[inline(always)]
    pub fn new(kmer: u128, read: u32) -> Self {
        Self { kmer, read }
    }

    /// Bytes per tuple in the paper's packed representation (16 + 4).
    pub const PACKED_BYTES: usize = 20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_kmer_major() {
        let a = KmerReadTuple::new(1, 99);
        let b = KmerReadTuple::new(2, 0);
        let c = KmerReadTuple::new(2, 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn packed_sizes_match_paper() {
        assert_eq!(KmerReadTuple::PACKED_BYTES, 12);
        assert_eq!(KmerReadTuple128::PACKED_BYTES, 20);
    }

    #[test]
    fn actual_sizes_are_aligned() {
        assert_eq!(std::mem::size_of::<KmerReadTuple>(), 16);
        assert_eq!(std::mem::size_of::<KmerReadTuple128>(), 32);
    }
}
