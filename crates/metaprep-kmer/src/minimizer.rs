//! Minimizers and super-k-mers.
//!
//! Used by the KMC2-style comparison baseline (paper §4.2.1): consecutive
//! k-mers sharing the same minimizer are grouped into a *super-k-mer* and
//! binned by that minimizer, which compresses the Stage-1 output (each base
//! is written once per super-k-mer rather than once per k-mer).
//!
//! The minimizer of a k-mer is its lexicographically smallest length-`w`
//! substring, taken over both strands here (canonical minimizer), so that a
//! read and its reverse complement land in the same bins.

use crate::alphabet::encode_base_checked;
use crate::kmer::{Kmer, Kmer64};

/// A super-k-mer: a maximal run of consecutive k-mers of one read sharing a
/// minimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperKmer {
    /// Packed canonical minimizer value (length `w`).
    pub minimizer: u64,
    /// Offset of the super-k-mer's first base within the read.
    pub start: usize,
    /// Length in bases. A super-k-mer of `c` consecutive k-mers has length
    /// `k + c - 1`.
    pub len: usize,
}

impl SuperKmer {
    /// Number of k-mers contained in this super-k-mer.
    pub fn kmer_count(&self, k: usize) -> usize {
        self.len + 1 - k
    }
}

/// Canonical minimizer (length `w`) of the window `seq[at..at+k]`.
///
/// Returns `None` if the window contains an invalid base. O(k·w) reference
/// implementation used for testing; [`superkmers`] computes minimizers
/// incrementally.
pub fn minimizer_of(seq: &[u8], at: usize, k: usize, w: usize) -> Option<u64> {
    assert!(w <= k);
    let win = &seq[at..at + k];
    let mut best: Option<u64> = None;
    for o in 0..=k - w {
        let mut km = Kmer64::zero(w);
        for &b in &win[o..o + w] {
            km.roll(encode_base_checked(b)?);
        }
        let c = km.canonical_value();
        best = Some(match best {
            Some(b) if b <= c => b,
            _ => c,
        });
    }
    best
}

/// Split `seq` into super-k-mers with k-mer length `k` and minimizer length
/// `w` (`w <= k`). Windows containing invalid bases are skipped; a run of
/// valid bases shorter than `k` produces nothing.
pub fn superkmers(seq: &[u8], k: usize, w: usize) -> Vec<SuperKmer> {
    assert!(w >= 1 && w <= k && k <= Kmer64::MAX_K);
    let mut out = Vec::new();
    let mut i = 0;
    while i < seq.len() {
        while i < seq.len() && encode_base_checked(seq[i]).is_none() {
            i += 1;
        }
        let start = i;
        while i < seq.len() && encode_base_checked(seq[i]).is_some() {
            i += 1;
        }
        if i - start >= k {
            run_superkmers(seq, start, i, k, w, &mut out);
        }
    }
    out
}

/// Super-k-mer decomposition of one valid run `seq[run_start..run_end]`.
fn run_superkmers(
    seq: &[u8],
    run_start: usize,
    run_end: usize,
    k: usize,
    w: usize,
    out: &mut Vec<SuperKmer>,
) {
    // All canonical w-mers of the run, indexed by offset.
    let n_w = run_end - run_start - w + 1;
    let mut wmers = Vec::with_capacity(n_w);
    let mut km = Kmer64::zero(w);
    for (j, &b) in seq[run_start..run_end].iter().enumerate() {
        // EXPECT: the run was split on invalid bases, so every byte in it encodes.
        km.roll(encode_base_checked(b).expect("valid run"));
        if j + 1 >= w {
            wmers.push(km.canonical_value());
        }
    }

    // Sliding-window minimum over `k - w + 1` consecutive w-mers using a
    // monotone deque of offsets.
    let win = k - w + 1;
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut cur: Option<(u64, usize)> = None; // (minimizer, superkmer start window)
    let n_k = run_end - run_start - k + 1;
    for j in 0..wmers.len() {
        while let Some(&back) = deque.back() {
            if wmers[back] >= wmers[j] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(j);
        if j + 1 >= win {
            let kmer_idx = j + 1 - win; // window index among the run's k-mers
                                        // Evict offsets that fell out of the window [kmer_idx, kmer_idx + win).
                                        // EXPECT: `j` was pushed just above, so the deque is nonempty.
            while *deque.front().expect("nonempty") < kmer_idx {
                deque.pop_front();
            }
            // EXPECT: eviction cannot empty the deque — offset `j` (>= kmer_idx) was just pushed.
            let m = wmers[*deque.front().expect("nonempty")];
            match cur {
                Some((cm, cs)) if cm == m => {
                    // extend current super-k-mer
                    let _ = (cm, cs);
                }
                Some((cm, cs)) => {
                    out.push(SuperKmer {
                        minimizer: cm,
                        start: run_start + cs,
                        len: (kmer_idx - cs) + k - 1,
                    });
                    cur = Some((m, kmer_idx));
                }
                None => cur = Some((m, kmer_idx)),
            }
        }
    }
    if let Some((cm, cs)) = cur {
        out.push(SuperKmer {
            minimizer: cm,
            start: run_start + cs,
            len: (n_k - cs) + k - 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference decomposition via per-window O(k·w) minimizers.
    fn naive_superkmers(seq: &[u8], k: usize, w: usize) -> Vec<SuperKmer> {
        let mut mins: Vec<(usize, u64)> = Vec::new();
        if seq.len() >= k {
            for o in 0..=seq.len() - k {
                if let Some(m) = minimizer_of(seq, o, k, w) {
                    mins.push((o, m));
                }
            }
        }
        let mut out: Vec<SuperKmer> = Vec::new();
        for (o, m) in mins {
            match out.last_mut() {
                // Contiguity matters: a gap (N) must break the super-k-mer.
                Some(last) if last.minimizer == m && last.start + last.len - k + 1 == o => {
                    last.len += 1;
                }
                _ => out.push(SuperKmer {
                    minimizer: m,
                    start: o,
                    len: k,
                }),
            }
        }
        out
    }

    #[test]
    fn single_kmer_is_its_own_superkmer() {
        let sks = superkmers(b"ACGT", 4, 2);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].start, 0);
        assert_eq!(sks[0].len, 4);
        assert_eq!(sks[0].kmer_count(4), 1);
    }

    #[test]
    fn homopolymer_is_one_superkmer() {
        let sks = superkmers(b"AAAAAAAAAA", 4, 2);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].kmer_count(4), 7);
        assert_eq!(sks[0].len, 10);
    }

    #[test]
    fn lengths_tile_the_kmers() {
        let seq = b"ACGTTGCAAGCTTAGCGCGCGATATATTT";
        let k = 6;
        let sks = superkmers(seq, k, 3);
        let total: usize = sks.iter().map(|s| s.kmer_count(k)).sum();
        assert_eq!(total, seq.len() - k + 1);
        // Starts strictly increase and segments are contiguous.
        for pair in sks.windows(2) {
            assert_eq!(pair[0].start + pair[0].len - k + 1, pair[1].start);
        }
    }

    #[test]
    fn n_breaks_superkmers() {
        let sks = superkmers(b"AAAANAAAA", 4, 2);
        assert_eq!(sks.len(), 2);
        assert_eq!(sks[0].start, 0);
        assert_eq!(sks[1].start, 5);
    }

    #[test]
    fn matches_naive_on_fixed_input() {
        let seq = b"ACGTACGTTAGCGCGCGCATTTACGGGACGTACGATCGAT";
        for (k, w) in [(6, 3), (8, 4), (5, 2), (4, 4)] {
            assert_eq!(
                superkmers(seq, k, w),
                naive_superkmers(seq, k, w),
                "k={k} w={w}"
            );
        }
    }

    #[test]
    fn minimizer_none_on_window_with_n() {
        assert_eq!(minimizer_of(b"ACNT", 0, 4, 2), None);
    }

    proptest! {
        #[test]
        fn prop_matches_naive(
            seq in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..80),
            k in 3usize..10,
            dw in 0usize..5,
        ) {
            let w = (k - dw.min(k - 1)).max(1);
            prop_assert_eq!(superkmers(&seq, k, w), naive_superkmers(&seq, k, w));
        }

        #[test]
        fn prop_kmer_counts_tile(
            seq in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 10..80),
            k in 3usize..8,
        ) {
            let w = 3.min(k);
            let sks = superkmers(&seq, k, w);
            let total: usize = sks.iter().map(|s| s.kmer_count(k)).sum();
            prop_assert_eq!(total, seq.len() - k + 1);
        }
    }
}
