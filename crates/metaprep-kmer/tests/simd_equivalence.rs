//! Property-based equivalence tests for the runtime-dispatched SIMD layer.
//!
//! Every vectorized kernel must be bit-identical to its scalar reference on
//! arbitrary input — including lowercase and mixed-case bases, IUPAC
//! ambiguity codes (`R`, `Y`, `S`, `W`, ...), `N` runs that split
//! enumeration, and outright junk bytes. The tests run each kernel through
//! every backend [`simd::available_backends`] reports on this machine, so
//! on an AVX2 box the AVX2 lanes are exercised against scalar, on aarch64
//! the NEON lanes, and on anything else the suite still passes (scalar vs
//! scalar) rather than silently skipping.

use metaprep_kmer::enumerate::count_valid_kmers;
use metaprep_kmer::simd;
use metaprep_kmer::{
    classify_base, for_each_canonical_kmer, for_each_canonical_kmer_scalar, CanonicalKmers, Kmer,
    Kmer128, Kmer64,
};
use proptest::prelude::*;

/// Bytes weighted toward the cases that matter for classification: valid
/// bases in both cases, `N`/`n`, IUPAC ambiguity codes, and raw junk
/// (digits, punctuation, whitespace, high-bit bytes).
fn dna_ish_byte() -> impl Strategy<Value = u8> {
    const AMBIG: &[u8] = b"NnRYSWKMBDHVryswkmbdhvUu";
    (0u8..10, any::<u8>()).prop_map(|(class, raw)| match class {
        0..=3 => b"ACGT"[(raw % 4) as usize],
        4..=6 => b"acgt"[(raw % 4) as usize],
        7..=8 => AMBIG[raw as usize % AMBIG.len()],
        _ => raw,
    })
}

/// Reads long enough to cross the SIMD cutover (32 bytes) and several
/// vector widths, short enough to keep case counts high.
fn read() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(dna_ish_byte(), 0..300)
}

/// Collect `(canonical, offset)` pairs from the dispatched closure path.
fn enumerate_dispatched<K: Kmer>(seq: &[u8], k: usize) -> Vec<(K::Repr, usize)> {
    let mut out = Vec::new();
    for_each_canonical_kmer::<K>(seq, k, |v, off| out.push((v, off)));
    out
}

/// Collect `(canonical, offset)` pairs from the scalar reference path.
fn enumerate_scalar<K: Kmer>(seq: &[u8], k: usize) -> Vec<(K::Repr, usize)> {
    let mut out = Vec::new();
    for_each_canonical_kmer_scalar::<K>(seq, k, |v, off| out.push((v, off)));
    out
}

proptest! {
    /// The whole-read encode+classify kernel matches the scalar
    /// classification table byte-for-byte on every available backend.
    #[test]
    fn prop_encode_classify_matches_scalar(seq in read()) {
        let expected: Vec<u8> = seq.iter().map(|&b| classify_base(b)).collect();
        for backend in simd::available_backends() {
            let mut got = Vec::new();
            simd::encode_classify_with(backend, &seq, &mut got);
            prop_assert_eq!(
                &got, &expected,
                "backend {} disagrees with classify_base", backend
            );
        }
    }

    /// The vectorized byte scanner finds the same first occurrence as
    /// `Iterator::position` for every backend, needle and starting offset.
    #[test]
    fn prop_find_byte_matches_position(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        needle in any::<u8>(),
        from in 0usize..220,
    ) {
        let slice = &data[from.min(data.len())..];
        let expected = slice.iter().position(|&b| b == needle);
        for backend in simd::available_backends() {
            prop_assert_eq!(
                simd::find_byte_with(backend, slice, needle), expected,
                "backend {} disagrees on needle {:#04x}", backend, needle
            );
        }
    }

    /// Full enumeration through the dispatched path — SIMD classify feeding
    /// the run-splitting roll loop — yields exactly the scalar sequence of
    /// `(canonical, offset)` pairs, in order, for `Kmer64`-range k.
    #[test]
    fn prop_enumeration_dispatched_matches_scalar_k64(
        seq in read(),
        k in proptest::sample::select(vec![1usize, 2, 5, 16, 31, 32]),
    ) {
        prop_assert_eq!(
            enumerate_dispatched::<Kmer64>(&seq, k),
            enumerate_scalar::<Kmer64>(&seq, k)
        );
    }

    /// Same at the `Kmer128` representation sizes, including the k = 63
    /// upper boundary.
    #[test]
    fn prop_enumeration_dispatched_matches_scalar_k128(
        seq in read(),
        k in proptest::sample::select(vec![33usize, 47, 62, 63]),
    ) {
        prop_assert_eq!(
            enumerate_dispatched::<Kmer128>(&seq, k),
            enumerate_scalar::<Kmer128>(&seq, k)
        );
    }

    /// The iterator form agrees with the dispatched closure form at the
    /// k = 32 (`Kmer64`) representation boundary.
    #[test]
    fn prop_iterator_matches_closure_at_k32(seq in read()) {
        let via_iter: Vec<_> = CanonicalKmers::<Kmer64>::new(&seq, 32).collect();
        prop_assert_eq!(enumerate_dispatched::<Kmer64>(&seq, 32), via_iter);
    }

    /// ... and at the k = 63 (`Kmer128`) boundary.
    #[test]
    fn prop_iterator_matches_closure_at_k63(seq in read()) {
        let via_iter: Vec<_> = CanonicalKmers::<Kmer128>::new(&seq, 63).collect();
        prop_assert_eq!(enumerate_dispatched::<Kmer128>(&seq, 63), via_iter);
    }

    /// `count_valid_kmers` equals the enumeration length for in-range k —
    /// the honest-count contract after removing the silent `k.min(63)`
    /// clamp.
    #[test]
    fn prop_count_matches_enumeration(
        seq in read(),
        k in proptest::sample::select(vec![1usize, 15, 32, 33, 63]),
    ) {
        prop_assert_eq!(
            count_valid_kmers(&seq, k),
            enumerate_dispatched::<Kmer128>(&seq, k).len()
        );
    }
}

/// k = 64 exceeds `Kmer128::MAX_K` and must panic at every entry point
/// rather than silently clamp (the old `count_valid_kmers` bug).
#[test]
fn k64_panics_at_every_entry_point() {
    let seq = b"ACGT".repeat(32);
    assert_eq!(<Kmer128 as Kmer>::MAX_K, 63);
    for beyond in [64usize, 65] {
        assert!(
            std::panic::catch_unwind(|| count_valid_kmers(&seq, beyond)).is_err(),
            "count_valid_kmers accepted k={beyond}"
        );
        assert!(
            std::panic::catch_unwind(|| enumerate_dispatched::<Kmer128>(&seq, beyond)).is_err(),
            "for_each_canonical_kmer accepted k={beyond}"
        );
        assert!(
            std::panic::catch_unwind(|| CanonicalKmers::<Kmer128>::new(&seq, beyond)).is_err(),
            "CanonicalKmers::new accepted k={beyond}"
        );
    }
}

/// A callback that re-enters the enumerator must not poison the
/// thread-local code buffer: the outer dispatched pass falls back to
/// scalar only for the inner call, and both stay correct.
#[test]
fn reentrant_callback_stays_correct() {
    let seq: Vec<u8> = b"ACGTACGTacgtNNacgtACGTACGTACGTACGTTGCA".to_vec();
    let mut outer = Vec::new();
    let mut inner_total = 0usize;
    for_each_canonical_kmer::<Kmer64>(&seq, 4, |v, off| {
        outer.push((v, off));
        for_each_canonical_kmer::<Kmer64>(&seq, 4, |_, _| inner_total += 1);
    });
    let reference = enumerate_scalar::<Kmer64>(&seq, 4);
    assert_eq!(outer, reference);
    assert_eq!(inner_total, reference.len() * reference.len());
}
