//! Recorder trait, the no-op and in-memory recorders, and the per-task
//! instrumentation handle.
//!
//! Hot-path contract: instrumented code talks only to a [`TaskObs`],
//! which buffers into a plain `Vec` + fixed counter array owned by the
//! task's own thread. Nothing is shared while the pipeline runs — the
//! recorder sees one bulk [`Recorder::flush_task`] per task, at task
//! exit. With the [`NoopRecorder`] the flush drops everything, and the
//! per-tuple path (counters are batched per pass/range) costs nothing.

use crate::event::{CounterKind, EdgeDir, EdgeEvent, Event, SpanEvent};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Run-relative monotonic clock. Copies share the same origin, so every
/// task of a run stamps spans against one timeline.
#[derive(Copy, Clone, Debug)]
pub struct RunClock {
    origin: Instant,
}

impl RunClock {
    /// A clock whose origin is now.
    pub fn new() -> RunClock {
        RunClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for RunClock {
    fn default() -> Self {
        RunClock::new()
    }
}

/// Sink for run telemetry.
///
/// Implementations must tolerate concurrent calls from all simulated
/// tasks ([`Recorder::flush_task`] arrives from each task's thread) but
/// each `task` index flushes at most once per run.
pub trait Recorder: Sync {
    /// Whether events are kept. Instrumented code may skip *optional*
    /// detail (e.g. per-stage comm sub-spans) when this is `false`; the
    /// step spans that derive `StepTimings` are recorded regardless.
    fn enabled(&self) -> bool;

    /// The run clock all spans must be stamped against.
    fn clock(&self) -> RunClock;

    /// Bulk flush of one task's locally-buffered events at task exit.
    fn flush_task(
        &self,
        task: u32,
        spans: Vec<SpanEvent>,
        counters: Vec<(CounterKind, u64)>,
        edges: Vec<EdgeEvent>,
    );

    /// Run-level span recorded from the driver thread (e.g. IndexCreate).
    fn record_span(&self, span: SpanEvent);

    /// Run-level counter recorded from the driver thread (comm totals,
    /// memory model numbers). Values for the same `(task, kind)` add.
    fn record_counter(&self, task: u32, kind: CounterKind, value: u64);
}

/// The zero-cost default recorder: drops everything.
#[derive(Debug)]
pub struct NoopRecorder {
    clock: RunClock,
}

impl NoopRecorder {
    /// A fresh no-op recorder (its clock origin is now).
    pub fn new() -> NoopRecorder {
        NoopRecorder {
            clock: RunClock::new(),
        }
    }
}

impl Default for NoopRecorder {
    fn default() -> Self {
        NoopRecorder::new()
    }
}

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn clock(&self) -> RunClock {
        self.clock
    }

    #[inline]
    fn flush_task(
        &self,
        _task: u32,
        _spans: Vec<SpanEvent>,
        _counters: Vec<(CounterKind, u64)>,
        _edges: Vec<EdgeEvent>,
    ) {
    }

    #[inline]
    fn record_span(&self, _span: SpanEvent) {}

    #[inline]
    fn record_counter(&self, _task: u32, _kind: CounterKind, _value: u64) {}
}

/// One task's flushed telemetry.
#[derive(Debug, Default)]
struct TaskTrace {
    spans: Vec<SpanEvent>,
    counters: Vec<(CounterKind, u64)>,
    edges: Vec<EdgeEvent>,
}

/// Lock-free in-memory collector: one single-writer slot per simulated
/// task (each slot is set exactly once, by that task's own thread, when
/// the task flushes — mirroring the cluster simulator's rule that tasks
/// share no mutable state). Run-level events from the driver thread go
/// through a mutex that is never touched by task threads.
#[derive(Debug)]
pub struct MemRecorder {
    clock: RunClock,
    tasks: Vec<OnceLock<TaskTrace>>,
    run_events: Mutex<Vec<Event>>,
}

impl MemRecorder {
    /// Collector for a run of `tasks` simulated tasks.
    pub fn new(tasks: usize) -> MemRecorder {
        MemRecorder {
            clock: RunClock::new(),
            tasks: (0..tasks).map(|_| OnceLock::new()).collect(),
            run_events: Mutex::new(Vec::new()),
        }
    }

    /// Drain into an owned, export-ready event stream: the meta header,
    /// then all spans ordered by start time, then message edges ordered
    /// by timestamp, then counters aggregated per `(task, kind)`.
    pub fn into_events(self) -> Vec<Event> {
        let ntasks = self.tasks.len() as u32;
        let mut spans: Vec<Event> = Vec::new();
        let mut edges: Vec<Event> = Vec::new();
        let mut totals: std::collections::BTreeMap<(u32, CounterKind), u64> =
            std::collections::BTreeMap::new();

        for (task, slot) in self.tasks.into_iter().enumerate() {
            if let Some(trace) = slot.into_inner() {
                spans.extend(trace.spans.into_iter().map(Event::from));
                edges.extend(trace.edges.into_iter().map(Event::from));
                for (kind, value) in trace.counters {
                    *totals.entry((task as u32, kind)).or_insert(0) += value;
                }
            }
        }
        let run_events = self
            .run_events
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        for ev in run_events {
            match ev {
                Event::Counter { task, kind, value } => {
                    *totals.entry((task, kind)).or_insert(0) += value;
                }
                edge @ Event::Edge { .. } => edges.push(edge),
                other => spans.push(other),
            }
        }

        spans.sort_by_key(|e| match e {
            Event::Span { start_ns, task, .. } => (*start_ns, *task),
            _ => (0, 0),
        });
        edges.sort_by_key(|e| match e {
            Event::Edge {
                at_ns,
                dir,
                src,
                dst,
                seq,
                ..
            } => (*at_ns, *dir, *src, *dst, *seq),
            _ => (0, EdgeDir::Send, 0, 0, 0),
        });

        let mut out = Vec::with_capacity(1 + spans.len() + edges.len() + totals.len());
        out.push(Event::Meta { tasks: ntasks });
        out.extend(spans);
        out.extend(edges);
        out.extend(
            totals
                .into_iter()
                .map(|((task, kind), value)| Event::Counter { task, kind, value }),
        );
        out
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn clock(&self) -> RunClock {
        self.clock
    }

    fn flush_task(
        &self,
        task: u32,
        spans: Vec<SpanEvent>,
        counters: Vec<(CounterKind, u64)>,
        edges: Vec<EdgeEvent>,
    ) {
        // Flushes that cannot land in a slot (task out of range, or the
        // slot already taken by an earlier flush) are not silently lost:
        // the dropped event count is recorded per task so `report` and
        // `analyze` can flag the trace as incomplete. The drop path is
        // exceptional and one-shot, so taking the driver-side mutex here
        // does not contend with the lock-free happy path.
        let dropped = |n: usize| {
            self.run_events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Event::Counter {
                    task,
                    kind: CounterKind::EventsDropped,
                    value: n as u64,
                });
        };
        let n_events = spans.len() + counters.len() + edges.len();
        let Some(slot) = self.tasks.get(task as usize) else {
            dropped(n_events);
            return;
        };
        let ok = slot
            .set(TaskTrace {
                spans,
                counters,
                edges,
            })
            .is_ok();
        if !ok {
            dropped(n_events);
        }
    }

    fn record_span(&self, span: SpanEvent) {
        self.run_events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Event::from(span));
    }

    fn record_counter(&self, task: u32, kind: CounterKind, value: u64) {
        self.run_events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Event::Counter { task, kind, value });
    }
}

/// An open (started, not yet closed) span: just its start timestamp.
#[derive(Copy, Clone, Debug)]
pub struct OpenSpan {
    /// Start, nanoseconds since the run origin.
    pub start_ns: u64,
}

/// Per-task instrumentation handle. Owned by the task body; buffers
/// spans, counters, and message edges locally and flushes once via
/// [`TaskObs::finish`]. Also owns the task's Lamport clock: it ticks on
/// every span close and message send, and merges (`max(local, sender) +
/// 1`) on every message receive, so a receive is always causally after
/// its send.
pub struct TaskObs<'r> {
    rec: &'r dyn Recorder,
    clock: RunClock,
    task: u32,
    export: bool,
    lamport: u64,
    spans: Vec<SpanEvent>,
    edges: Vec<EdgeEvent>,
    counters: [u64; CounterKind::ALL.len()],
}

impl<'r> TaskObs<'r> {
    /// Handle for simulated task `task` recording into `rec`.
    pub fn new(rec: &'r dyn Recorder, task: u32) -> TaskObs<'r> {
        TaskObs {
            rec,
            clock: rec.clock(),
            task,
            export: rec.enabled(),
            lamport: 0,
            spans: Vec::new(),
            edges: Vec::new(),
            counters: [0; CounterKind::ALL.len()],
        }
    }

    /// The task this handle records for.
    pub fn task(&self) -> u32 {
        self.task
    }

    /// Whether the recorder keeps events — gate *optional* detail spans
    /// on this (the step spans themselves are always recorded, because
    /// `StepTimings` derives from them).
    #[inline]
    pub fn export_enabled(&self) -> bool {
        self.export
    }

    /// Start a span now.
    #[inline]
    pub fn open(&self) -> OpenSpan {
        OpenSpan {
            start_ns: self.clock.now_ns(),
        }
    }

    /// Close `open` now, recording it under `name`.
    #[inline]
    pub fn close(&mut self, open: OpenSpan, name: &'static str, pass: Option<u32>) {
        self.close_detail(open, name, pass, None);
    }

    /// Close `open` now with a `detail` discriminator (stage, round, …).
    #[inline]
    pub fn close_detail(
        &mut self,
        open: OpenSpan,
        name: &'static str,
        pass: Option<u32>,
        detail: Option<u32>,
    ) {
        let end_ns = self.clock.now_ns();
        self.lamport += 1;
        self.spans.push(SpanEvent {
            task: self.task,
            name,
            pass,
            detail,
            start_ns: open.start_ns,
            end_ns: end_ns.max(open.start_ns),
            lamport: self.lamport,
        });
    }

    /// Record a span of known duration anchored at `start` — used for
    /// CPU-time-summed measurements (KmerGen-I/O, KmerGen) whose duration
    /// is accumulated across pool threads rather than observed as one
    /// wall-clock interval. Returns the span's end timestamp so callers
    /// can anchor a follow-up span.
    pub fn span_with_dur(
        &mut self,
        start: OpenSpan,
        dur_ns: u64,
        name: &'static str,
        pass: Option<u32>,
    ) -> OpenSpan {
        let end_ns = start.start_ns + dur_ns;
        self.lamport += 1;
        self.spans.push(SpanEvent {
            task: self.task,
            name,
            pass,
            detail: None,
            start_ns: start.start_ns,
            end_ns,
            lamport: self.lamport,
        });
        OpenSpan { start_ns: end_ns }
    }

    /// Record the send endpoint of a message to `dst` and return the
    /// Lamport clock to ship with it. Ticks the local clock first
    /// (Lamport's rule: a send is a local event), so the receiver's
    /// merged clock is strictly greater than the value returned here.
    /// The edge is buffered only when the recorder keeps events; the
    /// clock still ticks so span stamps stay consistent either way.
    #[inline]
    pub fn record_send(
        &mut self,
        dst: u32,
        stage: &'static str,
        round: Option<u32>,
        bytes: u64,
        seq: u64,
    ) -> u64 {
        self.lamport += 1;
        if self.export {
            self.edges.push(EdgeEvent {
                dir: EdgeDir::Send,
                src: self.task,
                dst,
                stage,
                round,
                bytes,
                seq,
                lamport: self.lamport,
                at_ns: self.clock.now_ns(),
            });
        }
        self.lamport
    }

    /// Record the receive endpoint of a message from `src` carrying the
    /// sender's Lamport clock: the local clock becomes
    /// `max(local, sender) + 1`, so the recv event is causally after both
    /// the matching send and every prior local event.
    #[inline]
    pub fn record_recv(
        &mut self,
        src: u32,
        stage: &'static str,
        round: Option<u32>,
        bytes: u64,
        seq: u64,
        sender_lamport: u64,
    ) {
        self.lamport = self.lamport.max(sender_lamport) + 1;
        if self.export {
            self.edges.push(EdgeEvent {
                dir: EdgeDir::Recv,
                src,
                dst: self.task,
                stage,
                round,
                bytes,
                seq,
                lamport: self.lamport,
                at_ns: self.clock.now_ns(),
            });
        }
    }

    /// The task's current Lamport clock.
    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// The message edges recorded so far.
    pub fn edges(&self) -> &[EdgeEvent] {
        &self.edges
    }

    /// Add `delta` to a counter (a plain array add — no atomics, no
    /// allocation; call it with batched per-pass/per-range deltas).
    #[inline]
    pub fn add(&mut self, kind: CounterKind, delta: u64) {
        self.counters[kind.idx()] += delta;
    }

    /// Current value of a counter.
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.counters[kind.idx()]
    }

    /// The spans recorded so far (pipeline derives `StepTimings` here).
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Flush everything to the recorder (no-op recorder: drop).
    pub fn finish(self) {
        if !self.export {
            return;
        }
        let counters: Vec<(CounterKind, u64)> = CounterKind::ALL
            .iter()
            .filter(|k| self.counters[k.idx()] != 0)
            .map(|&k| (k, self.counters[k.idx()]))
            .collect();
        self.rec
            .flush_task(self.task, self.spans, counters, self.edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_keeps_nothing_but_clock_advances() {
        let rec = NoopRecorder::new();
        assert!(!rec.enabled());
        let a = rec.clock().now_ns();
        let b = rec.clock().now_ns();
        assert!(b >= a);
    }

    #[test]
    fn task_obs_buffers_and_flushes_once() {
        let rec = MemRecorder::new(2);
        {
            let mut obs = TaskObs::new(&rec, 1);
            let o = obs.open();
            obs.close(o, "KmerGen", Some(0));
            obs.add(CounterKind::TuplesEmitted, 10);
            obs.add(CounterKind::TuplesEmitted, 5);
            assert_eq!(obs.counter(CounterKind::TuplesEmitted), 15);
            assert_eq!(obs.spans().len(), 1);
            obs.finish();
        }
        let events = rec.into_events();
        assert_eq!(events[0], Event::Meta { tasks: 2 });
        assert!(matches!(
            &events[1],
            Event::Span { task: 1, name, .. } if name == "KmerGen"
        ));
        assert!(events.contains(&Event::Counter {
            task: 1,
            kind: CounterKind::TuplesEmitted,
            value: 15
        }));
    }

    #[test]
    fn span_with_dur_chains_anchors() {
        let rec = NoopRecorder::new();
        let mut obs = TaskObs::new(&rec, 0);
        let o = OpenSpan { start_ns: 100 };
        let next = obs.span_with_dur(o, 40, "KmerGen-I/O", Some(0));
        assert_eq!(next.start_ns, 140);
        obs.span_with_dur(next, 60, "KmerGen", Some(0));
        assert_eq!(obs.spans()[0].end_ns, 140);
        assert_eq!(obs.spans()[1].start_ns, 140);
        assert_eq!(obs.spans()[1].end_ns, 200);
    }

    #[test]
    fn driver_side_events_merge_with_task_counters() {
        let rec = MemRecorder::new(1);
        {
            let mut obs = TaskObs::new(&rec, 0);
            obs.add(CounterKind::BytesSent, 7);
            obs.finish();
        }
        rec.record_counter(0, CounterKind::BytesSent, 3);
        let events = rec.into_events();
        assert!(events.contains(&Event::Counter {
            task: 0,
            kind: CounterKind::BytesSent,
            value: 10
        }));
    }

    #[test]
    fn spans_sorted_by_start() {
        let rec = MemRecorder::new(2);
        rec.record_span(SpanEvent {
            task: 0,
            name: "IndexCreate",
            pass: None,
            detail: None,
            start_ns: 50,
            end_ns: 60,
            lamport: 0,
        });
        {
            let mut obs = TaskObs::new(&rec, 1);
            obs.span_with_dur(OpenSpan { start_ns: 10 }, 5, "KmerGen", None);
            obs.finish();
        }
        let events = rec.into_events();
        let starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { start_ns, .. } => Some(*start_ns),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![10, 50]);
    }

    #[test]
    fn lamport_ticks_on_spans_and_sends_and_merges_on_recv() {
        let rec = MemRecorder::new(2);
        let mut obs = TaskObs::new(&rec, 0);
        assert_eq!(obs.lamport(), 0);
        let o = obs.open();
        obs.close(o, "KmerGen", None);
        assert_eq!(obs.lamport(), 1);
        let shipped = obs.record_send(1, "KmerGen-Comm", Some(0), 32, 0);
        assert_eq!(shipped, 2);
        // A recv carrying a far-ahead sender clock jumps past it.
        obs.record_recv(1, "KmerGen-Comm", Some(0), 8, 0, 100);
        assert_eq!(obs.lamport(), 101);
        // A recv from a lagging sender still ticks.
        obs.record_recv(1, "KmerGen-Comm", Some(0), 8, 1, 3);
        assert_eq!(obs.lamport(), 102);
        assert_eq!(obs.edges().len(), 3);
        obs.finish();
        let n_edges = rec
            .into_events()
            .iter()
            .filter(|e| matches!(e, Event::Edge { .. }))
            .count();
        assert_eq!(n_edges, 3);
    }

    #[test]
    fn flushed_edges_survive_into_events() {
        let rec = MemRecorder::new(2);
        {
            let mut obs = TaskObs::new(&rec, 0);
            obs.record_send(1, "Merge-Comm", Some(2), 64, 0);
            obs.finish();
        }
        let events = rec.into_events();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Edge {
                dir: EdgeDir::Send,
                src: 0,
                dst: 1,
                round: Some(2),
                bytes: 64,
                ..
            }
        )));
    }

    #[test]
    fn noop_recorder_skips_edge_buffering_but_clock_still_ticks() {
        let rec = NoopRecorder::new();
        let mut obs = TaskObs::new(&rec, 0);
        let shipped = obs.record_send(1, "KmerGen-Comm", None, 8, 0);
        assert_eq!(shipped, 1);
        assert!(obs.edges().is_empty());
    }

    #[test]
    fn dropped_flushes_are_counted_per_task() {
        let rec = MemRecorder::new(1);
        {
            let mut obs = TaskObs::new(&rec, 0);
            let o = obs.open();
            obs.close(o, "KmerGen", None);
            obs.finish();
        }
        // Second flush for the same task: slot already taken, 2 events
        // (1 span + 1 counter) dropped.
        let span = SpanEvent {
            task: 0,
            name: "KmerGen",
            pass: None,
            detail: None,
            start_ns: 0,
            end_ns: 1,
            lamport: 1,
        };
        rec.flush_task(0, vec![span], vec![(CounterKind::TuplesEmitted, 1)], vec![]);
        // Out-of-range task: 1 span dropped, attributed to that task id.
        rec.flush_task(9, vec![span], vec![], vec![]);
        let events = rec.into_events();
        assert!(events.contains(&Event::Counter {
            task: 0,
            kind: CounterKind::EventsDropped,
            value: 2
        }));
        assert!(events.contains(&Event::Counter {
            task: 9,
            kind: CounterKind::EventsDropped,
            value: 1
        }));
    }
}
