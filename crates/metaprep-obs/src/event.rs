//! The event model: spans, counters, and the owned event stream.

/// Span names of the eight paper pipeline steps, in pipeline order.
/// Mirrors `metaprep_core::Step::all()` (asserted by a test over there);
/// kept here so exporters and reports can order rows without depending on
/// the pipeline crate.
pub const STEP_NAMES: [&str; 8] = [
    "KmerGen-I/O",
    "KmerGen",
    "KmerGen-Comm",
    "LocalSort",
    "LocalCC-Opt",
    "Merge-Comm",
    "MergeCC",
    "CC-I/O",
];

/// Span name of the sequential index-construction phase (paper Table 5).
pub const INDEX_CREATE: &str = "IndexCreate";

/// Span name of one stage of the staged all-to-all (`detail` = stage).
pub const ALLTOALL_STAGE: &str = "alltoall-stage";

/// One recorded interval: `step × task × pass`, with start/end timestamps
/// in nanoseconds against the run-relative monotonic clock.
///
/// `name` is a `&'static str` so recording a span never allocates; events
/// parsed back from a file use the owned [`Event::Span`] form instead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Simulated task (MPI rank) the span belongs to.
    pub task: u32,
    /// Step or phase name (one of [`STEP_NAMES`], [`INDEX_CREATE`], …).
    pub name: &'static str,
    /// Pass index for multi-pass steps, if applicable.
    pub pass: Option<u32>,
    /// Extra discriminator: all-to-all stage, merge round, …
    pub detail: Option<u32>,
    /// Start, nanoseconds since the run clock's origin.
    pub start_ns: u64,
    /// End, nanoseconds since the run clock's origin.
    pub end_ns: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (0 if end precedes start).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

macro_rules! counter_kinds {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// Everything the pipeline counts, one monotonically-accumulated
        /// value per `(task, kind)`.
        #[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
        pub enum CounterKind {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl CounterKind {
            /// All kinds, in declaration order.
            pub const ALL: [CounterKind; counter_kinds!(@count $($variant)+)] =
                [$(CounterKind::$variant),+];

            /// Stable wire name (JSONL `kind` field).
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(CounterKind::$variant => $name),+
                }
            }

            /// Parse a wire name back into a kind.
            // Option-returning lookup, not a FromStr parse with errors.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<CounterKind> {
                match s {
                    $($name => Some(CounterKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
    (@count $($tok:ident)+) => { [$(counter_kinds!(@unit $tok)),+].len() };
    (@unit $tok:ident) => { () };
}

counter_kinds! {
    TuplesEmitted => "tuples_emitted",
    TuplesReceived => "tuples_received",
    SortElements => "sort_elements",
    UfFinds => "uf_finds",
    UfUnions => "uf_unions",
    UfPathSplits => "uf_path_splits",
    MergeBytes => "merge_bytes",
    ChunkRecordsStreamed => "chunk_records_streamed",
    BytesSent => "bytes_sent",
    BytesReceived => "bytes_received",
    MessagesSent => "messages_sent",
    MessagesReceived => "messages_received",
    MemModeledBytes => "mem_modeled_bytes",
    MemPeakTupleBytes => "mem_peak_tuple_bytes",
    VmHwmBytes => "vm_hwm_bytes",
    RadixPassesRun => "radix_passes_run",
    RadixPassesPruned => "radix_passes_pruned",
    ScatterBytes => "scatter_bytes",
}

impl CounterKind {
    /// Dense index into per-task counter arrays.
    pub fn idx(&self) -> usize {
        *self as usize
    }
}

/// An owned run event — what exporters consume and the JSONL parser
/// produces. [`SpanEvent`]s convert losslessly into [`Event::Span`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Run header: number of simulated tasks.
    Meta {
        /// Simulated task count `P`.
        tasks: u32,
    },
    /// A completed interval (owned-name form of [`SpanEvent`]).
    Span {
        /// Simulated task the span belongs to.
        task: u32,
        /// Step or phase name.
        name: String,
        /// Pass index, if applicable.
        pass: Option<u32>,
        /// Stage / round discriminator, if applicable.
        detail: Option<u32>,
        /// Start ns since the run origin.
        start_ns: u64,
        /// End ns since the run origin.
        end_ns: u64,
    },
    /// Final accumulated value of one `(task, kind)` counter.
    Counter {
        /// Simulated task the counter belongs to.
        task: u32,
        /// What was counted.
        kind: CounterKind,
        /// Accumulated value.
        value: u64,
    },
}

impl From<SpanEvent> for Event {
    fn from(s: SpanEvent) -> Event {
        Event::Span {
            task: s.task,
            name: s.name.to_string(),
            pass: s.pass,
            detail: s.detail,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_kind_roundtrip() {
        for k in CounterKind::ALL {
            assert_eq!(CounterKind::from_str(k.as_str()), Some(k));
        }
        assert_eq!(CounterKind::from_str("nonsense"), None);
    }

    #[test]
    fn counter_idx_is_dense() {
        for (i, k) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(k.idx(), i);
        }
    }

    #[test]
    fn span_duration_saturates() {
        let s = SpanEvent {
            task: 0,
            name: "KmerGen",
            pass: None,
            detail: None,
            start_ns: 10,
            end_ns: 4,
        };
        assert_eq!(s.dur_ns(), 0);
    }

    #[test]
    fn step_names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for n in STEP_NAMES {
            assert!(seen.insert(n), "duplicate step name {n}");
        }
    }
}
