//! The event model: spans, counters, and the owned event stream.

/// Span names of the eight paper pipeline steps, in pipeline order.
/// Mirrors `metaprep_core::Step::all()` (asserted by a test over there);
/// kept here so exporters and reports can order rows without depending on
/// the pipeline crate.
pub const STEP_NAMES: [&str; 8] = [
    "KmerGen-I/O",
    "KmerGen",
    "KmerGen-Comm",
    "LocalSort",
    "LocalCC-Opt",
    "Merge-Comm",
    "MergeCC",
    "CC-I/O",
];

/// Span name of the sequential index-construction phase (paper Table 5).
pub const INDEX_CREATE: &str = "IndexCreate";

/// Span name of one stage of the staged all-to-all (`detail` = stage).
pub const ALLTOALL_STAGE: &str = "alltoall-stage";

/// Span name of a checkpoint write (`detail` = pass or merge round).
/// Deliberately NOT in [`STEP_NAMES`]: checkpointing is recovery
/// machinery, not a paper pipeline step, so analysis treats it as a
/// sub-span inside whatever step it interrupts.
pub const CHECKPOINT: &str = "checkpoint";

/// Span name covering a supervised task restart (checkpoint load +
/// state restore after an injected crash). Not in [`STEP_NAMES`], like
/// [`CHECKPOINT`].
pub const TASK_RESTART: &str = "task-restart";

/// Span name covering the driver-side adaptive pass planning (memory-model
/// inversion + plan-artifact persistence). Driver span like
/// [`INDEX_CREATE`]; not in [`STEP_NAMES`].
pub const PASS_PLAN: &str = "pass-plan";

/// One recorded interval: `step × task × pass`, with start/end timestamps
/// in nanoseconds against the run-relative monotonic clock.
///
/// `name` is a `&'static str` so recording a span never allocates; events
/// parsed back from a file use the owned [`Event::Span`] form instead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Simulated task (MPI rank) the span belongs to.
    pub task: u32,
    /// Step or phase name (one of [`STEP_NAMES`], [`INDEX_CREATE`], …).
    pub name: &'static str,
    /// Pass index for multi-pass steps, if applicable.
    pub pass: Option<u32>,
    /// Extra discriminator: all-to-all stage, merge round, …
    pub detail: Option<u32>,
    /// Start, nanoseconds since the run clock's origin.
    pub start_ns: u64,
    /// End, nanoseconds since the run clock's origin.
    pub end_ns: u64,
    /// Recording task's Lamport clock when the span closed (0 for spans
    /// recorded outside a task's causal timeline, e.g. driver-side).
    pub lamport: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (0 if end precedes start).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Which endpoint of a message an edge event records.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeDir {
    /// The sender-side (`MessageSend`) endpoint, recorded by `src`.
    Send,
    /// The receiver-side (`MessageRecv`) endpoint, recorded by `dst`.
    Recv,
}

/// One endpoint of one message: a `MessageSend` or `MessageRecv` event.
///
/// A matched send/recv pair — same `(src, dst, seq)` — is a causal edge
/// of the happens-before DAG. `stage` is a `&'static str` so recording an
/// edge never allocates; parsed-back edges use [`Event::Edge`]'s owned
/// form.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Send or receive endpoint.
    pub dir: EdgeDir,
    /// Sending task (MPI rank).
    pub src: u32,
    /// Receiving task (MPI rank).
    pub dst: u32,
    /// Communication stage the message belongs to (`KmerGen-Comm`,
    /// `Merge-Comm`, `CC-I/O`, …).
    pub stage: &'static str,
    /// All-to-all pass / merge-tree round discriminator, if applicable.
    pub round: Option<u32>,
    /// Payload size in bytes (as counted by `CommStats`).
    pub bytes: u64,
    /// Per-(src, dst) FIFO sequence number: the n-th send from `src` to
    /// `dst` matches the n-th recv — channels are FIFO and conservation
    /// is asserted, so both sides derive the same number independently.
    pub seq: u64,
    /// Recording endpoint's Lamport clock after this event.
    pub lamport: u64,
    /// Timestamp, nanoseconds since the run clock's origin.
    pub at_ns: u64,
}

macro_rules! counter_kinds {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// Everything the pipeline counts, one monotonically-accumulated
        /// value per `(task, kind)`.
        #[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
        pub enum CounterKind {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl CounterKind {
            /// All kinds, in declaration order.
            pub const ALL: [CounterKind; counter_kinds!(@count $($variant)+)] =
                [$(CounterKind::$variant),+];

            /// Stable wire name (JSONL `kind` field).
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(CounterKind::$variant => $name),+
                }
            }

            /// Parse a wire name back into a kind.
            // Option-returning lookup, not a FromStr parse with errors.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<CounterKind> {
                match s {
                    $($name => Some(CounterKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
    (@count $($tok:ident)+) => { [$(counter_kinds!(@unit $tok)),+].len() };
    (@unit $tok:ident) => { () };
}

counter_kinds! {
    TuplesEmitted => "tuples_emitted",
    TuplesReceived => "tuples_received",
    SortElements => "sort_elements",
    UfFinds => "uf_finds",
    UfUnions => "uf_unions",
    UfPathSplits => "uf_path_splits",
    MergeBytes => "merge_bytes",
    ChunkRecordsStreamed => "chunk_records_streamed",
    BytesSent => "bytes_sent",
    BytesReceived => "bytes_received",
    MessagesSent => "messages_sent",
    MessagesReceived => "messages_received",
    MemModeledBytes => "mem_modeled_bytes",
    MemPeakTupleBytes => "mem_peak_tuple_bytes",
    VmHwmBytes => "vm_hwm_bytes",
    RadixPassesRun => "radix_passes_run",
    RadixPassesPruned => "radix_passes_pruned",
    ScatterBytes => "scatter_bytes",
    EventsDropped => "events_dropped",
    FaultsInjected => "faults_injected",
    RetryAttempts => "retry_attempts",
    CheckpointWrites => "checkpoint_writes",
    TaskRestarts => "task_restarts",
    SketchFillPermille => "sketch_fill_permille",
    PresolveDroppedKmers => "presolve_dropped_kmers",
    PlannedPasses => "planned_passes",
    MemBudgetBytes => "mem_budget_bytes",
}

impl CounterKind {
    /// Dense index into per-task counter arrays.
    pub fn idx(&self) -> usize {
        *self as usize
    }
}

/// An owned run event — what exporters consume and the JSONL parser
/// produces. [`SpanEvent`]s convert losslessly into [`Event::Span`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Run header: number of simulated tasks.
    Meta {
        /// Simulated task count `P`.
        tasks: u32,
    },
    /// A completed interval (owned-name form of [`SpanEvent`]).
    Span {
        /// Simulated task the span belongs to.
        task: u32,
        /// Step or phase name.
        name: String,
        /// Pass index, if applicable.
        pass: Option<u32>,
        /// Stage / round discriminator, if applicable.
        detail: Option<u32>,
        /// Start ns since the run origin.
        start_ns: u64,
        /// End ns since the run origin.
        end_ns: u64,
        /// Recording task's Lamport clock at span close (0 = unstamped).
        lamport: u64,
    },
    /// One message endpoint (owned-stage form of [`EdgeEvent`]).
    Edge {
        /// Send or receive endpoint.
        dir: EdgeDir,
        /// Sending task.
        src: u32,
        /// Receiving task.
        dst: u32,
        /// Communication stage the message belongs to.
        stage: String,
        /// Pass / merge-round discriminator, if applicable.
        round: Option<u32>,
        /// Payload size in bytes.
        bytes: u64,
        /// Per-(src, dst) FIFO sequence number.
        seq: u64,
        /// Recording endpoint's Lamport clock after this event.
        lamport: u64,
        /// Timestamp, ns since the run origin.
        at_ns: u64,
    },
    /// Final accumulated value of one `(task, kind)` counter.
    Counter {
        /// Simulated task the counter belongs to.
        task: u32,
        /// What was counted.
        kind: CounterKind,
        /// Accumulated value.
        value: u64,
    },
}

impl From<SpanEvent> for Event {
    fn from(s: SpanEvent) -> Event {
        Event::Span {
            task: s.task,
            name: s.name.to_string(),
            pass: s.pass,
            detail: s.detail,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            lamport: s.lamport,
        }
    }
}

impl From<EdgeEvent> for Event {
    fn from(e: EdgeEvent) -> Event {
        Event::Edge {
            dir: e.dir,
            src: e.src,
            dst: e.dst,
            stage: e.stage.to_string(),
            round: e.round,
            bytes: e.bytes,
            seq: e.seq,
            lamport: e.lamport,
            at_ns: e.at_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_kind_roundtrip() {
        for k in CounterKind::ALL {
            assert_eq!(CounterKind::from_str(k.as_str()), Some(k));
        }
        assert_eq!(CounterKind::from_str("nonsense"), None);
    }

    #[test]
    fn counter_idx_is_dense() {
        for (i, k) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(k.idx(), i);
        }
    }

    #[test]
    fn span_duration_saturates() {
        let s = SpanEvent {
            task: 0,
            name: "KmerGen",
            pass: None,
            detail: None,
            start_ns: 10,
            end_ns: 4,
            lamport: 0,
        };
        assert_eq!(s.dur_ns(), 0);
    }

    #[test]
    fn edge_event_converts_losslessly() {
        let e = EdgeEvent {
            dir: EdgeDir::Send,
            src: 1,
            dst: 2,
            stage: "KmerGen-Comm",
            round: Some(0),
            bytes: 64,
            seq: 3,
            lamport: 9,
            at_ns: 1234,
        };
        match Event::from(e) {
            Event::Edge {
                dir,
                src,
                dst,
                stage,
                round,
                bytes,
                seq,
                lamport,
                at_ns,
            } => {
                assert_eq!(dir, EdgeDir::Send);
                assert_eq!((src, dst), (1, 2));
                assert_eq!(stage, "KmerGen-Comm");
                assert_eq!(round, Some(0));
                assert_eq!((bytes, seq, lamport, at_ns), (64, 3, 9, 1234));
            }
            other => panic!("expected Edge, got {other:?}"),
        }
    }

    #[test]
    fn step_names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for n in STEP_NAMES {
            assert!(seen.insert(n), "duplicate step name {n}");
        }
    }
}
