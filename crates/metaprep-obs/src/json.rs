//! Minimal JSON support: a recursive-descent parser and a string
//! escaper. The workspace vendors no serde, and the exporters only need
//! flat objects with string/number fields, so ~200 lines suffice.

use std::fmt::Write as _;

/// A parsed JSON value. Integers that fit `u64` keep exact precision in
/// [`Value::Int`] (span timestamps are nanosecond `u64`s the report must
/// reproduce exactly); anything with a fraction or exponent becomes
/// [`Value::Num`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal that fits in `u64` (kept exact).
    Int(u64),
    /// Any other number (fractional, exponent, or negative).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Exact `u64` if this is an integer literal in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True if this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Value::Obj(_))
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos = end;
                            // Surrogate pairs are not produced by our exporters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|sl| std::str::from_utf8(sl).ok())
                        .ok_or_else(|| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Append `s` as a JSON string literal (with quotes) onto `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(r#"{"type":"span","task":3,"start_ns":1234567890123,"x":null}"#)
            .expect("valid json");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("task").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("start_ns").and_then(Value::as_u64),
            Some(1234567890123)
        );
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn large_u64_is_exact() {
        let n = u64::MAX - 3;
        let v = parse(&format!("{{\"v\":{n}}}")).expect("valid json");
        assert_eq!(v.get("v").and_then(Value::as_u64), Some(n));
    }

    #[test]
    fn parses_nested_arrays_and_floats() {
        let v = parse(r#"[{"ts":1.5,"args":{"name":"task 0"}},[1,2,3],true,false]"#)
            .expect("valid json");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(
            arr[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("task 0")
        );
    }

    #[test]
    fn escape_roundtrip() {
        let original = "a\"b\\c\nd\te\u{1F600}";
        let mut enc = String::new();
        escape_into(&mut enc, original);
        let v = parse(&enc).expect("valid json");
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
    }
}
