//! Exporters: JSONL event stream and Chrome `trace_event` JSON.
//!
//! JSONL is the lossless format (exact nanosecond integers; `metaprep
//! report` consumes it and reproduces `StepTimings` totals bit-for-bit).
//! The Chrome format targets Perfetto / `chrome://tracing`: one
//! "process" per simulated task, one named thread row per step, complete
//! (`ph:"X"`) events with microsecond `ts`/`dur`, and final counter
//! values as `ph:"C"` events at the end of the trace.

use crate::event::{CounterKind, EdgeDir, Event, ALLTOALL_STAGE, INDEX_CREATE, STEP_NAMES};
use crate::json::{self, Value};
use std::fmt::Write as _;

/// Serialize events as one JSON object per line.
///
/// Wire schema (`version` 1):
/// `{"type":"meta","version":1,"tasks":N}`
/// `{"type":"span","task":T,"name":"KmerGen","pass":P,"detail":D,"start_ns":A,"end_ns":B,"lamport":L}`
/// (`pass`/`detail` omitted when absent; `lamport` omitted when 0)
/// `{"type":"send"|"recv","src":S,"dst":D,"stage":"KmerGen-Comm","round":R,"bytes":B,"seq":Q,"lamport":L,"at_ns":T}`
/// (`round` omitted when absent)
/// `{"type":"counter","task":T,"kind":"tuples_emitted","value":V}`
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        match ev {
            Event::Meta { tasks } => {
                let _ = writeln!(out, "{{\"type\":\"meta\",\"version\":1,\"tasks\":{tasks}}}");
            }
            Event::Span {
                task,
                name,
                pass,
                detail,
                start_ns,
                end_ns,
                lamport,
            } => {
                let _ = write!(out, "{{\"type\":\"span\",\"task\":{task},\"name\":");
                json::escape_into(&mut out, name);
                if let Some(p) = pass {
                    let _ = write!(out, ",\"pass\":{p}");
                }
                if let Some(d) = detail {
                    let _ = write!(out, ",\"detail\":{d}");
                }
                if *lamport != 0 {
                    let _ = write!(out, ",\"lamport\":{lamport}");
                }
                let _ = writeln!(out, ",\"start_ns\":{start_ns},\"end_ns\":{end_ns}}}");
            }
            Event::Edge {
                dir,
                src,
                dst,
                stage,
                round,
                bytes,
                seq,
                lamport,
                at_ns,
            } => {
                let typ = match dir {
                    EdgeDir::Send => "send",
                    EdgeDir::Recv => "recv",
                };
                let _ = write!(
                    out,
                    "{{\"type\":\"{typ}\",\"src\":{src},\"dst\":{dst},\"stage\":"
                );
                json::escape_into(&mut out, stage);
                if let Some(r) = round {
                    let _ = write!(out, ",\"round\":{r}");
                }
                let _ = writeln!(
                    out,
                    ",\"bytes\":{bytes},\"seq\":{seq},\"lamport\":{lamport},\"at_ns\":{at_ns}}}"
                );
            }
            Event::Counter { task, kind, value } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"counter\",\"task\":{task},\"kind\":\"{}\",\"value\":{value}}}",
                    kind.as_str()
                );
            }
        }
    }
    out
}

/// Parse a JSONL event stream written by [`write_jsonl`].
///
/// Unknown counter kinds and unknown `type`s are skipped (forward
/// compatibility); malformed lines are errors.
pub fn parse_jsonl(src: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let typ = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
        let field_u64 = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: missing integer \"{name}\"", lineno + 1))
        };
        match typ {
            "meta" => events.push(Event::Meta {
                tasks: field_u64("tasks")? as u32,
            }),
            "span" => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: missing \"name\"", lineno + 1))?
                    .to_string();
                events.push(Event::Span {
                    task: field_u64("task")? as u32,
                    name,
                    pass: v.get("pass").and_then(Value::as_u64).map(|p| p as u32),
                    detail: v.get("detail").and_then(Value::as_u64).map(|d| d as u32),
                    start_ns: field_u64("start_ns")?,
                    end_ns: field_u64("end_ns")?,
                    // Absent on pre-causal-tracing traces: default 0.
                    lamport: v.get("lamport").and_then(Value::as_u64).unwrap_or(0),
                });
            }
            "send" | "recv" => {
                let stage = v
                    .get("stage")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: missing \"stage\"", lineno + 1))?
                    .to_string();
                events.push(Event::Edge {
                    dir: if typ == "send" {
                        EdgeDir::Send
                    } else {
                        EdgeDir::Recv
                    },
                    src: field_u64("src")? as u32,
                    dst: field_u64("dst")? as u32,
                    stage,
                    round: v.get("round").and_then(Value::as_u64).map(|r| r as u32),
                    bytes: field_u64("bytes")?,
                    seq: field_u64("seq")?,
                    lamport: field_u64("lamport")?,
                    at_ns: field_u64("at_ns")?,
                });
            }
            "counter" => {
                let kind = v
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
                if let Some(kind) = CounterKind::from_str(kind) {
                    events.push(Event::Counter {
                        task: field_u64("task")? as u32,
                        kind,
                        value: field_u64("value")?,
                    });
                }
            }
            _ => {}
        }
    }
    Ok(events)
}

/// Stable thread-row order inside each task's "process": the eight paper
/// steps, then IndexCreate, then all-to-all stage sub-spans, then
/// anything else in order of first appearance.
fn known_row(name: &str) -> Option<usize> {
    STEP_NAMES.iter().position(|&s| s == name).or(match name {
        INDEX_CREATE => Some(STEP_NAMES.len()),
        ALLTOALL_STAGE => Some(STEP_NAMES.len() + 1),
        _ => None,
    })
}

/// Serialize events as Chrome `trace_event` JSON (the "JSON object
/// format": `{"traceEvents":[...]}`), loadable in Perfetto and
/// `chrome://tracing`. `pid` = simulated task, `tid` = step row, `ts` and
/// `dur` in microseconds; `ph:"X"` events are emitted in non-decreasing
/// `ts` order. Message edges become flow events: `ph:"s"` on the sender's
/// stage row at send time, `ph:"f"` (binding point `"e"`) on the
/// receiver's, joined by a shared `id` — Perfetto renders each matched
/// pair as an arrow between the two tasks.
pub fn write_chrome(events: &[Event]) -> String {
    // Assign rows and collect the tasks that actually appear.
    let mut row_names: Vec<&str> = STEP_NAMES.to_vec();
    row_names.push(INDEX_CREATE);
    row_names.push(ALLTOALL_STAGE);
    let mut tasks: Vec<u32> = Vec::new();
    let mut spans: Vec<(&Event, usize)> = Vec::new();
    let mut edges: Vec<(&Event, usize)> = Vec::new();
    let mut counters: Vec<&Event> = Vec::new();
    for ev in events {
        match ev {
            Event::Meta { tasks: n } => {
                for t in 0..*n {
                    if !tasks.contains(&t) {
                        tasks.push(t);
                    }
                }
            }
            Event::Span { task, name, .. } => {
                if !tasks.contains(task) {
                    tasks.push(*task);
                }
                let row = match known_row(name) {
                    Some(r) => r,
                    None => match row_names.iter().position(|&n| n == name.as_str()) {
                        Some(r) => r,
                        None => {
                            row_names.push(name.as_str());
                            row_names.len() - 1
                        }
                    },
                };
                spans.push((ev, row));
            }
            Event::Edge {
                dir,
                src,
                dst,
                stage,
                ..
            } => {
                let endpoint = match dir {
                    EdgeDir::Send => *src,
                    EdgeDir::Recv => *dst,
                };
                if !tasks.contains(&endpoint) {
                    tasks.push(endpoint);
                }
                let row = match known_row(stage) {
                    Some(r) => r,
                    None => match row_names.iter().position(|&n| n == stage.as_str()) {
                        Some(r) => r,
                        None => {
                            row_names.push(stage.as_str());
                            row_names.len() - 1
                        }
                    },
                };
                edges.push((ev, row));
            }
            Event::Counter { task, .. } => {
                if !tasks.contains(task) {
                    tasks.push(*task);
                }
                counters.push(ev);
            }
        }
    }
    tasks.sort_unstable();
    spans.sort_by_key(|(ev, _)| match ev {
        Event::Span { start_ns, task, .. } => (*start_ns, *task),
        _ => (0, 0),
    });
    let max_end_ns = spans
        .iter()
        .map(|(ev, _)| match ev {
            Event::Span { end_ns, .. } => *end_ns,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    let us = |ns: u64| ns as f64 / 1000.0;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };

    for &t in &tasks {
        push(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{t},\"tid\":0,\
                 \"args\":{{\"name\":\"task {t}\"}}}}"
            ),
        );
        for (row, name) in row_names.iter().enumerate() {
            let mut line = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{t},\"tid\":{row},\"args\":{{\"name\":"
            );
            json::escape_into(&mut line, name);
            line.push_str("}}");
            push(&mut out, &line);
        }
    }

    for (ev, row) in &spans {
        if let Event::Span {
            task,
            name,
            pass,
            detail,
            start_ns,
            end_ns,
            lamport,
        } = ev
        {
            let mut line = String::from("{\"name\":");
            json::escape_into(&mut line, name);
            let _ = write!(
                line,
                ",\"cat\":\"step\",\"ph\":\"X\",\"pid\":{task},\"tid\":{row},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
                us(*start_ns),
                us(end_ns.saturating_sub(*start_ns))
            );
            let mut sep = "";
            if let Some(p) = pass {
                let _ = write!(line, "\"pass\":{p}");
                sep = ",";
            }
            if let Some(d) = detail {
                let _ = write!(line, "{sep}\"detail\":{d}");
                sep = ",";
            }
            if *lamport != 0 {
                let _ = write!(line, "{sep}\"lamport\":{lamport}");
            }
            line.push_str("}}");
            push(&mut out, &line);
        }
    }

    // Message edges as flow events. A send/recv pair shares
    // `id` = "f<src>-<dst>-<seq>" (seq is per-(src,dst) FIFO order, so
    // the id is unique run-wide); Perfetto draws the arrow from the "s"
    // endpoint to the "f" endpoint.
    edges.sort_by_key(|(ev, _)| match ev {
        Event::Edge { at_ns, dir, .. } => (*at_ns, *dir),
        _ => (0, EdgeDir::Send),
    });
    for (ev, row) in &edges {
        if let Event::Edge {
            dir,
            src,
            dst,
            stage,
            round,
            bytes,
            seq,
            at_ns,
            ..
        } = ev
        {
            let (ph, bp, pid) = match dir {
                EdgeDir::Send => ("s", "", *src),
                EdgeDir::Recv => ("f", ",\"bp\":\"e\"", *dst),
            };
            let mut line = String::from("{\"name\":");
            json::escape_into(&mut line, stage);
            let _ = write!(
                line,
                ",\"cat\":\"msg\",\"ph\":\"{ph}\"{bp},\"id\":\"f{src}-{dst}-{seq}\",\
                 \"pid\":{pid},\"tid\":{row},\"ts\":{:.3},\"args\":{{\"bytes\":{bytes}",
                us(*at_ns)
            );
            if let Some(r) = round {
                let _ = write!(line, ",\"round\":{r}");
            }
            line.push_str("}}");
            push(&mut out, &line);
        }
    }

    // Final counter values as ph:"C" samples at the end of the trace, so
    // the X-event ts ordering stays monotonic.
    for ev in &counters {
        if let Event::Counter { task, kind, value } = ev {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{task},\"tid\":0,\
                     \"ts\":{:.3},\"args\":{{\"value\":{value}}}}}",
                    kind.as_str(),
                    us(max_end_ns)
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Schema check for a Chrome trace produced by [`write_chrome`] (also
/// accepts the bare-array variant). Verifies: valid JSON; every event is
/// an object with string `name`/`ph` and integer `pid`/`tid`; `ph:"X"`
/// events carry numeric `ts`/`dur` in non-decreasing `ts` order; flow
/// events (`ph:"s"/"t"/"f"`) carry a numeric `ts` and a non-empty string
/// `id`, and every flow `id` that starts is also finished (and vice
/// versa); every pid with `X` events has a `process_name` metadata
/// record.
pub fn validate_chrome(src: &str) -> Result<(), String> {
    let doc = json::parse(src)?;
    let events = match &doc {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(_) => doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing \"traceEvents\" array".to_string())?,
        _ => return Err("trace is neither an array nor an object".to_string()),
    };
    let mut last_ts = f64::NEG_INFINITY;
    let mut named_pids: Vec<u64> = Vec::new();
    let mut span_pids: Vec<u64> = Vec::new();
    let mut flow_starts: Vec<String> = Vec::new();
    let mut flow_finishes: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if !ev.is_obj() {
            return Err(format!("event {i} is not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing integer \"pid\""))?;
        ev.get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing integer \"tid\""))?;
        match ph {
            "M" => {
                if name == "process_name" && !named_pids.contains(&pid) {
                    named_pids.push(pid);
                }
            }
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric \"ts\""))?;
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X without numeric \"dur\""))?;
                if !(ts.is_finite() && dur.is_finite() && dur >= 0.0) {
                    return Err(format!("event {i}: non-finite ts/dur"));
                }
                if ts < last_ts {
                    return Err(format!("event {i}: ts {ts} decreases (previous {last_ts})"));
                }
                last_ts = ts;
                if !span_pids.contains(&pid) {
                    span_pids.push(pid);
                }
            }
            "C" => {
                ev.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: C without numeric \"ts\""))?;
            }
            "s" | "t" | "f" => {
                ev.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: flow without numeric \"ts\""))?;
                let id = ev
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: flow without string \"id\""))?;
                if id.is_empty() {
                    return Err(format!("event {i}: flow with empty \"id\""));
                }
                match ph {
                    "s" => flow_starts.push(id.to_string()),
                    "f" => flow_finishes.push(id.to_string()),
                    _ => {}
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for pid in span_pids {
        if !named_pids.contains(&pid) {
            return Err(format!("pid {pid} has spans but no process_name metadata"));
        }
    }
    for id in &flow_starts {
        if !flow_finishes.contains(id) {
            return Err(format!("flow {id} starts but never finishes"));
        }
    }
    for id in &flow_finishes {
        if !flow_starts.contains(id) {
            return Err(format!("flow {id} finishes but never starts"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EdgeEvent, SpanEvent};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Meta { tasks: 2 },
            Event::from(SpanEvent {
                task: 0,
                name: "KmerGen-I/O",
                pass: Some(0),
                detail: None,
                start_ns: 1_000,
                end_ns: 4_500,
                lamport: 1,
            }),
            Event::from(SpanEvent {
                task: 1,
                name: "KmerGen-Comm",
                pass: Some(0),
                detail: Some(1),
                start_ns: 5_000,
                end_ns: 9_000,
                lamport: 0,
            }),
            Event::from(EdgeEvent {
                dir: EdgeDir::Send,
                src: 0,
                dst: 1,
                stage: "KmerGen-Comm",
                round: Some(0),
                bytes: 256,
                seq: 0,
                lamport: 2,
                at_ns: 5_100,
            }),
            Event::from(EdgeEvent {
                dir: EdgeDir::Recv,
                src: 0,
                dst: 1,
                stage: "KmerGen-Comm",
                round: None,
                bytes: 256,
                seq: 0,
                lamport: 3,
                at_ns: 5_200,
            }),
            Event::Counter {
                task: 0,
                kind: CounterKind::TuplesEmitted,
                value: 12345,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let events = sample_events();
        let text = write_jsonl(&events);
        let back = parse_jsonl(&text).expect("parse back");
        assert_eq!(events, back);
    }

    #[test]
    fn jsonl_skips_unknown_types_and_kinds() {
        let src = "{\"type\":\"future\",\"x\":1}\n\
                   {\"type\":\"counter\",\"task\":0,\"kind\":\"not_a_kind\",\"value\":1}\n\
                   {\"type\":\"meta\",\"version\":1,\"tasks\":1}\n";
        let events = parse_jsonl(src).expect("parse");
        assert_eq!(events, vec![Event::Meta { tasks: 1 }]);
    }

    #[test]
    fn chrome_trace_validates() {
        let text = write_chrome(&sample_events());
        validate_chrome(&text).expect("schema-valid chrome trace");
    }

    #[test]
    fn chrome_trace_has_one_process_per_task() {
        let text = write_chrome(&sample_events());
        let doc = json::parse(&text).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents");
        let mut pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1]);
    }

    // Fixtures are one raw-string segment per JSON line (joined with
    // concat!) rather than one multi-line literal: the xtask lint
    // scanner counts braces per line and would otherwise see the
    // literal's closing `]}` as real code.
    #[test]
    fn validate_rejects_decreasing_ts() {
        let bad = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"task 0"}},"#,
            r#"{"name":"a","ph":"X","pid":0,"tid":0,"ts":10.0,"dur":1.0},"#,
            r#"{"name":"b","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":1.0}"#,
            r#"]}"#
        );
        assert!(validate_chrome(bad).is_err());
    }

    #[test]
    fn validate_rejects_unnamed_pid() {
        let bad = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"a","ph":"X","pid":7,"tid":0,"ts":1.0,"dur":1.0}"#,
            r#"]}"#
        );
        assert!(validate_chrome(bad).is_err());
    }

    #[test]
    fn chrome_emits_matched_flow_pair() {
        let text = write_chrome(&sample_events());
        let doc = json::parse(&text).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents");
        let flow = |ph: &str| {
            events
                .iter()
                .find(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .unwrap_or_else(|| panic!("no ph {ph} event"))
        };
        let s = flow("s");
        let f = flow("f");
        assert_eq!(
            s.get("id").and_then(Value::as_str),
            f.get("id").and_then(Value::as_str)
        );
        assert_eq!(s.get("pid").and_then(Value::as_u64), Some(0));
        assert_eq!(f.get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(f.get("bp").and_then(Value::as_str), Some("e"));
    }

    #[test]
    fn validate_rejects_unbalanced_flow() {
        let bad = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"m","ph":"s","id":"f0-1-0","pid":0,"tid":0,"ts":1.0}"#,
            r#"]}"#
        );
        assert!(validate_chrome(bad).is_err());
        let bad2 = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"m","ph":"f","bp":"e","id":"f0-1-0","pid":1,"tid":0,"ts":2.0}"#,
            r#"]}"#
        );
        assert!(validate_chrome(bad2).is_err());
    }

    #[test]
    fn validate_rejects_flow_without_id() {
        let bad = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"m","ph":"s","pid":0,"tid":0,"ts":1.0}"#,
            r#"]}"#
        );
        assert!(validate_chrome(bad).is_err());
    }
}
