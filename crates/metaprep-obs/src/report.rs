//! Run report: rebuild the paper-style summary (per-step max /
//! five-number across tasks, per-pass breakdown, communication volume,
//! memory model vs measured) from an exported event stream.

use crate::event::{CounterKind, Event, INDEX_CREATE, STEP_NAMES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Five-number summary (min, lower quartile, median, upper quartile,
/// max) using `f64::total_cmp`, so NaNs order deterministically instead
/// of panicking. Empty input yields all zeros.
pub fn five_number(xs: &[f64]) -> [f64; 5] {
    if xs.is_empty() {
        return [0.0; 5];
    }
    let mut xs = xs.to_vec();
    xs.sort_by(f64::total_cmp);
    let q = |f: f64| xs[((xs.len() - 1) as f64 * f).round() as usize];
    [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)]
}

/// Aggregates reconstructed from one run's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Simulated task count (from the meta header, else max task + 1).
    pub tasks: u32,
    /// Per paper step: summed span nanoseconds per task (index = task).
    step_ns: BTreeMap<String, Vec<u64>>,
    /// Per `(pass, step)`: summed span nanoseconds per task.
    pass_step_ns: BTreeMap<(u32, String), Vec<u64>>,
    /// Total nanoseconds of the sequential IndexCreate phase.
    pub index_create_ns: u64,
    /// Summed nanoseconds of spans that are neither paper steps nor
    /// IndexCreate (all-to-all stages, streaming sub-phases), by name.
    other_ns: BTreeMap<String, u64>,
    /// Final counter values per `(task, kind)`.
    counters: BTreeMap<(u32, CounterKind), u64>,
}

impl RunSummary {
    /// Build a summary from an event stream (order-insensitive; repeated
    /// spans/counters for the same key accumulate).
    pub fn from_events(events: &[Event]) -> RunSummary {
        let mut tasks = 0u32;
        for ev in events {
            match ev {
                Event::Meta { tasks: n } => tasks = tasks.max(*n),
                Event::Span { task, .. } | Event::Counter { task, .. } => {
                    tasks = tasks.max(task + 1)
                }
                Event::Edge { src, dst, .. } => tasks = tasks.max(src.max(dst) + 1),
            }
        }
        let mut s = RunSummary {
            tasks,
            step_ns: BTreeMap::new(),
            pass_step_ns: BTreeMap::new(),
            index_create_ns: 0,
            other_ns: BTreeMap::new(),
            counters: BTreeMap::new(),
        };
        for ev in events {
            match ev {
                Event::Meta { .. } => {}
                // Message edges carry causal structure, not durations;
                // the analysis module consumes them.
                Event::Edge { .. } => {}
                Event::Span {
                    task,
                    name,
                    pass,
                    start_ns,
                    end_ns,
                    ..
                } => {
                    let dur = end_ns.saturating_sub(*start_ns);
                    if STEP_NAMES.contains(&name.as_str()) {
                        let per_task = s
                            .step_ns
                            .entry(name.clone())
                            .or_insert_with(|| vec![0; tasks as usize]);
                        per_task[*task as usize] += dur;
                        if let Some(p) = pass {
                            let per_task = s
                                .pass_step_ns
                                .entry((*p, name.clone()))
                                .or_insert_with(|| vec![0; tasks as usize]);
                            per_task[*task as usize] += dur;
                        }
                    } else if name == INDEX_CREATE {
                        s.index_create_ns += dur;
                    } else {
                        *s.other_ns.entry(name.clone()).or_insert(0) += dur;
                    }
                }
                Event::Counter { task, kind, value } => {
                    *s.counters.entry((*task, *kind)).or_insert(0) += value;
                }
            }
        }
        s
    }

    /// Exact per-task summed nanoseconds for one paper step, if any span
    /// of that step was recorded.
    pub fn step_task_ns(&self, name: &str) -> Option<&[u64]> {
        self.step_ns.get(name).map(Vec::as_slice)
    }

    /// Per-task pipeline totals (sum of the eight paper steps), exact ns.
    pub fn pipeline_task_ns(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.tasks as usize];
        for name in STEP_NAMES {
            if let Some(per_task) = self.step_ns.get(name) {
                for (t, ns) in per_task.iter().enumerate() {
                    totals[t] += ns;
                }
            }
        }
        totals
    }

    /// Final value of one `(task, kind)` counter (0 if never emitted).
    pub fn counter(&self, task: u32, kind: CounterKind) -> u64 {
        self.counters.get(&(task, kind)).copied().unwrap_or(0)
    }

    /// Sum of a counter across all tasks.
    pub fn counter_total(&self, kind: CounterKind) -> u64 {
        self.counters
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Passes that appear in the per-pass breakdown, ascending.
    pub fn passes(&self) -> Vec<u32> {
        let mut ps: Vec<u32> = self.pass_step_ns.keys().map(|(p, _)| *p).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Render the paper-style plain-text report.
    pub fn render(&self) -> String {
        let sec = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        let _ = writeln!(out, "METAPREP run report — {} simulated tasks", self.tasks);
        let _ = writeln!(out);

        // Per-step wall time: max across tasks drives the pipeline's
        // critical path (the paper reports max), five-number shows skew.
        let _ = writeln!(
            out,
            "{:<14} {:>10}   {:>9} {:>9} {:>9} {:>9} {:>9}",
            "step", "max (s)", "min", "q1", "median", "q3", "max"
        );
        for name in STEP_NAMES {
            let per_task = match self.step_ns.get(name) {
                Some(v) => v,
                None => continue,
            };
            let secs: Vec<f64> = per_task.iter().map(|&ns| sec(ns)).collect();
            let [mn, q1, med, q3, mx] = five_number(&secs);
            let _ = writeln!(
                out,
                "{name:<14} {mx:>10.4}   {mn:>9.4} {q1:>9.4} {med:>9.4} {q3:>9.4} {mx:>9.4}"
            );
        }
        let totals: Vec<f64> = self.pipeline_task_ns().iter().map(|&ns| sec(ns)).collect();
        if totals.iter().any(|&t| t > 0.0) {
            let [mn, q1, med, q3, mx] = five_number(&totals);
            let _ = writeln!(
                out,
                "{:<14} {mx:>10.4}   {mn:>9.4} {q1:>9.4} {med:>9.4} {q3:>9.4} {mx:>9.4}",
                "pipeline"
            );
        }
        if self.index_create_ns > 0 {
            let _ = writeln!(
                out,
                "{:<14} {:>10.4}   (sequential)",
                "IndexCreate",
                sec(self.index_create_ns)
            );
        }

        let passes = self.passes();
        if !passes.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "per-pass breakdown (max across tasks, s)");
            let _ = write!(out, "{:<6}", "pass");
            for name in STEP_NAMES {
                let _ = write!(out, " {name:>12}");
            }
            let _ = writeln!(out);
            for p in passes {
                let _ = write!(out, "{p:<6}");
                for name in STEP_NAMES {
                    let max_ns = self
                        .pass_step_ns
                        .get(&(p, name.to_string()))
                        .map(|v| v.iter().copied().max().unwrap_or(0))
                        .unwrap_or(0);
                    let _ = write!(out, " {:>12.4}", sec(max_ns));
                }
                let _ = writeln!(out);
            }
        }

        let comm = [
            CounterKind::BytesSent,
            CounterKind::BytesReceived,
            CounterKind::MessagesSent,
            CounterKind::MessagesReceived,
        ];
        if comm.iter().any(|&k| self.counter_total(k) > 0) {
            let _ = writeln!(out);
            let _ = writeln!(out, "communication (totals across tasks)");
            for k in comm {
                let _ = writeln!(out, "  {:<20} {:>16}", k.as_str(), self.counter_total(k));
            }
        }

        let work = [
            CounterKind::TuplesEmitted,
            CounterKind::TuplesReceived,
            CounterKind::SortElements,
            CounterKind::UfFinds,
            CounterKind::UfUnions,
            CounterKind::UfPathSplits,
            CounterKind::MergeBytes,
            CounterKind::ChunkRecordsStreamed,
        ];
        if work.iter().any(|&k| self.counter_total(k) > 0) {
            let _ = writeln!(out);
            let _ = writeln!(out, "work counters (totals across tasks)");
            for k in work {
                let v = self.counter_total(k);
                if v > 0 {
                    let _ = writeln!(out, "  {:<24} {v:>16}", k.as_str());
                }
            }
        }

        let mem = [
            (CounterKind::MemModeledBytes, "modeled peak (model)"),
            (CounterKind::MemPeakTupleBytes, "measured peak tuples"),
            (CounterKind::VmHwmBytes, "process VmHWM"),
        ];
        if mem.iter().any(|&(k, _)| self.counter_total(k) > 0) {
            let _ = writeln!(out);
            let _ = writeln!(out, "memory (bytes)");
            for (k, label) in mem {
                let v = self.counter_total(k);
                if v > 0 {
                    let _ = writeln!(out, "  {label:<24} {v:>16}");
                }
            }
        }

        let presolve = [
            (CounterKind::PlannedPasses, "planned passes"),
            (CounterKind::MemBudgetBytes, "memory budget (B)"),
            (CounterKind::SketchFillPermille, "sketch fill (permille)"),
            (CounterKind::PresolveDroppedKmers, "k-mers presolved away"),
        ];
        // `planned_passes` alone (every run plans) is not worth a section;
        // the budget/sketch/drop counters only exist when the tier is on.
        if presolve[1..]
            .iter()
            .any(|&(k, _)| self.counter_total(k) > 0)
        {
            let _ = writeln!(out);
            let _ = writeln!(out, "presolve & pass planning");
            for (k, label) in presolve {
                let v = self.counter_total(k);
                if v > 0 {
                    let _ = writeln!(out, "  {label:<24} {v:>16}");
                }
            }
        }

        if !self.other_ns.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "other instrumented phases (summed, s)");
            for (name, ns) in &self.other_ns {
                let _ = writeln!(out, "  {name:<24} {:>12.4}", sec(*ns));
            }
        }

        let dropped = self.counter_total(CounterKind::EventsDropped);
        if dropped > 0 {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "WARNING: trace is incomplete — {dropped} event(s) dropped by the recorder"
            );
            for t in 0..self.tasks {
                let d = self.counter(t, CounterKind::EventsDropped);
                if d > 0 {
                    let _ = writeln!(out, "  task {t:<4} {d:>12} dropped");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanEvent;

    #[test]
    fn five_number_handles_nan_without_panicking() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        let [mn, _, _, _, mx] = five_number(&xs);
        // total_cmp orders NaN above +inf, so max is NaN but min is real.
        assert_eq!(mn, 1.0);
        assert!(mx.is_nan());
        assert_eq!(five_number(&[]), [0.0; 5]);
        assert_eq!(five_number(&[7.0]), [7.0; 5]);
    }

    fn span(task: u32, name: &'static str, pass: u32, start: u64, end: u64) -> Event {
        Event::from(SpanEvent {
            task,
            name,
            pass: Some(pass),
            detail: None,
            start_ns: start,
            end_ns: end,
            lamport: 0,
        })
    }

    #[test]
    fn summary_accumulates_passes_and_is_exact() {
        let events = vec![
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 0, 100),
            span(0, "KmerGen", 1, 200, 350),
            span(1, "KmerGen", 0, 0, 90),
            span(1, "LocalSort", 0, 90, 100),
            Event::Counter {
                task: 0,
                kind: CounterKind::TuplesEmitted,
                value: 5,
            },
            Event::Counter {
                task: 1,
                kind: CounterKind::TuplesEmitted,
                value: 7,
            },
        ];
        let s = RunSummary::from_events(&events);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.step_task_ns("KmerGen"), Some(&[250u64, 90][..]));
        assert_eq!(s.pipeline_task_ns(), vec![250, 100]);
        assert_eq!(s.passes(), vec![0, 1]);
        assert_eq!(s.counter_total(CounterKind::TuplesEmitted), 12);
        assert_eq!(s.counter(1, CounterKind::TuplesEmitted), 7);
        let text = s.render();
        assert!(text.contains("KmerGen"));
        assert!(text.contains("per-pass breakdown"));
        assert!(text.contains("tuples_emitted"));
    }

    #[test]
    fn index_create_and_other_spans_kept_separate() {
        let events = vec![
            Event::Span {
                task: 0,
                name: "IndexCreate".to_string(),
                pass: None,
                detail: None,
                start_ns: 0,
                end_ns: 1_000,
                lamport: 0,
            },
            Event::Span {
                task: 0,
                name: "alltoall-stage".to_string(),
                pass: Some(0),
                detail: Some(2),
                start_ns: 0,
                end_ns: 10,
                lamport: 0,
            },
        ];
        let s = RunSummary::from_events(&events);
        assert_eq!(s.index_create_ns, 1_000);
        assert_eq!(s.pipeline_task_ns(), vec![0]);
        assert!(s.render().contains("alltoall-stage"));
    }

    #[test]
    fn presolve_counters_render_their_own_section() {
        let counter = |kind, value| Event::Counter {
            task: 0,
            kind,
            value,
        };
        let events = vec![
            Event::Meta { tasks: 1 },
            counter(CounterKind::PlannedPasses, 3),
            counter(CounterKind::MemBudgetBytes, 1 << 20),
            counter(CounterKind::SketchFillPermille, 42),
            counter(CounterKind::PresolveDroppedKmers, 999),
        ];
        let text = RunSummary::from_events(&events).render();
        assert!(text.contains("presolve & pass planning"));
        assert!(text.contains("planned passes"));
        assert!(text.contains("k-mers presolved away"));
        assert!(text.contains("999"));
        // The pass count alone (every run plans) does not open the section.
        let plain = vec![
            Event::Meta { tasks: 1 },
            counter(CounterKind::PlannedPasses, 2),
        ];
        assert!(!RunSummary::from_events(&plain)
            .render()
            .contains("presolve & pass planning"));
    }

    #[test]
    fn dropped_events_surface_as_warning() {
        let events = vec![
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 0, 100),
            Event::Counter {
                task: 1,
                kind: CounterKind::EventsDropped,
                value: 3,
            },
        ];
        let s = RunSummary::from_events(&events);
        let text = s.render();
        assert!(text.contains("WARNING: trace is incomplete"));
        assert!(text.contains("3 dropped") || text.contains("3"));
        // A clean trace has no warning.
        let clean = RunSummary::from_events(&[Event::Meta { tasks: 1 }]);
        assert!(!clean.render().contains("WARNING"));
    }
}
