//! Run telemetry for METAPREP: structured spans and counters with JSONL
//! and Chrome `trace_event` export, plus a paper-style run report.
//!
//! The paper's entire evaluation (Tables 5–9, Figures 5–9) is built from
//! per-task, per-step, per-pass measurements. This crate turns every run
//! into that raw material:
//!
//! * [`SpanEvent`] — one `step × task × pass` interval with start/end
//!   timestamps against a run-relative monotonic clock ([`RunClock`]);
//! * [`CounterKind`] — tuple, sort, union-find, communication and memory
//!   counters, batched per task;
//! * [`Recorder`] — the sink trait. [`NoopRecorder`] is the zero-cost
//!   default; [`MemRecorder`] is a lock-free in-memory collector with one
//!   single-writer slot per simulated task (consistent with the cluster
//!   simulator's no-shared-memory rule: tasks never touch each other's
//!   buffers, and the run thread reads them only after the task flushed);
//! * [`TaskObs`] — the per-task handle the pipeline instruments with. It
//!   buffers locally (plain `Vec` + fixed counter array, no atomics, no
//!   locks) and flushes **once** when the task body ends, so the per-tuple
//!   hot path never sees an allocation or a shared write;
//! * [`export`] — JSONL event stream and Perfetto-loadable Chrome
//!   `trace_event` JSON (one "process" per simulated task, one row per
//!   step), with a schema validator used by CI's bench smoke;
//! * [`report`] — reconstructs per-step/per-pass/per-task aggregates from
//!   an event stream and renders the run summary table behind
//!   `metaprep report`;
//! * [`analysis`] — causal analysis over the same stream: matches
//!   [`EdgeEvent`] send/recv pairs into a happens-before DAG (per-rank
//!   Lamport clocks, FIFO sequence numbers), extracts the critical path
//!   (its segments tile the run makespan exactly), and derives per-stage
//!   load-imbalance factors, stragglers, Gantt rows and byte timelines
//!   behind `metaprep analyze`.

pub mod analysis;
pub mod event;
pub mod export;
pub mod json;
pub mod rec;
pub mod report;

pub use analysis::{FaultTotals, PresolveTotals, TraceAnalysis};
pub use event::{CounterKind, EdgeDir, EdgeEvent, Event, SpanEvent};
pub use rec::{MemRecorder, NoopRecorder, OpenSpan, Recorder, RunClock, TaskObs};
pub use report::RunSummary;
