//! Causal trace analysis: happens-before reconstruction, critical-path
//! extraction, and load-imbalance diagnostics.
//!
//! Input is a recorded event stream (spans + message edges + counters,
//! as parsed from a JSONL trace). The analysis
//!
//! * matches `MessageSend`/`MessageRecv` endpoints into causal edges and
//!   checks conservation (every send has exactly one recv) and causality
//!   (Lamport order never decreases across an edge, and is strictly
//!   increasing along each FIFO channel);
//! * extracts the **critical path**: a chain of span / idle / transfer
//!   segments that tiles the run interval `[global_start, global_end]`
//!   exactly, so the segment durations sum to the run makespan **to the
//!   nanosecond** by construction. The walk goes backwards from the
//!   globally-last-ending span; inside a span it follows the latest
//!   message arrival back to the sending rank, otherwise it falls
//!   through to the previous span on the same rank (gaps become idle
//!   segments);
//! * computes per-stage load-imbalance statistics (max/mean per-rank
//!   time and the paper-style imbalance factor `max / mean`), straggler
//!   rankings, per-rank Gantt rows, and a bytes-over-time timeline
//!   against the modeled memory footprint.

use crate::event::{CounterKind, EdgeDir, Event, INDEX_CREATE, STEP_NAMES};
use crate::report::five_number;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded span, owned form, retained for analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SpanRec {
    task: u32,
    name: String,
    pass: Option<u32>,
    start_ns: u64,
    end_ns: u64,
    lamport: u64,
    /// Whether the span is a paper step or IndexCreate (sub-spans such
    /// as all-to-all stages are nested inside these and excluded from
    /// the critical-path tiling so attribution stays in step terms).
    top_level: bool,
}

/// A matched send/recv pair: one causal edge of the happens-before DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessagePair {
    /// Sending task.
    pub src: u32,
    /// Receiving task.
    pub dst: u32,
    /// Communication stage (`KmerGen-Comm`, `Merge-Comm`, `CC-I/O`, …).
    pub stage: String,
    /// Pass / merge-round discriminator, if any.
    pub round: Option<u32>,
    /// Payload bytes.
    pub bytes: u64,
    /// Per-(src, dst) FIFO sequence number.
    pub seq: u64,
    /// Sender's Lamport clock at the send.
    pub send_lamport: u64,
    /// Receiver's Lamport clock after the recv.
    pub recv_lamport: u64,
    /// Send timestamp (ns since run origin).
    pub send_ns: u64,
    /// Receive timestamp (ns since run origin).
    pub recv_ns: u64,
}

/// What one critical-path segment was spent on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// Executing (part of) a span.
    Span {
        /// Step or phase name.
        name: String,
        /// Pass index, if any.
        pass: Option<u32>,
    },
    /// On-rank gap with no recorded span (waiting / uninstrumented).
    Idle,
    /// A message in flight: the path hops from the receiving rank back
    /// to the sending rank across this interval.
    Transfer {
        /// Sending task.
        src: u32,
        /// Stage of the message followed.
        stage: String,
        /// Bytes carried by the message followed.
        bytes: u64,
    },
    /// Time before the rank's first recorded activity.
    Startup,
}

/// One tile of the critical path: `[start_ns, end_ns]` attributed to
/// `task`. Consecutive segments share endpoints, so the whole path tiles
/// the run interval exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpSegment {
    /// Task the interval is attributed to (the *receiving* task for
    /// transfers).
    pub task: u32,
    /// Segment start (ns since run origin).
    pub start_ns: u64,
    /// Segment end (ns since run origin).
    pub end_ns: u64,
    /// What the time was spent on.
    pub kind: SegmentKind,
}

impl CpSegment {
    /// Segment duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Aggregation label for the per-stage attribution table.
    pub fn label(&self) -> String {
        match &self.kind {
            SegmentKind::Span { name, .. } => name.clone(),
            SegmentKind::Idle => "(idle)".to_string(),
            SegmentKind::Transfer { stage, .. } => format!("(transfer) {stage}"),
            SegmentKind::Startup => "(startup)".to_string(),
        }
    }
}

/// Per-stage load-imbalance statistics across ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct StageImbalance {
    /// Step name.
    pub stage: String,
    /// Per-task summed nanoseconds (index = task).
    pub per_task_ns: Vec<u64>,
    /// Max across tasks.
    pub max_ns: u64,
    /// Mean across tasks.
    pub mean_ns: f64,
    /// Paper-style imbalance factor `max / mean` (1.0 = perfectly
    /// balanced; 0 when the stage never ran).
    pub factor: f64,
    /// Task holding the max.
    pub slowest_task: u32,
}

/// One straggler observation: a `(stage, task)` cell that exceeds the
/// stage mean.
#[derive(Clone, Debug, PartialEq)]
pub struct Straggler {
    /// Step name.
    pub stage: String,
    /// The slow task.
    pub task: u32,
    /// That task's time in the stage.
    pub ns: u64,
    /// Excess over the stage mean, in nanoseconds.
    pub excess_ns: u64,
    /// `ns / mean` for the stage.
    pub over_mean: f64,
}

/// One bucket of the bytes-over-time timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineBucket {
    /// Bucket start (ns since run origin).
    pub start_ns: u64,
    /// Bytes received (materialized) during the bucket.
    pub bytes_recv: u64,
    /// Cumulative bytes received up to the bucket's end.
    pub cumulative: u64,
}

/// Fault-injection and recovery totals summed across tasks
/// ([`TraceAnalysis::fault_totals`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Faults the plan injected (drops, delays, duplicates, reorders,
    /// crashes), as counted by the injecting task.
    pub faults_injected: u64,
    /// Delivery retries after injected drops.
    pub retry_attempts: u64,
    /// Checkpoints persisted at pass/merge boundaries.
    pub checkpoint_writes: u64,
    /// Supervised task restarts after injected crashes.
    pub task_restarts: u64,
}

impl FaultTotals {
    /// True when any fault-plane activity was recorded.
    pub fn any(&self) -> bool {
        self.faults_injected > 0
            || self.retry_attempts > 0
            || self.checkpoint_writes > 0
            || self.task_restarts > 0
    }
}

/// Presolve-tier and pass-planner totals
/// ([`TraceAnalysis::presolve_totals`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PresolveTotals {
    /// Pass count the run executed (planner-chosen or configured).
    pub planned_passes: u64,
    /// The `--memory-budget` the planner solved for (0 = none set).
    pub budget_bytes: u64,
    /// Occupancy of the count-min sketch, in permille of its cells.
    pub sketch_fill_permille: u64,
    /// K-mer occurrences dropped before tuple generation, all tasks.
    pub dropped_kmers: u64,
}

impl PresolveTotals {
    /// True when the probabilistic memory tier or the budget planner was
    /// actually engaged (the pass count alone says nothing — every run
    /// has one).
    pub fn any(&self) -> bool {
        self.budget_bytes > 0 || self.sketch_fill_permille > 0 || self.dropped_kmers > 0
    }
}

/// A fully-reconstructed trace, ready for querying.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Simulated task count.
    pub tasks: u32,
    spans: Vec<SpanRec>,
    pairs: Vec<MessagePair>,
    unmatched_sends: usize,
    unmatched_recvs: usize,
    counters: BTreeMap<(u32, CounterKind), u64>,
}

/// Sender-side half of an edge, keyed by `(src, dst, seq)`:
/// `(stage, round, bytes, lamport, at_ns)`.
type SendHalf = (String, Option<u32>, u64, u64, u64);

/// Receiver-side half of an edge:
/// `(src, dst, seq, stage, round, bytes, lamport, at_ns)`.
type RecvHalf = (u32, u32, u64, String, Option<u32>, u64, u64, u64);

impl TraceAnalysis {
    /// Reconstruct the happens-before structure from an event stream.
    pub fn from_events(events: &[Event]) -> TraceAnalysis {
        let mut tasks = 0u32;
        let mut spans: Vec<SpanRec> = Vec::new();
        let mut sends: BTreeMap<(u32, u32, u64), SendHalf> = BTreeMap::new();
        let mut pairs: Vec<MessagePair> = Vec::new();
        let mut recvs: Vec<RecvHalf> = Vec::new();
        let mut counters: BTreeMap<(u32, CounterKind), u64> = BTreeMap::new();

        for ev in events {
            match ev {
                Event::Meta { tasks: n } => tasks = tasks.max(*n),
                Event::Span {
                    task,
                    name,
                    pass,
                    start_ns,
                    end_ns,
                    lamport,
                    ..
                } => {
                    tasks = tasks.max(task + 1);
                    let top_level =
                        STEP_NAMES.contains(&name.as_str()) || name.as_str() == INDEX_CREATE;
                    spans.push(SpanRec {
                        task: *task,
                        name: name.clone(),
                        pass: *pass,
                        start_ns: *start_ns,
                        end_ns: *end_ns,
                        lamport: *lamport,
                        top_level,
                    });
                }
                Event::Edge {
                    dir,
                    src,
                    dst,
                    stage,
                    round,
                    bytes,
                    seq,
                    lamport,
                    at_ns,
                } => {
                    tasks = tasks.max(src.max(dst) + 1);
                    match dir {
                        EdgeDir::Send => {
                            sends.insert(
                                (*src, *dst, *seq),
                                (stage.clone(), *round, *bytes, *lamport, *at_ns),
                            );
                        }
                        EdgeDir::Recv => recvs.push((
                            *src,
                            *dst,
                            *seq,
                            stage.clone(),
                            *round,
                            *bytes,
                            *lamport,
                            *at_ns,
                        )),
                    }
                }
                Event::Counter { task, kind, value } => {
                    *counters.entry((*task, *kind)).or_insert(0) += value;
                }
            }
        }

        let mut unmatched_recvs = 0usize;
        for (src, dst, seq, stage, round, bytes, lamport, at_ns) in recvs {
            match sends.remove(&(src, dst, seq)) {
                Some((s_stage, s_round, s_bytes, s_lamport, s_at)) => {
                    // Prefer the sender's view of stage/round/bytes; the
                    // receiver's copy is checked by `check_conservation`.
                    let _ = (stage, round);
                    pairs.push(MessagePair {
                        src,
                        dst,
                        stage: s_stage,
                        round: s_round,
                        bytes: s_bytes.max(bytes),
                        seq,
                        send_lamport: s_lamport,
                        recv_lamport: lamport,
                        send_ns: s_at,
                        recv_ns: at_ns,
                    });
                }
                None => unmatched_recvs += 1,
            }
        }
        let unmatched_sends = sends.len();

        TraceAnalysis {
            tasks,
            spans,
            pairs,
            unmatched_sends,
            unmatched_recvs,
            counters,
        }
    }

    /// The matched causal edges, in `(src, dst, seq)` order.
    pub fn pairs(&self) -> &[MessagePair] {
        &self.pairs
    }

    /// Total `events_dropped` across tasks (non-zero means the recorder
    /// lost events and the trace is incomplete).
    pub fn events_dropped(&self) -> u64 {
        self.counters
            .iter()
            .filter(|((_, k), _)| *k == CounterKind::EventsDropped)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Non-fatal problems worth surfacing before any numbers.
    pub fn warnings(&self) -> Vec<String> {
        let mut w = Vec::new();
        let dropped = self.events_dropped();
        if dropped > 0 {
            w.push(format!(
                "trace is incomplete: {dropped} event(s) dropped by the recorder"
            ));
        }
        if self.unmatched_sends > 0 {
            w.push(format!(
                "{} send(s) without a matching recv",
                self.unmatched_sends
            ));
        }
        if self.unmatched_recvs > 0 {
            w.push(format!(
                "{} recv(s) without a matching send",
                self.unmatched_recvs
            ));
        }
        w
    }

    /// Conservation check: every send matched exactly one recv. Fails
    /// with a description when endpoints are unmatched (unless the trace
    /// is known-incomplete, in which case `warnings` covers it).
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.unmatched_sends == 0 && self.unmatched_recvs == 0 {
            return Ok(());
        }
        Err(format!(
            "message conservation violated: {} unmatched send(s), {} unmatched recv(s)",
            self.unmatched_sends, self.unmatched_recvs
        ))
    }

    /// Causality check over the matched edges: the receiver's Lamport
    /// clock never decreases across an edge (ours is strictly greater by
    /// construction), and clocks are strictly increasing along each
    /// (src, dst) FIFO channel on both endpoints.
    pub fn check_causality(&self) -> Result<(), String> {
        for p in &self.pairs {
            if p.recv_lamport < p.send_lamport {
                return Err(format!(
                    "edge {}→{} seq {} ({}): recv lamport {} < send lamport {}",
                    p.src, p.dst, p.seq, p.stage, p.recv_lamport, p.send_lamport
                ));
            }
        }
        let mut by_channel: BTreeMap<(u32, u32), Vec<&MessagePair>> = BTreeMap::new();
        for p in &self.pairs {
            by_channel.entry((p.src, p.dst)).or_default().push(p);
        }
        for ((src, dst), mut ps) in by_channel {
            ps.sort_by_key(|p| p.seq);
            for w in ps.windows(2) {
                if w[1].send_lamport <= w[0].send_lamport {
                    return Err(format!(
                        "channel {src}→{dst}: send lamport not increasing at seq {}",
                        w[1].seq
                    ));
                }
                if w[1].recv_lamport <= w[0].recv_lamport {
                    return Err(format!(
                        "channel {src}→{dst}: recv lamport not increasing at seq {}",
                        w[1].seq
                    ));
                }
            }
        }
        Ok(())
    }

    /// Spans eligible for the critical-path tiling: paper steps and
    /// IndexCreate when present, every span otherwise (so synthetic /
    /// partial traces still analyze).
    fn cp_spans(&self) -> Vec<&SpanRec> {
        let top: Vec<&SpanRec> = self.spans.iter().filter(|s| s.top_level).collect();
        if top.is_empty() {
            self.spans.iter().collect()
        } else {
            top
        }
    }

    /// `[global_start, global_end]`: the tight hull of all eligible
    /// spans. `None` for a trace with no spans.
    pub fn run_interval(&self) -> Option<(u64, u64)> {
        let spans = self.cp_spans();
        let start = spans.iter().map(|s| s.start_ns).min()?;
        let end = spans.iter().map(|s| s.end_ns).max()?;
        Some((start, end))
    }

    /// Run makespan in nanoseconds (0 for an empty trace).
    pub fn makespan_ns(&self) -> u64 {
        self.run_interval()
            .map(|(s, e)| e.saturating_sub(s))
            .unwrap_or(0)
    }

    /// Extract the critical path: a chain of segments that tiles
    /// `[global_start, global_end]` exactly, so
    /// `path.iter().map(dur_ns).sum() == makespan_ns()` always holds.
    ///
    /// Backward walk from the globally-last-ending span. At a frontier
    /// on rank `r`:
    /// * the latest span on `r` starting before the frontier is the
    ///   carrier; the gap above it (if any) becomes an idle segment;
    /// * if a matched message arrived *inside* the carrier's covered
    ///   part, the walk emits the span tail after the arrival, a
    ///   transfer segment spanning the message flight, and hops to the
    ///   sending rank at the send timestamp;
    /// * a rank with no earlier activity closes the path with a startup
    ///   segment down to `global_start`.
    pub fn critical_path(&self) -> Vec<CpSegment> {
        let spans = self.cp_spans();
        let Some((global_start, global_end)) = self.run_interval() else {
            return Vec::new();
        };

        // Last-ending span owns the makespan's right edge; ties go to
        // the lowest task for determinism.
        let mut cur = spans
            .iter()
            .max_by(|a, b| a.end_ns.cmp(&b.end_ns).then(b.task.cmp(&a.task)))
            .map(|s| s.task)
            .unwrap_or(0);

        // Per-task span and arrival lookups.
        let mut by_task: Vec<Vec<&SpanRec>> = vec![Vec::new(); self.tasks as usize];
        for s in &spans {
            if (s.task as usize) < by_task.len() {
                by_task[s.task as usize].push(s);
            }
        }
        let mut arrivals: Vec<Vec<&MessagePair>> = vec![Vec::new(); self.tasks as usize];
        for p in &self.pairs {
            if (p.dst as usize) < arrivals.len() && p.send_ns <= p.recv_ns {
                arrivals[p.dst as usize].push(p);
            }
        }

        let mut path: Vec<CpSegment> = Vec::new();
        let mut frontier = global_end;
        // Each iteration strictly lowers the frontier (idle → span end,
        // span → span start or a send timestamp below the frontier), so
        // the walk terminates; the bound is a defensive backstop.
        let max_iters = 4 * (spans.len() + self.pairs.len()) + 8;
        for _ in 0..max_iters {
            if frontier <= global_start {
                break;
            }
            let carrier = by_task
                .get(cur as usize)
                .and_then(|v| {
                    v.iter()
                        .filter(|s| s.start_ns < frontier)
                        .max_by(|a, b| a.end_ns.cmp(&b.end_ns).then(a.start_ns.cmp(&b.start_ns)))
                })
                .copied();
            let Some(carrier) = carrier else {
                path.push(CpSegment {
                    task: cur,
                    start_ns: global_start,
                    end_ns: frontier,
                    kind: SegmentKind::Startup,
                });
                frontier = global_start;
                continue;
            };
            if carrier.end_ns < frontier {
                path.push(CpSegment {
                    task: cur,
                    start_ns: carrier.end_ns,
                    end_ns: frontier,
                    kind: SegmentKind::Idle,
                });
                frontier = carrier.end_ns;
                continue;
            }
            // Carrier covers the frontier. Follow the latest arrival
            // strictly inside the covered part whose send is strictly
            // below the frontier (guarantees progress).
            let seg_start = carrier.start_ns.max(global_start);
            let arrival = arrivals
                .get(cur as usize)
                .and_then(|v| {
                    v.iter()
                        .filter(|p| {
                            p.recv_ns > seg_start && p.recv_ns <= frontier && p.send_ns < frontier
                        })
                        .max_by(|a, b| a.recv_ns.cmp(&b.recv_ns).then(a.send_ns.cmp(&b.send_ns)))
                })
                .copied();
            match arrival {
                Some(p) => {
                    if p.recv_ns < frontier {
                        path.push(CpSegment {
                            task: cur,
                            start_ns: p.recv_ns,
                            end_ns: frontier,
                            kind: SegmentKind::Span {
                                name: carrier.name.clone(),
                                pass: carrier.pass,
                            },
                        });
                    }
                    let t_start = p.send_ns.max(global_start);
                    path.push(CpSegment {
                        task: p.dst,
                        start_ns: t_start,
                        end_ns: p.recv_ns,
                        kind: SegmentKind::Transfer {
                            src: p.src,
                            stage: p.stage.clone(),
                            bytes: p.bytes,
                        },
                    });
                    frontier = t_start;
                    cur = p.src;
                }
                None => {
                    path.push(CpSegment {
                        task: cur,
                        start_ns: seg_start,
                        end_ns: frontier,
                        kind: SegmentKind::Span {
                            name: carrier.name.clone(),
                            pass: carrier.pass,
                        },
                    });
                    frontier = seg_start;
                }
            }
        }
        path.reverse();
        path
    }

    /// Aggregate a critical path into `(label, total ns)` rows, largest
    /// first.
    pub fn critical_path_summary(path: &[CpSegment]) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for seg in path {
            *totals.entry(seg.label()).or_insert(0) += seg.dur_ns();
        }
        let mut rows: Vec<(String, u64)> = totals.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Per-stage imbalance statistics, in paper step order (stages that
    /// never ran are omitted).
    pub fn stage_imbalance(&self) -> Vec<StageImbalance> {
        let mut out = Vec::new();
        for name in STEP_NAMES {
            let mut per_task = vec![0u64; self.tasks as usize];
            let mut seen = false;
            for s in &self.spans {
                if s.name == name && (s.task as usize) < per_task.len() {
                    per_task[s.task as usize] += s.end_ns.saturating_sub(s.start_ns);
                    seen = true;
                }
            }
            if !seen {
                continue;
            }
            let max_ns = per_task.iter().copied().max().unwrap_or(0);
            let slowest_task = per_task
                .iter()
                .enumerate()
                .max_by_key(|(i, ns)| (**ns, std::cmp::Reverse(*i)))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            let mean_ns = if per_task.is_empty() {
                0.0
            } else {
                per_task.iter().sum::<u64>() as f64 / per_task.len() as f64
            };
            let factor = if mean_ns > 0.0 {
                max_ns as f64 / mean_ns
            } else {
                0.0
            };
            out.push(StageImbalance {
                stage: name.to_string(),
                per_task_ns: per_task,
                max_ns,
                mean_ns,
                factor,
                slowest_task,
            });
        }
        out
    }

    /// The `k` worst `(stage, task)` cells by excess over the stage
    /// mean, worst first.
    pub fn stragglers(&self, k: usize) -> Vec<Straggler> {
        let mut out: Vec<Straggler> = Vec::new();
        for imb in self.stage_imbalance() {
            for (task, &ns) in imb.per_task_ns.iter().enumerate() {
                let excess = ns as f64 - imb.mean_ns;
                if excess > 0.0 {
                    out.push(Straggler {
                        stage: imb.stage.clone(),
                        task: task as u32,
                        ns,
                        excess_ns: excess as u64,
                        over_mean: if imb.mean_ns > 0.0 {
                            ns as f64 / imb.mean_ns
                        } else {
                            0.0
                        },
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.excess_ns
                .cmp(&a.excess_ns)
                .then(a.stage.cmp(&b.stage))
                .then(a.task.cmp(&b.task))
        });
        out.truncate(k);
        out
    }

    /// One text Gantt row per task over the run interval: each column is
    /// a time bucket labeled with the initial of the step that dominates
    /// it (`.` = no recorded span).
    pub fn gantt_rows(&self, width: usize) -> Vec<String> {
        let Some((start, end)) = self.run_interval() else {
            return Vec::new();
        };
        let width = width.max(1);
        let span_total = end.saturating_sub(start).max(1);
        let mut rows = Vec::with_capacity(self.tasks as usize);
        for t in 0..self.tasks {
            let mut occupancy: Vec<BTreeMap<&str, u64>> = vec![BTreeMap::new(); width];
            for s in self.spans.iter().filter(|s| s.task == t && s.top_level) {
                let lo = s.start_ns.max(start);
                let hi = s.end_ns.min(end);
                if hi <= lo {
                    continue;
                }
                let b0 = ((lo - start) as u128 * width as u128 / span_total as u128) as usize;
                let b1 =
                    (((hi - start) as u128 * width as u128).div_ceil(span_total as u128)) as usize;
                for (b, bucket) in occupancy
                    .iter_mut()
                    .enumerate()
                    .take(b1.min(width))
                    .skip(b0.min(width - 1))
                {
                    let bucket_lo = start + (b as u64 * span_total) / width as u64;
                    let bucket_hi = start + ((b as u64 + 1) * span_total) / width as u64;
                    let overlap = hi.min(bucket_hi).saturating_sub(lo.max(bucket_lo));
                    if overlap > 0 {
                        *bucket.entry(s.name.as_str()).or_insert(0) += overlap;
                    }
                }
            }
            let mut row = String::with_capacity(width + 12);
            let _ = write!(row, "task {t:<3} |");
            for bucket in &occupancy {
                let dominant = bucket
                    .iter()
                    .max_by_key(|(name, ns)| (**ns, std::cmp::Reverse(*name)))
                    .map(|(name, _)| name.chars().next().unwrap_or('?'));
                row.push(dominant.unwrap_or('.'));
            }
            row.push('|');
            rows.push(row);
        }
        rows
    }

    /// Bytes-over-time: received bytes per bucket and cumulative, from
    /// the matched message edges.
    pub fn timeline(&self, buckets: usize) -> Vec<TimelineBucket> {
        let Some((start, end)) = self.run_interval() else {
            return Vec::new();
        };
        let buckets = buckets.max(1);
        let total = end.saturating_sub(start).max(1);
        let mut per_bucket = vec![0u64; buckets];
        for p in &self.pairs {
            if p.recv_ns < start || p.recv_ns > end {
                continue;
            }
            let b = ((p.recv_ns - start) as u128 * buckets as u128 / total as u128) as usize;
            per_bucket[b.min(buckets - 1)] += p.bytes;
        }
        let mut out = Vec::with_capacity(buckets);
        let mut cumulative = 0u64;
        for (b, &bytes_recv) in per_bucket.iter().enumerate() {
            cumulative += bytes_recv;
            out.push(TimelineBucket {
                start_ns: start + (b as u64 * total) / buckets as u64,
                bytes_recv,
                cumulative,
            });
        }
        out
    }

    /// Modeled peak memory across tasks (the `mem_modeled_bytes`
    /// counter), for the timeline's reference line.
    pub fn modeled_bytes(&self) -> u64 {
        self.counters
            .iter()
            .filter(|((_, k), _)| *k == CounterKind::MemModeledBytes)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of one counter kind across all tasks.
    fn counter_sum(&self, kind: CounterKind) -> u64 {
        self.counters
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Fault-injection and recovery totals recorded in the trace. All
    /// zero for a fault-free run (the counters are only emitted when the
    /// fault plane is active).
    pub fn fault_totals(&self) -> FaultTotals {
        FaultTotals {
            faults_injected: self.counter_sum(CounterKind::FaultsInjected),
            retry_attempts: self.counter_sum(CounterKind::RetryAttempts),
            checkpoint_writes: self.counter_sum(CounterKind::CheckpointWrites),
            task_restarts: self.counter_sum(CounterKind::TaskRestarts),
        }
    }

    /// Presolve-tier and planner totals recorded in the trace. All zero
    /// when neither `--memory-budget` nor `--presolve` was used.
    pub fn presolve_totals(&self) -> PresolveTotals {
        PresolveTotals {
            planned_passes: self.counter_sum(CounterKind::PlannedPasses),
            budget_bytes: self.counter_sum(CounterKind::MemBudgetBytes),
            sketch_fill_permille: self.counter_sum(CounterKind::SketchFillPermille),
            dropped_kmers: self.counter_sum(CounterKind::PresolveDroppedKmers),
        }
    }

    /// Per-task restart counts, for naming the ranks that recovered.
    pub fn restarts_by_task(&self) -> Vec<(u32, u64)> {
        self.counters
            .iter()
            .filter(|((_, k), v)| *k == CounterKind::TaskRestarts && **v > 0)
            .map(|(&(task, _), &v)| (task, v))
            .collect()
    }

    /// Folded-stack output for flamegraph tooling: one
    /// `task N;Step[;sub-span] <ns>` line per aggregate, sub-spans
    /// nested under the smallest top-level span containing them.
    pub fn folded_stacks(&self) -> String {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        // Self time of top-level spans (duration minus nested sub-spans)
        // plus one nested level for the sub-spans themselves.
        for s in &self.spans {
            if !s.top_level {
                continue;
            }
            let mut self_ns = s.end_ns.saturating_sub(s.start_ns);
            for sub in self.spans.iter().filter(|x| {
                !x.top_level && x.task == s.task && x.start_ns >= s.start_ns && x.end_ns <= s.end_ns
            }) {
                let d = sub.end_ns.saturating_sub(sub.start_ns);
                self_ns = self_ns.saturating_sub(d);
                *totals
                    .entry(format!("task {};{};{}", s.task, s.name, sub.name))
                    .or_insert(0) += d;
            }
            *totals
                .entry(format!("task {};{}", s.task, s.name))
                .or_insert(0) += self_ns;
        }
        // Sub-spans not contained in any top-level span still show up.
        for sub in self.spans.iter().filter(|s| !s.top_level) {
            let contained = self.spans.iter().any(|s| {
                s.top_level
                    && s.task == sub.task
                    && sub.start_ns >= s.start_ns
                    && sub.end_ns <= s.end_ns
            });
            if !contained {
                *totals
                    .entry(format!("task {};{}", sub.task, sub.name))
                    .or_insert(0) += sub.end_ns.saturating_sub(sub.start_ns);
            }
        }
        let mut out = String::new();
        for (stack, ns) in totals {
            if ns > 0 {
                let _ = writeln!(out, "{stack} {ns}");
            }
        }
        out
    }

    /// Render the full plain-text analysis report.
    pub fn render_report(&self, top_k: usize) -> String {
        let sec = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "METAPREP trace analysis — {} task(s), {} message edge(s)",
            self.tasks,
            self.pairs.len()
        );
        for w in self.warnings() {
            let _ = writeln!(out, "WARNING: {w}");
        }
        let _ = writeln!(out);

        let makespan = self.makespan_ns();
        let path = self.critical_path();
        let _ = writeln!(
            out,
            "critical path — {} segment(s), sum {:.6} s == makespan {:.6} s",
            path.len(),
            sec(path.iter().map(CpSegment::dur_ns).sum::<u64>()),
            sec(makespan),
        );
        for (label, ns) in Self::critical_path_summary(&path) {
            let share = if makespan > 0 {
                ns as f64 * 100.0 / makespan as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {label:<28} {:>10.4} s {share:>6.1}%", sec(ns));
        }
        let hops = path
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Transfer { .. }))
            .count();
        let _ = writeln!(out, "  ({hops} rank hop(s) along the path)");

        let imb = self.stage_imbalance();
        if !imb.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>10} {:>8} {:>8}   five-number (s)",
                "stage", "max (s)", "mean (s)", "factor", "slowest"
            );
            for row in &imb {
                let secs: Vec<f64> = row.per_task_ns.iter().map(|&ns| sec(ns)).collect();
                let [mn, q1, med, q3, mx] = five_number(&secs);
                let _ = writeln!(
                    out,
                    "{:<14} {:>10.4} {:>10.4} {:>8.3} {:>8}   \
                     [{mn:.4} {q1:.4} {med:.4} {q3:.4} {mx:.4}]",
                    row.stage,
                    sec(row.max_ns),
                    row.mean_ns / 1e9,
                    row.factor,
                    format!("task {}", row.slowest_task),
                );
            }
        }

        let stragglers = self.stragglers(top_k);
        if !stragglers.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "top {} straggler cell(s)", stragglers.len());
            for s in &stragglers {
                let _ = writeln!(
                    out,
                    "  {:<14} task {:<4} {:>10.4} s  (+{:.4} s over mean, {:.2}x)",
                    s.stage,
                    s.task,
                    sec(s.ns),
                    sec(s.excess_ns),
                    s.over_mean,
                );
            }
        }

        let faults = self.fault_totals();
        if faults.any() {
            let _ = writeln!(out);
            let _ = writeln!(out, "fault injection & recovery");
            let _ = writeln!(out, "  faults injected   {:>8}", faults.faults_injected);
            let _ = writeln!(out, "  retry attempts    {:>8}", faults.retry_attempts);
            let _ = writeln!(out, "  checkpoint writes {:>8}", faults.checkpoint_writes);
            let _ = writeln!(out, "  task restarts     {:>8}", faults.task_restarts);
            for (task, n) in self.restarts_by_task() {
                let _ = writeln!(out, "    task {task} restarted {n} time(s)");
            }
        }

        let presolve = self.presolve_totals();
        if presolve.any() {
            let _ = writeln!(out);
            let _ = writeln!(out, "presolve & pass planning");
            let _ = writeln!(out, "  planned passes      {:>12}", presolve.planned_passes);
            if presolve.budget_bytes > 0 {
                let _ = writeln!(out, "  memory budget (B)   {:>12}", presolve.budget_bytes);
            }
            if presolve.sketch_fill_permille > 0 {
                let _ = writeln!(
                    out,
                    "  sketch fill (\u{2030})    {:>12}",
                    presolve.sketch_fill_permille
                );
            }
            let _ = writeln!(out, "  k-mers presolved    {:>12}", presolve.dropped_kmers);
        }

        let gantt = self.gantt_rows(64);
        if !gantt.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "per-rank Gantt ({} .. {} ns, 64 buckets; letter = dominant step)",
                self.run_interval().map(|(s, _)| s).unwrap_or(0),
                self.run_interval().map(|(_, e)| e).unwrap_or(0),
            );
            for row in gantt {
                let _ = writeln!(out, "  {row}");
            }
        }

        let timeline = self.timeline(16);
        let transferred: u64 = self.pairs.iter().map(|p| p.bytes).sum();
        if transferred > 0 {
            let peak_bucket = timeline.iter().map(|b| b.bytes_recv).max().unwrap_or(0);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "bytes over time ({transferred} B transferred; modeled peak {} B)",
                self.modeled_bytes()
            );
            for b in &timeline {
                let bar_len = if peak_bucket > 0 {
                    (b.bytes_recv as u128 * 40 / peak_bucket as u128) as usize
                } else {
                    0
                };
                let _ = writeln!(
                    out,
                    "  {:>12} ns {:>12} B |{}",
                    b.start_ns,
                    b.bytes_recv,
                    "#".repeat(bar_len)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EdgeEvent;

    fn span(task: u32, name: &str, start: u64, end: u64) -> Event {
        Event::Span {
            task,
            name: name.to_string(),
            pass: None,
            detail: None,
            start_ns: start,
            end_ns: end,
            lamport: 0,
        }
    }

    fn edge(dir: EdgeDir, src: u32, dst: u32, seq: u64, lamport: u64, at: u64) -> Event {
        Event::from(EdgeEvent {
            dir,
            src,
            dst,
            stage: "KmerGen-Comm",
            round: None,
            bytes: 100,
            seq,
            lamport,
            at_ns: at,
        })
    }

    fn tiling_sum(path: &[CpSegment]) -> u64 {
        path.iter().map(CpSegment::dur_ns).sum()
    }

    fn assert_tiles(path: &[CpSegment], start: u64, end: u64) {
        assert!(!path.is_empty());
        assert_eq!(path[0].start_ns, start, "path starts at global start");
        assert_eq!(path[path.len() - 1].end_ns, end, "path ends at global end");
        for w in path.windows(2) {
            assert_eq!(
                w[0].end_ns, w[1].start_ns,
                "segments must chain without gaps: {w:?}"
            );
        }
    }

    #[test]
    fn single_task_single_span_critical_path() {
        let a =
            TraceAnalysis::from_events(&[Event::Meta { tasks: 1 }, span(0, "KmerGen", 100, 500)]);
        let path = a.critical_path();
        assert_tiles(&path, 100, 500);
        assert_eq!(tiling_sum(&path), a.makespan_ns());
        assert_eq!(path.len(), 1);
        assert!(matches!(&path[0].kind, SegmentKind::Span { name, .. } if name == "KmerGen"));
    }

    #[test]
    fn idle_gap_becomes_idle_segment() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 1 },
            span(0, "KmerGen", 0, 100),
            span(0, "LocalSort", 300, 400),
        ]);
        let path = a.critical_path();
        assert_tiles(&path, 0, 400);
        assert_eq!(tiling_sum(&path), 400);
        // KmerGen [0,100], idle [100,300], LocalSort [300,400].
        assert_eq!(path.len(), 3);
        assert!(matches!(path[1].kind, SegmentKind::Idle));
        assert_eq!(path[1].dur_ns(), 200);
    }

    #[test]
    fn message_hop_crosses_ranks_with_exact_tiling() {
        // Task 0: KmerGen [0,200], sends at 150.
        // Task 1: LocalSort [100,500], recv lands at 180 inside it.
        // Expected path (reversed walk): task1 span tail [180,500],
        // transfer [150,180], task0 span [0,150] portion... the walk on
        // task 0 continues from frontier 150 inside KmerGen [0,200]:
        // carrier covers frontier, no arrivals → span [0,150].
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 200),
            span(1, "LocalSort", 100, 500),
            edge(EdgeDir::Send, 0, 1, 0, 5, 150),
            edge(EdgeDir::Recv, 0, 1, 0, 6, 180),
        ]);
        assert_eq!(a.makespan_ns(), 500);
        let path = a.critical_path();
        assert_tiles(&path, 0, 500);
        assert_eq!(tiling_sum(&path), 500);
        assert_eq!(path.len(), 3);
        assert!(matches!(&path[0].kind, SegmentKind::Span { name, .. } if name == "KmerGen"));
        assert_eq!((path[0].start_ns, path[0].end_ns), (0, 150));
        assert!(matches!(
            &path[1].kind,
            SegmentKind::Transfer { src: 0, .. }
        ));
        assert_eq!((path[1].start_ns, path[1].end_ns), (150, 180));
        assert!(matches!(&path[2].kind, SegmentKind::Span { name, .. } if name == "LocalSort"));
        assert_eq!((path[2].start_ns, path[2].end_ns), (180, 500));
    }

    #[test]
    fn zero_length_spans_and_ties_do_not_break_tiling() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 100),
            span(0, "LocalSort", 100, 100), // zero-length at the frontier
            span(1, "KmerGen", 0, 100),     // exact tie on the last end
        ]);
        assert_eq!(a.makespan_ns(), 100);
        let path = a.critical_path();
        assert_tiles(&path, 0, 100);
        assert_eq!(tiling_sum(&path), 100);
        // Tie on end_ns resolves to the lowest task.
        assert_eq!(path[path.len() - 1].task, 0);
    }

    #[test]
    fn startup_covers_rank_with_no_earlier_activity() {
        // Task 1's span starts later than global start and an arrival
        // pulls the walk to task 0, which has no spans at all.
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(1, "MergeCC", 50, 300),
            span(0, "KmerGen", 0, 40),
        ]);
        let path = a.critical_path();
        assert_tiles(&path, 0, 300);
        assert_eq!(tiling_sum(&path), 300);
    }

    #[test]
    fn conservation_and_causality_checks() {
        let ok = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            edge(EdgeDir::Send, 0, 1, 0, 3, 10),
            edge(EdgeDir::Recv, 0, 1, 0, 4, 20),
            edge(EdgeDir::Send, 0, 1, 1, 5, 30),
            edge(EdgeDir::Recv, 0, 1, 1, 6, 40),
        ]);
        assert!(ok.check_conservation().is_ok());
        assert!(ok.check_causality().is_ok());
        assert_eq!(ok.pairs().len(), 2);

        let unmatched = TraceAnalysis::from_events(&[edge(EdgeDir::Send, 0, 1, 0, 3, 10)]);
        assert!(unmatched.check_conservation().is_err());
        assert_eq!(unmatched.warnings().len(), 1);

        let backwards = TraceAnalysis::from_events(&[
            edge(EdgeDir::Send, 0, 1, 0, 9, 10),
            edge(EdgeDir::Recv, 0, 1, 0, 4, 20), // recv lamport < send
        ]);
        assert!(backwards.check_causality().is_err());
    }

    #[test]
    fn imbalance_factor_and_stragglers() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 4 },
            span(0, "KmerGen", 0, 100),
            span(1, "KmerGen", 0, 100),
            span(2, "KmerGen", 0, 100),
            span(3, "KmerGen", 0, 500), // straggler
        ]);
        let imb = a.stage_imbalance();
        assert_eq!(imb.len(), 1);
        assert_eq!(imb[0].max_ns, 500);
        assert_eq!(imb[0].mean_ns, 200.0);
        assert!((imb[0].factor - 2.5).abs() < 1e-12);
        assert_eq!(imb[0].slowest_task, 3);
        let st = a.stragglers(5);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].task, 3);
        assert_eq!(st[0].excess_ns, 300);
    }

    #[test]
    fn dropped_events_warn() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 1 },
            Event::Counter {
                task: 0,
                kind: CounterKind::EventsDropped,
                value: 7,
            },
        ]);
        assert_eq!(a.events_dropped(), 7);
        assert!(a.warnings().iter().any(|w| w.contains("incomplete")));
    }

    #[test]
    fn fault_totals_sum_across_tasks_and_render() {
        let counter = |task, kind, value| Event::Counter { task, kind, value };
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 3 },
            span(0, "KmerGen", 0, 100),
            counter(0, CounterKind::FaultsInjected, 4),
            counter(1, CounterKind::FaultsInjected, 2),
            counter(1, CounterKind::RetryAttempts, 3),
            counter(2, CounterKind::CheckpointWrites, 5),
            counter(1, CounterKind::TaskRestarts, 1),
        ]);
        let f = a.fault_totals();
        assert_eq!(
            f,
            FaultTotals {
                faults_injected: 6,
                retry_attempts: 3,
                checkpoint_writes: 5,
                task_restarts: 1,
            }
        );
        assert!(f.any());
        assert_eq!(a.restarts_by_task(), vec![(1, 1)]);
        let report = a.render_report(3);
        assert!(report.contains("fault injection & recovery"));
        assert!(report.contains("task 1 restarted 1 time(s)"));
    }

    #[test]
    fn presolve_totals_sum_and_render() {
        let counter = |task, kind, value| Event::Counter { task, kind, value };
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 100),
            counter(0, CounterKind::PlannedPasses, 3),
            counter(0, CounterKind::MemBudgetBytes, 1 << 20),
            counter(0, CounterKind::SketchFillPermille, 17),
            counter(0, CounterKind::PresolveDroppedKmers, 40),
            counter(1, CounterKind::PresolveDroppedKmers, 2),
        ]);
        let p = a.presolve_totals();
        assert_eq!(
            p,
            PresolveTotals {
                planned_passes: 3,
                budget_bytes: 1 << 20,
                sketch_fill_permille: 17,
                dropped_kmers: 42,
            }
        );
        assert!(p.any());
        let report = a.render_report(3);
        assert!(report.contains("presolve & pass planning"));
        assert!(report.contains("42"));
        // A run without the tier renders no presolve section even though
        // it still reports a pass count.
        let plain = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 1 },
            span(0, "KmerGen", 0, 100),
            counter(0, CounterKind::PlannedPasses, 2),
        ]);
        assert!(!plain.presolve_totals().any());
        assert!(!plain.render_report(3).contains("presolve & pass planning"));
    }

    #[test]
    fn fault_free_traces_render_no_fault_section() {
        let a = TraceAnalysis::from_events(&[Event::Meta { tasks: 1 }, span(0, "KmerGen", 0, 100)]);
        assert!(!a.fault_totals().any());
        assert!(!a.render_report(3).contains("fault injection"));
    }

    #[test]
    fn folded_stacks_nest_sub_spans() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 1 },
            span(0, "KmerGen-Comm", 0, 100),
            span(0, "alltoall-stage", 10, 30),
        ]);
        let folded = a.folded_stacks();
        assert!(folded.contains("task 0;KmerGen-Comm;alltoall-stage 20"));
        assert!(folded.contains("task 0;KmerGen-Comm 80"));
    }

    #[test]
    fn timeline_accumulates_received_bytes() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 100),
            span(1, "KmerGen", 0, 100),
            edge(EdgeDir::Send, 0, 1, 0, 1, 10),
            edge(EdgeDir::Recv, 0, 1, 0, 2, 20),
        ]);
        let tl = a.timeline(4);
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.iter().map(|b| b.bytes_recv).sum::<u64>(), 100);
        assert_eq!(tl[3].cumulative, 100);
    }

    #[test]
    fn report_renders_all_sections() {
        let a = TraceAnalysis::from_events(&[
            Event::Meta { tasks: 2 },
            span(0, "KmerGen", 0, 200),
            span(1, "LocalSort", 100, 500),
            edge(EdgeDir::Send, 0, 1, 0, 5, 150),
            edge(EdgeDir::Recv, 0, 1, 0, 6, 180),
        ]);
        let text = a.render_report(3);
        assert!(text.contains("critical path"));
        assert!(text.contains("stage"));
        assert!(text.contains("Gantt"));
        assert!(text.contains("bytes over time"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let a = TraceAnalysis::from_events(&[]);
        assert_eq!(a.makespan_ns(), 0);
        assert!(a.critical_path().is_empty());
        assert!(a.gantt_rows(10).is_empty());
        assert!(a.timeline(4).is_empty());
        let _ = a.render_report(3);
    }
}
