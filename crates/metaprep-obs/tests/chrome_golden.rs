//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The exporter's output is deterministic for a fixed event stream, so
//! the full JSON is pinned byte-for-byte in `tests/golden/chrome_trace.json`.
//! Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p metaprep-obs --test chrome_golden
//! ```

use metaprep_obs::event::EdgeDir;
use metaprep_obs::export::{validate_chrome, write_chrome};
use metaprep_obs::json;
use metaprep_obs::{CounterKind, Event};

fn span(task: u32, name: &str, pass: Option<u32>, detail: Option<u32>, ns: (u64, u64)) -> Event {
    Event::Span {
        task,
        name: name.to_string(),
        pass,
        detail,
        start_ns: ns.0,
        end_ns: ns.1,
        lamport: 0,
    }
}

fn edge(dir: EdgeDir, src: u32, dst: u32, seq: u64, lamport: u64, at_ns: u64) -> Event {
    Event::Edge {
        dir,
        src,
        dst,
        stage: "KmerGen-Comm".to_string(),
        round: Some(0),
        bytes: 4_096,
        seq,
        lamport,
        at_ns,
    }
}

/// A fixed two-task run touching every event shape the exporter handles:
/// the meta header, a driver-side IndexCreate span, per-pass step spans,
/// an all-to-all stage sub-span, message-edge flow events, and counters.
fn fixture() -> Vec<Event> {
    vec![
        Event::Meta { tasks: 2 },
        span(0, "IndexCreate", None, None, (0, 1_500_000)),
        span(0, "KmerGen-I/O", Some(0), None, (1_500_000, 1_750_000)),
        span(0, "KmerGen", Some(0), None, (1_750_000, 4_000_000)),
        span(1, "KmerGen-I/O", Some(0), None, (1_600_000, 1_900_000)),
        span(1, "KmerGen", Some(0), None, (1_900_000, 4_200_000)),
        span(0, "KmerGen-Comm", Some(0), None, (4_000_000, 5_000_000)),
        span(
            0,
            "alltoall-stage",
            Some(0),
            Some(1),
            (4_100_000, 4_900_000),
        ),
        span(1, "KmerGen-Comm", Some(0), None, (4_200_000, 5_100_000)),
        edge(EdgeDir::Send, 0, 1, 0, 3, 4_150_000),
        edge(EdgeDir::Recv, 0, 1, 0, 4, 4_300_000),
        span(0, "LocalSort", Some(0), None, (5_000_000, 7_250_500)),
        span(1, "LocalSort", Some(0), None, (5_100_000, 7_100_000)),
        span(0, "Merge-Comm", None, Some(0), (7_300_000, 7_400_000)),
        span(0, "CC-I/O", None, None, (7_400_000, 8_000_000)),
        Event::Counter {
            task: 0,
            kind: CounterKind::TuplesEmitted,
            value: 12_345,
        },
        Event::Counter {
            task: 1,
            kind: CounterKind::BytesSent,
            value: 98_304,
        },
    ]
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

#[test]
fn chrome_export_matches_golden_file() {
    let out = write_chrome(&fixture());
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &out).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        out, want,
        "chrome export drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_is_valid_and_well_shaped() {
    let out = write_chrome(&fixture());
    // The schema validator (used by the bench smoke) accepts it.
    validate_chrome(&out).expect("golden trace must validate");

    let v = json::parse(&out).expect("golden trace must be valid JSON");
    let evs = v
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .expect("traceEvents array");

    // One process per task, exactly: every span pid is 0 or 1, and both
    // have a process_name metadata record.
    let mut span_pids = std::collections::BTreeSet::new();
    let mut named_pids = std::collections::BTreeSet::new();
    let mut prev_ts = f64::NEG_INFINITY;
    for e in evs {
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
        let pid = e.get("pid").and_then(|p| p.as_u64()).unwrap();
        match ph {
            "X" => {
                span_pids.insert(pid);
                let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
                assert!(ts >= prev_ts, "ts must be non-decreasing");
                prev_ts = ts;
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            }
            "M" if e.get("name").and_then(|n| n.as_str()) == Some("process_name") => {
                named_pids.insert(pid);
            }
            _ => {}
        }
    }
    assert_eq!(span_pids, [0u64, 1].into_iter().collect());
    assert!(named_pids.is_superset(&span_pids), "every task pid named");

    // The message edge shows up as a matched flow pair.
    let flows: Vec<&str> = evs
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .filter(|ph| matches!(*ph, "s" | "f"))
        .collect();
    assert_eq!(flows, vec!["s", "f"]);
}
