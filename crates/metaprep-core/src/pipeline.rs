//! Pipeline orchestration: the distributed METAPREP flow.

use crate::checkpoint::{plan_fingerprint, Checkpoint, CkptPhase, PlanCheckpoint};
use crate::config::{PipelineConfig, PipelineError};
use crate::kmergen::{expected_incoming, kmergen_pass, PipelineKmer};
use crate::localcc::{localcc_pass, thread_offsets_of, LocalCcStats};
use crate::memmodel::MemoryReport;
use crate::planner::{plan_passes, PlanInputs};
use crate::source::{ChunkSource, FileSource, MemorySource};
use crate::timings::{Step, StepTimings, TaskTimings};
use metaprep_cc::{
    absorb_parent_array, absorb_sparse_pairs, sparse_pairs, ComponentStats, ConcurrentDisjointSet,
    DisjointSet,
};
use metaprep_dist::collectives::{alltoall_obs, broadcast_obs};
use metaprep_dist::{
    run_cluster, run_cluster_faulted, run_supervised, Boundary, ClusterConfig, CommStats, Payload,
    TaskCtx,
};
use metaprep_index::{FastqPart, MerHist, RangePlan};
use metaprep_io::ReadStore;
use metaprep_kmer::{Kmer128, Kmer64};
use metaprep_norm::{HighFreqFilter, SketchParams};
use metaprep_obs::event::{CHECKPOINT, INDEX_CREATE, PASS_PLAN, TASK_RESTART};
use metaprep_obs::{CounterKind, NoopRecorder, Recorder, SpanEvent, TaskObs};
use metaprep_sort::{fused_local_sort, PassBuffers};
use std::path::Path;
use std::time::Duration;

/// Message type moved between simulated tasks.
enum Msg<T> {
    /// k-mer tuples (KmerGen-Comm).
    Tuples(Vec<T>),
    /// Component arrays (Merge-Comm and the final broadcast).
    Parents(Vec<u32>),
    /// Sparse `(vertex, root)` component pairs (Merge-Comm with the
    /// `merge_sparse` option).
    SparseParents(Vec<(u32, u32)>),
}

impl<T> Clone for Msg<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        match self {
            Msg::Tuples(v) => Msg::Tuples(v.clone()),
            Msg::Parents(v) => Msg::Parents(v.clone()),
            Msg::SparseParents(v) => Msg::SparseParents(v.clone()),
        }
    }
}

impl<T: Send + 'static> Payload for Msg<T> {
    fn size_bytes(&self) -> usize {
        match self {
            Msg::Tuples(v) => v.len() * std::mem::size_of::<T>(),
            Msg::Parents(v) => v.len() * std::mem::size_of::<u32>(),
            Msg::SparseParents(v) => v.len() * std::mem::size_of::<(u32, u32)>(),
        }
    }
}

/// Everything a METAPREP run produces.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Component statistics of the final labeling.
    pub components: ComponentStats,
    /// Final component label per fragment (fully compressed).
    pub labels: Vec<u32>,
    /// Per-task, per-step timings plus IndexCreate.
    pub timings: StepTimings,
    /// Per-task communication volumes.
    pub comm: Vec<CommStats>,
    /// Modeled + measured per-task memory.
    pub memory: MemoryReport,
    /// Total tuples enumerated across all passes and tasks.
    pub tuples_total: u64,
    /// LocalCC counters summed over tasks and passes.
    pub localcc: LocalCcStats,
    /// Reads written to the largest-component output across tasks (CC-I/O).
    pub lc_reads_written: u64,
    /// Reads written to the "Other" output across tasks.
    pub other_reads_written: u64,
    /// K-mer occurrences dropped by the presolve filter before tuple
    /// generation (0 when the probabilistic tier is off). Conservation:
    /// `tuples_total + presolve_dropped` equals the merHist total.
    pub presolve_dropped: u64,
    /// The pass count the run actually executed — `cfg.passes`, or the
    /// planner's choice when only `memory_budget` was set.
    pub planned_passes: usize,
}

impl PipelineResult {
    /// Fraction of fragments in the largest component (Table 7's metric).
    pub fn largest_component_fraction(&self) -> f64 {
        self.components.largest_fraction()
    }
}

/// A configured METAPREP pipeline.
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline; validates the configuration eagerly.
    pub fn new(cfg: PipelineConfig) -> Self {
        // EXPECT: documented contract — `new` validates eagerly; a bad config is a construction-time programmer error, not a runtime condition.
        cfg.validate().expect("invalid pipeline configuration");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run the full preprocessing pipeline over in-memory reads.
    pub fn run_reads(&self, reads: &ReadStore) -> Result<PipelineResult, PipelineError> {
        self.run_reads_recorded(reads, &NoopRecorder::new())
    }

    /// [`Pipeline::run_reads`] with telemetry: every step of every task
    /// becomes a recorded span (the returned `StepTimings` are *derived*
    /// from those spans) and work/comm/memory counters flow into `rec`.
    pub fn run_reads_recorded(
        &self,
        reads: &ReadStore,
        rec: &dyn Recorder,
    ) -> Result<PipelineResult, PipelineError> {
        self.cfg
            .validate()
            .map_err(|e| PipelineError::InvalidConfig(e.to_string()))?;
        if reads.num_fragments() == u32::MAX {
            return Err(PipelineError::InvalidInput(
                "fragment count must be < u32::MAX".into(),
            ));
        }
        // ---- IndexCreate (sequential, timed; paper Table 5) ----
        let clock = rec.clock();
        let t0_ns = clock.now_ns();
        let c = self.cfg.effective_chunks();
        // With the presolve tier on, the same IndexCreate scan also feeds
        // the count-min sketch — no extra pass over the reads.
        let (merhist, sketch) = match self.cfg.presolve_threshold {
            Some(_) => {
                let (h, s) =
                    MerHist::build_sketched(reads, self.cfg.k, self.cfg.m, self.cfg.sketch);
                (h, Some(s))
            }
            None => (MerHist::build(reads, self.cfg.k, self.cfg.m), None),
        };
        let fastqpart = FastqPart::build(reads, c, self.cfg.k, self.cfg.m);
        let t1_ns = clock.now_ns();
        // Derive the duration from the span's own endpoints so a report
        // built from the exported events reproduces it exactly.
        let index_create = Duration::from_nanos(t1_ns.saturating_sub(t0_ns));
        rec.record_span(SpanEvent {
            task: 0,
            name: INDEX_CREATE,
            pass: None,
            detail: None,
            start_ns: t0_ns,
            end_ns: t1_ns,
            // Driver-side span, outside any task's causal timeline.
            lamport: 0,
        });
        let filter = sketch
            .zip(self.cfg.presolve_threshold)
            .map(|(s, t)| HighFreqFilter::new(s, t));
        let specs = fastqpart.chunks().iter().map(|r| r.spec).collect();
        let source = MemorySource::new(reads, specs);
        if self.cfg.k <= 32 {
            run_generic::<Kmer64, _>(
                &self.cfg,
                &source,
                &merhist,
                &fastqpart,
                filter.as_ref(),
                index_create,
                rec,
            )
        } else {
            run_generic::<Kmer128, _>(
                &self.cfg,
                &source,
                &merhist,
                &fastqpart,
                filter.as_ref(),
                index_create,
                rec,
            )
        }
    }

    /// Run the pipeline directly over a FASTQ *file*: IndexCreate scans the
    /// file once to build the chunk table, and every pass re-reads the
    /// chunks from disk — the paper's actual multi-pass I/O behaviour.
    /// `paired` treats the file as interleaved mate pairs.
    pub fn run_fastq_file(
        &self,
        path: impl AsRef<std::path::Path>,
        paired: bool,
    ) -> Result<PipelineResult, PipelineError> {
        self.run_fastq_file_recorded(path, paired, &NoopRecorder::new())
    }

    /// [`Pipeline::run_fastq_file`] with telemetry (see
    /// [`Pipeline::run_reads_recorded`]).
    pub fn run_fastq_file_recorded(
        &self,
        path: impl AsRef<std::path::Path>,
        paired: bool,
        rec: &dyn Recorder,
    ) -> Result<PipelineResult, PipelineError> {
        self.cfg
            .validate()
            .map_err(|e| PipelineError::InvalidConfig(e.to_string()))?;
        let path = path.as_ref();

        // ---- IndexCreate from the file (streaming, thread-parallel) ----
        let clock = rec.clock();
        let t0_ns = clock.now_ns();
        let (merhist, fastqpart, total_seqs, sketch) = index_fastq_file(
            path,
            paired,
            self.cfg.effective_chunks(),
            self.cfg.k,
            self.cfg.m,
            self.cfg.index_window,
            self.cfg.tasks * self.cfg.threads,
            self.cfg.presolve_threshold.map(|_| self.cfg.sketch),
            rec,
        )?;
        let t1_ns = clock.now_ns();
        let index_create = Duration::from_nanos(t1_ns.saturating_sub(t0_ns));
        rec.record_span(SpanEvent {
            task: 0,
            name: INDEX_CREATE,
            pass: None,
            detail: None,
            start_ns: t0_ns,
            end_ns: t1_ns,
            // Driver-side span, outside any task's causal timeline.
            lamport: 0,
        });

        let filter = sketch
            .zip(self.cfg.presolve_threshold)
            .map(|(s, t)| HighFreqFilter::new(s, t));
        let specs = fastqpart.chunks().iter().map(|r| r.spec).collect();
        let source = FileSource::new(path.to_path_buf(), specs, paired, total_seqs);
        if self.cfg.k <= 32 {
            run_generic::<Kmer64, _>(
                &self.cfg,
                &source,
                &merhist,
                &fastqpart,
                filter.as_ref(),
                index_create,
                rec,
            )
        } else {
            run_generic::<Kmer128, _>(
                &self.cfg,
                &source,
                &merhist,
                &fastqpart,
                filter.as_ref(),
                index_create,
                rec,
            )
        }
    }
}

/// Build the index tables by scanning a FASTQ file once with the streaming
/// chunker: boundaries are located through bounded probe windows, chunks
/// are histogrammed thread-parallel from byte-range reads, and the file is
/// never materialized whole (`metaprep_index::index_fastq_file_streaming`).
/// The sequence count is range-checked into the pipeline's 32-bit id space.
#[allow(clippy::too_many_arguments)]
fn index_fastq_file(
    path: &std::path::Path,
    paired: bool,
    c: usize,
    k: usize,
    m: usize,
    window: usize,
    threads: usize,
    sketch: Option<SketchParams>,
    rec: &dyn Recorder,
) -> Result<
    (
        MerHist,
        FastqPart,
        u32,
        Option<metaprep_norm::CountMinSketch>,
    ),
    PipelineError,
> {
    use metaprep_index::{index_fastq_file_streaming_sketched_recorded, StreamingOptions};
    let (merhist, fastqpart, total_seqs, cms) = index_fastq_file_streaming_sketched_recorded(
        path,
        paired,
        c,
        k,
        m,
        StreamingOptions { window, threads },
        sketch,
        rec,
    )
    .map_err(|e| PipelineError::InvalidInput(format!("index {path:?}: {e}")))?;
    let total_seqs = guard_total_seqs(total_seqs, paired)?;
    Ok((merhist, fastqpart, total_seqs, cms))
}

/// Checked conversion of a streamed sequence count into the pipeline's
/// 32-bit id space, mirroring `run_reads`' `u32::MAX` fragment guard. The
/// old code accumulated `total_seqs += store.len() as u32`, which silently
/// wrapped in release builds on >4Gi-read inputs.
fn guard_total_seqs(total_seqs: u64, paired: bool) -> Result<u32, PipelineError> {
    let fragments = if paired { total_seqs / 2 } else { total_seqs };
    if total_seqs > u32::MAX as u64 || fragments >= u32::MAX as u64 {
        return Err(PipelineError::InvalidInput(format!(
            "input has {total_seqs} sequences ({fragments} fragments); \
             fragment count must be < u32::MAX"
        )));
    }
    Ok(total_seqs as u32)
}

/// Per-task return value from the cluster run.
struct TaskOutput {
    timings: TaskTimings,
    labels: Option<Vec<u32>>,
    tuples_emitted: u64,
    peak_tuples: u64,
    presolve_dropped: u64,
    localcc: LocalCcStats,
    lc_reads: u64,
    other_reads: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_generic<K: PipelineKmer, S: ChunkSource>(
    cfg: &PipelineConfig,
    source: &S,
    merhist: &MerHist,
    fastqpart: &FastqPart,
    filter: Option<&HighFreqFilter>,
    index_create: std::time::Duration,
    rec: &dyn Recorder,
) -> Result<PipelineResult, PipelineError> {
    let r = source.num_fragments() as usize;
    let avg_chunk_bytes = if fastqpart.is_empty() {
        0
    } else {
        fastqpart
            .chunks()
            .iter()
            .map(|ch| ch.spec.bytes)
            .sum::<u64>()
            / fastqpart.len() as u64
    };

    // ---- Pass planning: invert the §3.7 memory model for the budget ----
    let clock = rec.clock();
    let plan_t0_ns = clock.now_ns();
    let passes = match cfg.memory_budget {
        Some(budget) => {
            let inputs = PlanInputs {
                m: cfg.m,
                chunks: fastqpart.len(),
                threads: cfg.threads,
                avg_chunk_bytes,
                total_tuples: merhist.total(),
                packed_tuple_bytes: K::PACKED_TUPLE_BYTES,
                tasks: cfg.tasks,
                reads: r as u64,
            };
            if cfg.passes_explicit {
                // An explicit --passes wins over the planner, but it still
                // has to fit the budget it was paired with.
                let modeled = inputs.modeled_at(cfg.passes);
                if modeled > budget {
                    return Err(PipelineError::InvalidConfig(format!(
                        "explicit passes={} models {modeled} B/task, over the {budget} B \
                         memory budget; drop --passes to let the planner choose, or \
                         raise the budget",
                        cfg.passes
                    )));
                }
                cfg.passes
            } else {
                plan_passes(&inputs, budget)?.passes
            }
        }
        None => cfg.passes,
    };
    let plan = RangePlan::build(merhist, passes, cfg.tasks, cfg.threads);
    // Persist (or verify) the plan artifact so a crash-restarted run
    // provably replays the same pass geometry.
    if let Some(dir) = cfg.checkpoint_dir.as_deref() {
        verify_or_store_plan(dir, cfg, merhist, &plan, passes)?;
    }
    let plan_t1_ns = clock.now_ns();
    rec.record_span(SpanEvent {
        task: 0,
        name: PASS_PLAN,
        pass: None,
        detail: None,
        start_ns: plan_t0_ns,
        end_ns: plan_t1_ns,
        // Driver-side span, outside any task's causal timeline.
        lamport: 0,
    });
    let bin_owner = plan.bin_owner_table();

    // Chunk ownership: round-robin over tasks (chunks are size-balanced by
    // construction, so this is the paper's static assignment).
    let owner_of_chunk: Vec<usize> = (0..fastqpart.len()).map(|i| i % cfg.tasks).collect();

    let mut cluster = ClusterConfig::new(cfg.tasks, cfg.threads);
    if let Some(ms) = cfg.watchdog_timeout_ms {
        cluster = cluster.with_watchdog_timeout(Duration::from_millis(ms));
    }
    let body = |ctx: &mut TaskCtx<Msg<K::Tuple>>| {
        task_body::<K, S>(
            ctx,
            cfg,
            source,
            fastqpart,
            &plan,
            &bin_owner,
            &owner_of_chunk,
            filter,
            r,
            rec,
        )
    };
    let run = match &cfg.fault_plan {
        Some(fault_plan) => {
            let mut fault_plan = fault_plan.clone();
            if let Some(n) = cfg.max_retries {
                fault_plan.delivery.max_retries = n;
            }
            run_cluster_faulted::<Msg<K::Tuple>, TaskOutput, _>(cluster, &fault_plan, body)
        }
        None => run_cluster::<Msg<K::Tuple>, TaskOutput, _>(cluster, body),
    };

    // ---- assemble the result ----
    // The exchange's global ledger must balance whether or not the
    // presolve filter shrank the traffic — drops happen before sends.
    debug_assert_eq!(metaprep_dist::check_conservation(&run.stats), Ok(()));
    let mut labels = None;
    let mut per_task = Vec::with_capacity(cfg.tasks);
    let mut tuples_total = 0u64;
    let mut presolve_dropped = 0u64;
    let mut localcc = LocalCcStats::default();
    let mut peak_tuples = 0u64;
    let (mut lc_reads_written, mut other_reads_written) = (0u64, 0u64);
    for out in run.results {
        per_task.push(out.timings);
        tuples_total += out.tuples_emitted;
        presolve_dropped += out.presolve_dropped;
        localcc.merge(out.localcc);
        peak_tuples = peak_tuples.max(out.peak_tuples);
        lc_reads_written += out.lc_reads;
        other_reads_written += out.other_reads;
        if let Some(l) = out.labels {
            labels = Some(l);
        }
    }
    // EXPECT: the CC phase gathers component labels to rank 0, so exactly one task output carries `Some`.
    let labels = labels.expect("rank 0 must produce labels");
    let components = ComponentStats::from_component_array(&labels);

    // The differential guarantee of the presolve tier: every enumerated
    // k-mer occurrence was either shipped as a tuple or explicitly dropped
    // by the filter — never silently lost. Promoted to a release assert
    // like the receive-count check.
    assert_eq!(
        tuples_total + presolve_dropped,
        merhist.total(),
        "presolve conservation: emitted + dropped must equal the merHist total"
    );

    let mut memory = MemoryReport::model(
        cfg.m,
        fastqpart.len(),
        cfg.threads,
        avg_chunk_bytes,
        merhist.total(),
        K::PACKED_TUPLE_BYTES,
        passes,
        cfg.tasks,
        r as u64,
    );
    memory.record_peak(peak_tuples, std::mem::size_of::<K::Tuple>());

    // Driver-side counters: communication volume comes from the cluster's
    // own byte/message accounting (the single source of truth — the
    // collectives record stage *spans* only), and the memory model's
    // totals ride along so a report can show modeled vs measured.
    if rec.enabled() {
        for (task, s) in run.stats.iter().enumerate() {
            let task = task as u32;
            rec.record_counter(task, CounterKind::BytesSent, s.bytes_sent);
            rec.record_counter(task, CounterKind::MessagesSent, s.messages_sent);
            rec.record_counter(task, CounterKind::BytesReceived, s.bytes_received);
            rec.record_counter(task, CounterKind::MessagesReceived, s.messages_received);
        }
        rec.record_counter(0, CounterKind::MemModeledBytes, memory.total_modeled());
        rec.record_counter(
            0,
            CounterKind::MemPeakTupleBytes,
            memory.measured_peak_tuple_bytes,
        );
        rec.record_counter(0, CounterKind::PlannedPasses, passes as u64);
        if let Some(budget) = cfg.memory_budget {
            rec.record_counter(0, CounterKind::MemBudgetBytes, budget);
        }
        if let Some(f) = filter {
            rec.record_counter(
                0,
                CounterKind::SketchFillPermille,
                f.sketch().fill_ratio_permille(),
            );
        }
    }

    Ok(PipelineResult {
        components,
        labels,
        timings: StepTimings {
            index_create,
            per_task,
        },
        comm: run.stats,
        memory,
        tuples_total,
        localcc,
        lc_reads_written,
        other_reads_written,
        presolve_dropped,
        planned_passes: passes,
    })
}

/// Persist the adaptive pass plan under `dir`, or — when an artifact with
/// the same input fingerprint already exists (a restarted run) — verify
/// the recomputed plan matches it byte for byte. A same-fingerprint
/// mismatch means planning was not a pure function of its inputs, which
/// would silently break checkpoint replay; fail loudly instead. A
/// different fingerprint is just a stale artifact from another run and is
/// overwritten.
fn verify_or_store_plan(
    dir: &Path,
    cfg: &PipelineConfig,
    merhist: &MerHist,
    plan: &RangePlan,
    passes: usize,
) -> Result<(), PipelineError> {
    let fingerprint = plan_fingerprint(
        merhist.counts(),
        cfg.k,
        cfg.m,
        cfg.tasks,
        cfg.threads,
        cfg.memory_budget,
    );
    let mut bounds: Vec<u128> = (0..passes).map(|s| plan.pass_range(s).0).collect();
    bounds.push(plan.pass_range(passes - 1).1);
    let ck = PlanCheckpoint {
        passes: passes as u32,
        tasks: cfg.tasks as u32,
        threads: cfg.threads as u32,
        fingerprint,
        bounds,
    };
    let to_err =
        |e: crate::checkpoint::CkptError| PipelineError::InvalidInput(format!("plan.ckpt: {e}"));
    match PlanCheckpoint::load(dir).map_err(to_err)? {
        Some(prev) if prev.fingerprint == fingerprint => {
            if prev != ck {
                return Err(PipelineError::InvalidInput(format!(
                    "plan.ckpt disagrees with the recomputed plan for the same inputs \
                     (stored {} passes, recomputed {})",
                    prev.passes, ck.passes
                )));
            }
            Ok(())
        }
        _ => ck.store(dir).map_err(to_err),
    }
}

/// What one (possibly restarted) attempt of a task's body produces —
/// [`TaskOutput`] minus the span-derived timings, which are computed
/// once after the supervisor loop settles.
struct AttemptOutput {
    labels: Option<Vec<u32>>,
    tuples_emitted: u64,
    peak_tuples: u64,
    presolve_dropped: u64,
    localcc: LocalCcStats,
    lc_reads: u64,
    other_reads: u64,
}

/// Persist `ck` under `dir`, recording the write as a [`CHECKPOINT`]
/// span (`pass`/`detail` name the boundary) and bumping the counter.
fn write_checkpoint(obs: &mut TaskObs<'_>, dir: &Path, ck: &Checkpoint, detail: Option<u32>) {
    let t0 = obs.open();
    // EXPECT: a checkpoint that cannot be persisted would leave a later restart silently unprotected — abort the run instead.
    ck.store(dir).expect("checkpoint write failed");
    obs.close_detail(t0, CHECKPOINT, None, detail);
    obs.add(CounterKind::CheckpointWrites, 1);
}

#[allow(clippy::too_many_arguments)]
fn task_body<K: PipelineKmer, S: ChunkSource>(
    ctx: &mut TaskCtx<Msg<K::Tuple>>,
    cfg: &PipelineConfig,
    source: &S,
    fastqpart: &FastqPart,
    plan: &RangePlan,
    bin_owner: &[u32],
    owner_of_chunk: &[usize],
    filter: Option<&HighFreqFilter>,
    r: usize,
    rec: &dyn Recorder,
) -> TaskOutput {
    let rank = ctx.rank();
    // Every step is recorded as a span; `TaskTimings` is derived from the
    // spans at the end so the exported trace and the in-process timings
    // can never disagree. The observer lives OUTSIDE the supervised
    // restart loop: spans and counters from work completed before a crash
    // really happened and stay in the trace, and the task's Lamport clock
    // keeps its continuity across restarts.
    let mut obs = TaskObs::new(rec, rank as u32);
    let my_chunks: Vec<usize> = (0..fastqpart.len())
        .filter(|&i| owner_of_chunk[i] == rank)
        .collect();

    // Each planned crash fires at most once (the context remembers), so
    // the crash count bounds the restarts a task can ever need.
    let max_restarts = cfg
        .fault_plan
        .as_ref()
        .map(|fp| fp.crashes.len() as u32)
        .unwrap_or(0);
    let (out, restarts) = run_supervised(max_restarts, |restart_no| {
        attempt_body::<K, S>(
            ctx, cfg, source, fastqpart, plan, bin_owner, &my_chunks, filter, r, &mut obs,
            restart_no,
        )
    });

    if restarts > 0 {
        obs.add(CounterKind::TaskRestarts, restarts as u64);
    }
    if let Some(tally) = ctx.fault_tally() {
        if tally.injected > 0 {
            obs.add(CounterKind::FaultsInjected, tally.injected);
        }
        if tally.retries > 0 {
            obs.add(CounterKind::RetryAttempts, tally.retries);
        }
    }

    let tm = TaskTimings::from_spans(obs.spans());
    obs.finish();

    TaskOutput {
        timings: tm,
        labels: out.labels,
        tuples_emitted: out.tuples_emitted,
        peak_tuples: out.peak_tuples,
        presolve_dropped: out.presolve_dropped,
        localcc: out.localcc,
        lc_reads: out.lc_reads,
        other_reads: out.other_reads,
    }
}

/// One attempt at the task's pipeline work. On a fresh start
/// (`restart_no == 0`) this is the whole METAPREP flow; after a
/// supervised restart it reloads the last checkpoint and resumes at the
/// boundary the crash interrupted. Crashes only ever fire at boundary
/// tops — quiescent points where this task owes no in-flight message —
/// so resuming from the matching checkpoint re-sends nothing and the
/// replay is exact.
#[allow(clippy::too_many_arguments)]
fn attempt_body<K: PipelineKmer, S: ChunkSource>(
    ctx: &mut TaskCtx<Msg<K::Tuple>>,
    cfg: &PipelineConfig,
    source: &S,
    fastqpart: &FastqPart,
    plan: &RangePlan,
    bin_owner: &[u32],
    my_chunks: &[usize],
    filter: Option<&HighFreqFilter>,
    r: usize,
    obs: &mut TaskObs<'_>,
    restart_no: u32,
) -> AttemptOutput {
    let rank = ctx.rank();
    let p = ctx.size();
    let ckpt_dir = cfg.checkpoint_dir.as_deref();

    let mut ds = ConcurrentDisjointSet::new(r);
    let mut start_pass = 0usize;
    // `Some(next_round)` when the checkpoint says every pass is folded in
    // and the merge tree should resume at `next_round`.
    let mut resume_merge: Option<(u32, Vec<u32>)> = None;
    let mut tuples_emitted = 0u64;
    let mut peak_tuples = 0u64;
    let mut presolve_dropped = 0u64;
    let mut cc_stats = LocalCcStats::default();

    if restart_no > 0 {
        let t0 = obs.open();
        let loaded = match ckpt_dir {
            Some(dir) => {
                // EXPECT: an unreadable/corrupt checkpoint after a crash cannot be replayed safely (a from-scratch rerun would re-send consumed messages) — abort.
                Checkpoint::load(dir, rank as u32).expect("checkpoint load after restart")
            }
            None => None,
        };
        // No checkpoint on disk means the crash hit the very first
        // boundary, before any work or sends — a fresh start IS the
        // exact replay.
        if let Some(ck) = loaded {
            tuples_emitted = ck.tuples_emitted;
            peak_tuples = ck.peak_tuples;
            presolve_dropped = ck.presolve_dropped;
            cc_stats = ck.localcc;
            match ck.phase {
                CkptPhase::Pass { next_pass } => {
                    start_pass = next_pass as usize;
                    ds = ConcurrentDisjointSet::from_parent_array(ck.parents);
                }
                CkptPhase::Merge { next_round } => {
                    resume_merge = Some((next_round, ck.parents));
                }
            }
        }
        obs.close(t0, TASK_RESTART, None);
    }

    let key_bits = 2 * cfg.k as u32;
    // Pooled LocalSort buffers: destination, radix scratch, and the
    // debug-build scatter tracker are allocated on the first pass and
    // recycled across all passes (the unfused path re-allocated and
    // zero-initialized both big vectors every pass).
    let mut sort_bufs: PassBuffers<K::Tuple> = PassBuffers::new();

    let pass_range = if resume_merge.is_some() {
        // All passes are folded into the checkpointed parent array.
        0..0
    } else {
        // The plan's pass count, not `cfg.passes` — they differ when the
        // adaptive planner solved `--memory-budget` for the pass count.
        start_pass..plan.passes()
    };
    for pass in pass_range {
        let pass_u32 = pass as u32;
        ctx.maybe_crash(Boundary::Pass(pass_u32));
        // ---- KmerGen (+ simulated I/O) ----
        // I/O and generation time are CPU-nanos summed across the pool's
        // threads, not one wall interval — anchor them back-to-back at the
        // pass start so the trace still shows where the pass's time went.
        let pass_start = obs.open();
        let use_opt = cfg.cc_opt && pass > 0;
        let gen = kmergen_pass::<K, S>(
            ctx.pool(),
            source,
            fastqpart,
            plan,
            my_chunks,
            bin_owner,
            pass,
            cfg.use_x4_kmergen,
            filter,
            |frag| if use_opt { ds.find(frag) } else { frag },
        );
        let after_io = obs.span_with_dur(
            pass_start,
            gen.io_nanos,
            Step::KmerGenIo.name(),
            Some(pass_u32),
        );
        obs.span_with_dur(
            after_io,
            gen.gen_nanos,
            Step::KmerGen.name(),
            Some(pass_u32),
        );
        let out_tuples: u64 = gen.outgoing.iter().map(|v| v.len() as u64).sum();
        tuples_emitted += out_tuples;
        presolve_dropped += gen.dropped;
        obs.add(CounterKind::TuplesEmitted, out_tuples);
        if gen.dropped > 0 {
            obs.add(CounterKind::PresolveDroppedKmers, gen.dropped);
        }

        // ---- KmerGen-Comm: the P-stage all-to-all ----
        let t0 = obs.open();
        let outgoing: Vec<Msg<K::Tuple>> = gen.outgoing.into_iter().map(Msg::Tuples).collect();
        let incoming = alltoall_obs(ctx, outgoing, obs, Some(pass_u32), Step::KmerGenComm.name());
        let expected = expected_incoming(fastqpart, plan, pass, rank);
        // Checked conversion: a u64 receive count that doesn't fit the
        // address space must fail loudly, not silently truncate a buffer
        // size on 32-bit targets.
        let Ok(expected_len) = usize::try_from(expected) else {
            panic!("receive count {expected} overflows usize on this target")
        };
        // Keep the per-sender buffers as-is: the fused LocalSort scatters
        // straight out of them, so the old concat copy never happens.
        let parts: Vec<Vec<K::Tuple>> = incoming
            .into_iter()
            .map(|msg| match msg {
                Msg::Tuples(v) => v,
                _ => unreachable!("no parent arrays during KmerGen-Comm"),
            })
            .collect();
        let received: usize = parts.iter().map(Vec::len).sum();
        // Release-mode check (promoted from a debug assert, in the spirit
        // of the cluster's message-conservation accounting): the FASTQPart
        // receive-count precomputation is what lets buffers be sized and
        // scatter offsets trusted, so a mismatch must abort the run. With
        // the presolve filter active the bin-granular precomputation is an
        // upper bound (drops are value-granular), so the check relaxes to
        // `<=` — the exact balance is enforced globally by the driver's
        // `emitted + dropped == enumerated` conservation assert.
        if filter.is_some() {
            assert!(
                received <= expected_len,
                "receive-count precomputation: task {rank} pass {pass} got {received} \
                 tuples but FASTQPart bounds {expected_len}"
            );
        } else {
            assert_eq!(
                received, expected_len,
                "receive-count precomputation: task {rank} pass {pass} got {received} \
                 tuples but FASTQPart predicts {expected_len}"
            );
        }
        obs.close(t0, Step::KmerGenComm.name(), Some(pass_u32));
        obs.add(CounterKind::TuplesReceived, received as u64);
        // Per-pass tuple residency peaks twice: during the all-to-all the
        // outgoing send buffers coexist with the received parts (out + in
        // — the old `2 * in` accounting missed the send side and under-
        // reported), and during the fused LocalSort the received parts
        // coexist with the partitioned destination during the scatter,
        // then the destination with its radix scratch (2 * in either way;
        // the unfused third concat copy is gone). Capacity the pooled
        // buffers carry between passes is deliberately not modeled — the
        // measured allocator peak covers it.
        peak_tuples = peak_tuples.max(out_tuples + received as u64);
        peak_tuples = peak_tuples.max(2 * received as u64);

        // ---- LocalSort (fused: scatter-on-receive + pruned radix) ----
        let t0 = obs.open();
        let boundaries: Vec<<K as metaprep_kmer::Kmer>::Repr> = plan
            .thread_boundaries(pass, rank)
            .into_iter()
            .map(K::repr_from_u128)
            .collect();
        let res = ctx.pool().install(|| {
            fused_local_sort(
                parts,
                &mut sort_bufs,
                &boundaries,
                cfg.sort_digit_bits,
                key_bits,
            )
        });
        let tuples = sort_bufs.sorted();
        obs.close(t0, Step::LocalSort.name(), Some(pass_u32));
        obs.add(CounterKind::SortElements, received as u64);
        obs.add(CounterKind::RadixPassesRun, res.stats.passes_run);
        obs.add(CounterKind::RadixPassesPruned, res.stats.passes_pruned);
        obs.add(
            CounterKind::ScatterBytes,
            (received * std::mem::size_of::<K::Tuple>()) as u64,
        );

        // ---- LocalCC ----
        let t0 = obs.open();
        // The fused scatter already knows the per-thread sub-range offsets;
        // debug-check them against the binary-search derivation they
        // replace.
        debug_assert_eq!(res.offsets, thread_offsets_of::<K>(tuples, &boundaries));
        let stats = localcc_pass::<K>(ctx.pool(), &ds, tuples, &res.offsets, cfg.kf_filter);
        obs.close(t0, Step::LocalCc.name(), Some(pass_u32));
        obs.add(CounterKind::UfFinds, stats.uf.finds);
        obs.add(CounterKind::UfUnions, stats.uf.unions);
        obs.add(CounterKind::UfPathSplits, stats.uf.path_splits);
        cc_stats.merge(stats);

        if let Some(dir) = ckpt_dir {
            let ck = Checkpoint {
                rank: rank as u32,
                phase: CkptPhase::Pass {
                    next_pass: pass_u32 + 1,
                },
                tuples_emitted,
                peak_tuples,
                presolve_dropped,
                localcc: cc_stats,
                // RAW parents (no compression): restoring this exact tree
                // is what makes the replay byte-identical.
                parents: ds.parent_snapshot(),
            };
            write_checkpoint(obs, dir, &ck, Some(pass_u32));
        }
    }

    // ---- MergeCC: ceil(log2 P) pairwise rounds (Figure 4) ----
    let (mut local, mut stride, mut round) = match resume_merge {
        Some((next_round, parents)) => (
            DisjointSet::from_parent_array(parents),
            1usize << next_round,
            next_round,
        ),
        None => (ds.into_disjoint_set(), 1usize, 0u32),
    };
    while stride < p {
        ctx.maybe_crash(Boundary::MergeRound(round));
        if rank % (2 * stride) == stride {
            // Send the compressed component information downhill, then
            // retire from the merge.
            let t0 = obs.open();
            let msg = if cfg.merge_sparse {
                Msg::SparseParents(sparse_pairs(&mut local))
            } else {
                Msg::Parents(local.component_array().to_vec())
            };
            obs.add(CounterKind::MergeBytes, msg.size_bytes() as u64);
            ctx.send_traced(rank - stride, msg, obs, Step::MergeComm.name(), Some(round));
            obs.close_detail(t0, Step::MergeComm.name(), None, Some(round));
            break;
        } else if rank % (2 * stride) == 0 && rank + stride < p {
            let t0 = obs.open();
            let msg = ctx.recv_from_traced(rank + stride, obs, Step::MergeComm.name(), Some(round));
            obs.close_detail(t0, Step::MergeComm.name(), None, Some(round));
            obs.add(CounterKind::MergeBytes, msg.size_bytes() as u64);
            let t0 = obs.open();
            match msg {
                Msg::Parents(arr) => absorb_parent_array(&mut local, &arr),
                Msg::SparseParents(pairs) => absorb_sparse_pairs(&mut local, &pairs),
                Msg::Tuples(_) => unreachable!("no tuples during MergeCC"),
            }
            obs.close_detail(t0, Step::MergeCc.name(), None, Some(round));

            if let Some(dir) = ckpt_dir {
                let ck = Checkpoint {
                    rank: rank as u32,
                    phase: CkptPhase::Merge {
                        next_round: round + 1,
                    },
                    tuples_emitted,
                    peak_tuples,
                    presolve_dropped,
                    localcc: cc_stats,
                    parents: local.raw_parents().to_vec(),
                };
                write_checkpoint(obs, dir, &ck, Some(round));
            }
        }
        stride *= 2;
        round += 1;
    }

    // ---- CC-I/O: broadcast final labels; partition own chunks' reads ----
    let t0 = obs.open();
    let final_labels = if rank == 0 {
        let arr = local.component_array().to_vec();
        broadcast_obs(ctx, 0, Some(Msg::Parents(arr)), obs, Step::CcIo.name())
    } else {
        broadcast_obs(ctx, 0, None, obs, Step::CcIo.name())
    };
    let final_labels = match final_labels {
        Msg::Parents(arr) => arr,
        _ => unreachable!("broadcast carries parent arrays"),
    };
    // Simulate the parallel FASTQ write: each task walks the reads of its
    // own chunks and buckets them by component (the actual file write is
    // `output::write_partitions`, outside the timed region in the paper's
    // harness too — CC-I/O covers the broadcast + extraction).
    let largest_root = largest_root_of(&final_labels);
    let mut lc_reads = 0u64;
    let mut other_reads = 0u64;
    for &c in my_chunks {
        let spec = fastqpart.chunks()[c].spec;
        let lo = spec.first_seq as usize;
        for i in lo..lo + spec.seqs as usize {
            if final_labels[source.frag_of_seq(i) as usize] == largest_root {
                lc_reads += 1;
            } else {
                other_reads += 1;
            }
        }
    }
    obs.close(t0, Step::CcIo.name(), None);

    AttemptOutput {
        labels: (rank == 0).then_some(final_labels),
        tuples_emitted,
        peak_tuples,
        presolve_dropped,
        localcc: cc_stats,
        lc_reads,
        other_reads,
    }
}

/// Root label of the largest component in a compressed label array.
fn largest_root_of(labels: &[u32]) -> u32 {
    let mut counts = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(r, s)| (s, std::cmp::Reverse(r)))
        .map(|(r, _)| r)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PipelineConfig, PipelineConfigBuilder};
    use metaprep_cc::DisjointSet;
    use metaprep_kmer::{for_each_canonical_kmer, Kmer64 as K64};
    use metaprep_synth::{simulate_community, CommunityProfile};
    use std::collections::HashMap;

    /// Brute-force reference: hash k-mers to read lists, union.
    fn reference_labels(reads: &ReadStore, k: usize, kf: Option<(u32, u32)>) -> Vec<u32> {
        let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
        for (seq, frag) in reads.iter() {
            for_each_canonical_kmer::<K64>(seq, k, |v, _| {
                groups.entry(v).or_default().push(frag);
            });
        }
        let mut ds = DisjointSet::new(reads.num_fragments() as usize);
        for (_, rs) in groups {
            let freq = rs.len() as u32;
            if let Some((lo, hi)) = kf {
                if freq < lo || freq > hi {
                    continue;
                }
            }
            for w in rs.windows(2) {
                ds.union(w[0], w[1]);
            }
        }
        ds.into_component_array()
    }

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        let mut fwd = HashMap::new();
        let mut bwd = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    fn small_reads() -> ReadStore {
        let mut p = CommunityProfile::quickstart();
        p.read_pairs = 400;
        p.species = 8;
        simulate_community(&p, 17).reads
    }

    #[test]
    fn matches_reference_single_task() {
        let reads = small_reads();
        let cfg = PipelineConfig::builder().k(21).m(6).build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let want = reference_labels(&reads, 21, None);
        assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn matches_reference_across_configs() {
        let reads = small_reads();
        let want = reference_labels(&reads, 21, None);
        for (s, p, t) in [(1, 2, 2), (2, 1, 2), (2, 3, 1), (4, 2, 2), (1, 4, 1)] {
            let cfg = PipelineConfig::builder()
                .k(21)
                .m(6)
                .passes(s)
                .tasks(p)
                .threads(t)
                .build();
            let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
            assert!(
                same_partition(&res.labels, &want),
                "S={s} P={p} T={t} disagrees with reference"
            );
        }
    }

    #[test]
    fn cc_opt_does_not_change_the_partition() {
        let reads = small_reads();
        let mk = |opt: bool| {
            let cfg = PipelineConfig::builder()
                .k(21)
                .m(6)
                .passes(3)
                .tasks(2)
                .threads(2)
                .cc_opt(opt)
                .build();
            Pipeline::new(cfg).run_reads(&reads).unwrap().labels
        };
        assert!(same_partition(&mk(true), &mk(false)));
    }

    #[test]
    fn sort_digit_bits_do_not_change_labels() {
        // The fused LocalSort's output is the unique stable sorted order,
        // so the digit width must not change anything downstream — not
        // just the partition, the exact label array.
        let reads = small_reads();
        let mk = |bits: u32| {
            let cfg = PipelineConfig::builder()
                .k(21)
                .m(6)
                .passes(2)
                .tasks(2)
                .threads(2)
                .sort_digit_bits(bits)
                .build();
            Pipeline::new(cfg).run_reads(&reads).unwrap().labels
        };
        let want = mk(8);
        for bits in [11u32, 16] {
            assert_eq!(mk(bits), want, "digit width {bits} changed the labels");
        }
    }

    #[test]
    fn kf_filter_matches_reference() {
        let reads = small_reads();
        let kf = (2, 10);
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .passes(2)
            .tasks(2)
            .threads(2)
            .kf_filter(kf.0, kf.1)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let want = reference_labels(&reads, 21, Some(kf));
        assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn x4_kmergen_matches_scalar() {
        let reads = small_reads();
        let mk = |x4: bool| {
            let cfg = PipelineConfig::builder()
                .k(21)
                .m(6)
                .tasks(2)
                .threads(2)
                .x4_kmergen(x4)
                .build();
            Pipeline::new(cfg).run_reads(&reads).unwrap().labels
        };
        assert!(same_partition(&mk(true), &mk(false)));
    }

    #[test]
    fn wide_kmers_run_and_reduce_connectivity() {
        let reads = small_reads();
        let frac = |k: usize| {
            let cfg = PipelineConfig::builder()
                .k(k)
                .m(6)
                .tasks(2)
                .threads(2)
                .build();
            Pipeline::new(cfg)
                .run_reads(&reads)
                .unwrap()
                .largest_component_fraction()
        };
        let f27 = frac(27);
        let f63 = frac(63);
        // Larger k can only remove edges (fewer shared k-mers).
        assert!(f63 <= f27 + 1e-9, "f27={f27} f63={f63}");
    }

    #[test]
    fn tuples_total_matches_kmer_count() {
        let reads = small_reads();
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .passes(2)
            .tasks(2)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let mut count = 0u64;
        for (seq, _) in reads.iter() {
            for_each_canonical_kmer::<K64>(seq, 21, |_, _| count += 1);
        }
        assert_eq!(res.tuples_total, count);
    }

    #[test]
    fn memory_peak_decreases_with_passes() {
        let reads = small_reads();
        let peak = |s: usize| {
            let cfg = PipelineConfig::builder().k(21).m(6).passes(s).build();
            Pipeline::new(cfg)
                .run_reads(&reads)
                .unwrap()
                .memory
                .measured_peak_tuples
        };
        let p1 = peak(1);
        let p4 = peak(4);
        assert!(p4 < p1, "p1={p1} p4={p4}");
    }

    #[test]
    fn comm_bytes_zero_for_single_task() {
        let reads = small_reads();
        let cfg = PipelineConfig::builder().k(21).m(6).build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        assert_eq!(res.comm[0].bytes_sent, 0);
    }

    #[test]
    fn comm_bytes_positive_for_multi_task() {
        let reads = small_reads();
        let cfg = PipelineConfig::builder().k(21).m(6).tasks(4).build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        assert!(res.comm.iter().any(|s| s.bytes_sent > 0));
        // Every task participates in the merge or all-to-all.
        assert!(res.comm.iter().all(|s| s.messages_sent > 0));
    }

    #[test]
    fn sparse_merge_same_partition_fewer_bytes() {
        // Sparse Merge-Comm pays off when each task's local forest touches
        // a minority of the reads: short reads (few k-mers each) spread
        // over many tasks. Build such a store explicitly.
        let mut reads = ReadStore::new();
        let mut x = 5u64;
        for _ in 0..3000 {
            let seq: Vec<u8> = (0..26)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    b"ACGT"[(x >> 61) as usize & 3]
                })
                .collect();
            reads.push_single(&seq);
        }
        let mk = |sparse: bool| {
            let cfg = PipelineConfig::builder()
                .k(21)
                .m(6)
                .tasks(16)
                .merge_sparse(sparse)
                .build();
            Pipeline::new(cfg).run_reads(&reads).unwrap()
        };
        let dense = mk(false);
        let sparse = mk(true);
        assert!(same_partition(&dense.labels, &sparse.labels));
        let bytes = |r: &PipelineResult| r.comm.iter().map(|s| s.bytes_sent).sum::<u64>();
        assert!(
            bytes(&sparse) < bytes(&dense),
            "sparse {} >= dense {}",
            bytes(&sparse),
            bytes(&dense)
        );
    }

    #[test]
    fn file_pipeline_matches_memory_pipeline() {
        let reads = small_reads();
        let dir = std::env::temp_dir().join("metaprep_core_filepipe_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        metaprep_io::write_fastq_path(&path, &reads).unwrap();

        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(3)
            .threads(2)
            .passes(2)
            .build();
        let mem = Pipeline::new(cfg.clone()).run_reads(&reads).unwrap();
        let file = Pipeline::new(cfg).run_fastq_file(&path, true).unwrap();
        assert_eq!(file.labels.len(), mem.labels.len());
        assert!(same_partition(&file.labels, &mem.labels));
        assert_eq!(file.tuples_total, mem.tuples_total);
        // File path measures real chunk reads.
        assert!(file.timings.max_of(Step::KmerGenIo) > std::time::Duration::ZERO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pipeline_unpaired() {
        let reads = small_reads();
        let mut single = ReadStore::new();
        for (seq, _) in reads.iter().take(201) {
            single.push_single(seq);
        }
        let dir = std::env::temp_dir().join("metaprep_core_filepipe_unpaired");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        metaprep_io::write_fastq_path(&path, &single).unwrap();
        let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
        let mem = Pipeline::new(cfg.clone()).run_reads(&single).unwrap();
        let file = Pipeline::new(cfg).run_fastq_file(&path, false).unwrap();
        assert!(same_partition(&file.labels, &mem.labels));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pipeline_missing_file_errors() {
        let cfg = PipelineConfig::builder().k(21).m(6).build();
        assert!(Pipeline::new(cfg)
            .run_fastq_file("/nonexistent/reads.fastq", true)
            .is_err());
    }

    #[test]
    fn timings_populated() {
        let reads = small_reads();
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(2)
            .threads(2)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        assert_eq!(res.timings.per_task.len(), 2);
        assert!(res.timings.index_create > std::time::Duration::ZERO);
        assert!(res.timings.max_of(Step::KmerGen) > std::time::Duration::ZERO);
        assert!(res.timings.max_of(Step::LocalSort) > std::time::Duration::ZERO);
    }

    #[test]
    fn span_derived_report_reproduces_timings_exactly() {
        // The acceptance bar for the telemetry layer: a report rebuilt
        // from the exported event stream must agree with the in-process
        // `StepTimings` to the nanosecond — both are derived from the
        // same spans, so any drift is a wiring bug.
        use metaprep_obs::{MemRecorder, RunSummary};
        let reads = small_reads();
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(3)
            .threads(2)
            .passes(2)
            .build();
        let rec = MemRecorder::new(3);
        let res = Pipeline::new(cfg).run_reads_recorded(&reads, &rec).unwrap();
        let events = rec.into_events();
        let s = RunSummary::from_events(&events);

        assert_eq!(s.tasks, 3);
        assert_eq!(
            s.index_create_ns,
            res.timings.index_create.as_nanos() as u64
        );
        for step in Step::all() {
            let per_task = s.step_task_ns(step.name()).unwrap_or(&[]);
            for (task, tt) in res.timings.per_task.iter().enumerate() {
                let want = tt.get(step).as_nanos() as u64;
                let got = per_task.get(task).copied().unwrap_or(0);
                assert_eq!(got, want, "step {} task {task}", step.name());
            }
        }
        // Communication counters mirror the cluster's own accounting.
        for (task, cs) in res.comm.iter().enumerate() {
            let task = task as u32;
            assert_eq!(s.counter(task, CounterKind::BytesSent), cs.bytes_sent);
            assert_eq!(
                s.counter(task, CounterKind::BytesReceived),
                cs.bytes_received
            );
            assert_eq!(s.counter(task, CounterKind::MessagesSent), cs.messages_sent);
            assert_eq!(
                s.counter(task, CounterKind::MessagesReceived),
                cs.messages_received
            );
        }
        // Work and memory counters match the run's own totals.
        assert_eq!(
            s.counter_total(CounterKind::TuplesEmitted),
            res.tuples_total
        );
        assert_eq!(
            s.counter_total(CounterKind::TuplesReceived),
            res.tuples_total
        );
        assert_eq!(
            s.counter_total(CounterKind::UfUnions),
            res.localcc.uf.unions
        );
        assert_eq!(
            s.counter_total(CounterKind::MemModeledBytes),
            res.memory.total_modeled()
        );
        assert_eq!(
            s.counter_total(CounterKind::MemPeakTupleBytes),
            res.memory.measured_peak_tuple_bytes
        );
        // Per-pass breakdown covers both passes, and the rendered report
        // mentions every paper step.
        assert_eq!(s.passes(), vec![0, 1]);
        let text = s.render();
        for step in Step::all() {
            assert!(text.contains(step.name()), "report missing {}", step.name());
        }
    }

    #[test]
    fn critical_path_tiles_recorded_run_makespan_exactly() {
        // Acceptance bar for the causal-tracing layer: on a real recorded
        // partition run, the analyzer's critical path must tile the run
        // interval exactly (segment durations sum to the makespan to the
        // nanosecond), every send must pair with a recv in Lamport order,
        // and the Chrome export (now with flow events) must still pass
        // the schema validator.
        use metaprep_obs::export::{validate_chrome, write_chrome};
        use metaprep_obs::{Event, MemRecorder, TraceAnalysis};
        let reads = small_reads();
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(4)
            .threads(2)
            .passes(2)
            .build();
        let rec = MemRecorder::new(4);
        let res = Pipeline::new(cfg).run_reads_recorded(&reads, &rec).unwrap();
        let events = rec.into_events();

        let a = TraceAnalysis::from_events(&events);
        a.check_conservation()
            .expect("every send matches exactly one recv");
        a.check_causality()
            .expect("lamport order along every channel");
        assert!(a.events_dropped() == 0 && a.warnings().is_empty());
        // Real messages moved: P-stage all-to-all × 2 passes + merge tree
        // + broadcast.
        assert!(a.pairs().len() >= 4 * 3 * 2);

        let path = a.critical_path();
        assert!(!path.is_empty());
        let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
        assert_eq!(sum, a.makespan_ns(), "critical path must tile the run");
        // The analyzer's makespan is the span-derived run interval — the
        // same spans `StepTimings`/`RunSummary` are built from. IndexCreate
        // starts at the run clock's origin on task 0.
        let span_end = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { end_ns, .. } => Some(*end_ns),
                _ => None,
            })
            .max()
            .unwrap();
        let span_start = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { start_ns, .. } => Some(*start_ns),
                _ => None,
            })
            .min()
            .unwrap();
        assert_eq!(a.makespan_ns(), span_end - span_start);
        assert!(a.makespan_ns() >= res.timings.index_create.as_nanos() as u64);

        // The path is causally contiguous: each segment hands off exactly
        // where the next begins.
        for w in path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }

        // Imbalance stats exist for the paper steps that ran everywhere.
        let imb = a.stage_imbalance();
        assert!(imb.iter().any(|s| s.stage == "KmerGen"));
        for s in &imb {
            assert!(s.factor >= 1.0, "max/mean is at least 1");
        }

        // Chrome export with flow arrows still validates.
        let chrome = write_chrome(&events);
        validate_chrome(&chrome).expect("flow events must pass the schema validator");
        let report = a.render_report(5);
        assert!(report.contains("critical path"));
    }

    #[test]
    fn file_pipeline_records_streaming_index_spans() {
        use metaprep_obs::{Event, MemRecorder};
        let reads = small_reads();
        let dir = std::env::temp_dir().join("metaprep_core_filepipe_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        metaprep_io::write_fastq_path(&path, &reads).unwrap();
        let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
        let rec = MemRecorder::new(2);
        Pipeline::new(cfg)
            .run_fastq_file_recorded(&path, true, &rec)
            .unwrap();
        let events = rec.into_events();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"IndexCreate"));
        assert!(names.contains(&"index-chunking"));
        assert!(names.contains(&"index-histogram"));
        let streamed = events.iter().any(|e| {
            matches!(e, Event::Counter { kind, value, .. }
                if *kind == CounterKind::ChunkRecordsStreamed && *value > 0)
        });
        assert!(streamed, "ChunkRecordsStreamed counter missing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Deterministic single-thread baseline for byte-identical replay
    /// assertions: with `threads(1)` the whole run (union order, path
    /// compression, labels) is a pure function of the input.
    fn chaos_cfg() -> PipelineConfigBuilder {
        PipelineConfig::builder()
            .k(21)
            .m(6)
            .passes(2)
            .tasks(4)
            .threads(1)
    }

    #[test]
    fn faulted_runs_are_byte_identical_to_fault_free() {
        // Differential gate over three generated plans combining all four
        // message-fault kinds: drop (+ retry), delay, duplicate (+ dedup),
        // and reorder (+ stash). Delivery must stay exactly-once in-order,
        // so the labels must match the fault-free run BYTE for byte.
        let reads = small_reads();
        let want = Pipeline::new(chaos_cfg().build())
            .run_reads(&reads)
            .unwrap()
            .labels;
        for seed in [7u64, 1234, 0xC0FFEE] {
            let plan = metaprep_dist::FaultPlan::parse_spec(&format!(
                "seed={seed},drop=0.05,delay=0.05,dup=0.05,reorder=0.05"
            ))
            .unwrap();
            let res = Pipeline::new(chaos_cfg().fault_plan(plan).build())
                .run_reads(&reads)
                .unwrap();
            assert_eq!(res.labels, want, "seed {seed} changed the labels");
        }
    }

    #[test]
    fn crashed_tasks_replay_byte_identically_from_checkpoints() {
        // Mid-run crashes at a pass boundary and at two merge-round
        // boundaries (one before the rank's first absorb — restoring a
        // Pass checkpoint — and one after — restoring a Merge checkpoint),
        // plus message faults on top. The supervised restarts must replay
        // from the checkpoints to the exact same labels.
        use metaprep_dist::{Boundary, FaultPlan};
        let reads = small_reads();
        let want = Pipeline::new(chaos_cfg().build())
            .run_reads(&reads)
            .unwrap()
            .labels;
        let dir = std::env::temp_dir().join("metaprep_core_chaos_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::parse_spec("seed=42,drop=0.03,dup=0.03,reorder=0.03")
            .unwrap()
            .with_crash(1, Boundary::Pass(1))
            .with_crash(2, Boundary::MergeRound(0))
            .with_crash(2, Boundary::MergeRound(1));
        let res = Pipeline::new(chaos_cfg().fault_plan(plan).checkpoint_dir(&dir).build())
            .run_reads(&reads)
            .unwrap();
        assert_eq!(res.labels, want, "restarted run changed the labels");
        // Checkpoints were actually written for every rank.
        for rank in 0..4 {
            assert!(
                crate::checkpoint::Checkpoint::path_for(&dir, rank).exists(),
                "rank {rank} left no checkpoint"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_the_first_boundary_replays_from_scratch() {
        // A crash at Pass(0) fires before anything is sent or
        // checkpointed; the restart finds no checkpoint and a fresh start
        // is the exact replay.
        use metaprep_dist::{Boundary, FaultPlan};
        let reads = small_reads();
        let want = Pipeline::new(chaos_cfg().build())
            .run_reads(&reads)
            .unwrap()
            .labels;
        let dir = std::env::temp_dir().join("metaprep_core_chaos_p0");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::new(9).with_crash(3, Boundary::Pass(0));
        let res = Pipeline::new(chaos_cfg().fault_plan(plan).checkpoint_dir(&dir).build())
            .run_reads(&reads)
            .unwrap();
        assert_eq!(res.labels, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_trace_passes_strict_analysis_with_recovery_visible() {
        // The recorded trace of a faulted run must still satisfy the
        // strict analyzer invariants (conservation + causality + no
        // drops): retries re-offer the SAME logical message, so each
        // traced send still pairs with exactly one traced recv. The
        // recovery machinery must be visible in the counters.
        use metaprep_dist::{Boundary, FaultPlan};
        use metaprep_obs::{MemRecorder, RunSummary, TraceAnalysis};
        let reads = small_reads();
        let dir = std::env::temp_dir().join("metaprep_core_chaos_trace");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::parse_spec("seed=5,drop=0.08,delay=0.05,dup=0.08,reorder=0.05")
            .unwrap()
            .with_crash(1, Boundary::Pass(1));
        let rec = MemRecorder::new(4);
        let res = Pipeline::new(chaos_cfg().fault_plan(plan).checkpoint_dir(&dir).build())
            .run_reads_recorded(&reads, &rec)
            .unwrap();
        let want = Pipeline::new(chaos_cfg().build())
            .run_reads(&reads)
            .unwrap()
            .labels;
        assert_eq!(res.labels, want);

        let events = rec.into_events();
        let a = TraceAnalysis::from_events(&events);
        a.check_conservation()
            .expect("faulted trace conserves messages after dedup");
        a.check_causality()
            .expect("lamport order survives recovery");
        assert_eq!(a.events_dropped(), 0);

        let s = RunSummary::from_events(&events);
        assert!(
            s.counter_total(CounterKind::FaultsInjected) > 0,
            "no faults visible in the trace"
        );
        assert!(
            s.counter_total(CounterKind::RetryAttempts) > 0,
            "no retries visible in the trace"
        );
        assert!(
            s.counter_total(CounterKind::CheckpointWrites) > 0,
            "no checkpoint writes visible in the trace"
        );
        assert_eq!(
            s.counter(1, CounterKind::TaskRestarts),
            1,
            "rank 1's restart must be visible"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The exact [`PlanInputs`] `run_generic` will derive for `cfg` over
    /// `reads` — so tests can compute budgets that force a chosen pass
    /// count.
    fn plan_inputs_for(reads: &ReadStore, cfg: &PipelineConfig) -> PlanInputs {
        let c = cfg.effective_chunks();
        let mh = MerHist::build(reads, cfg.k, cfg.m);
        let fp = FastqPart::build(reads, c, cfg.k, cfg.m);
        let avg = if fp.is_empty() {
            0
        } else {
            fp.chunks().iter().map(|ch| ch.spec.bytes).sum::<u64>() / fp.len() as u64
        };
        PlanInputs {
            m: cfg.m,
            chunks: fp.len(),
            threads: cfg.threads,
            avg_chunk_bytes: avg,
            total_tuples: mh.total(),
            packed_tuple_bytes: K64::PACKED_TUPLE_BYTES,
            tasks: cfg.tasks,
            reads: reads.num_fragments() as u64,
        }
    }

    #[test]
    fn memory_budget_engages_the_planner() {
        let reads = small_reads();
        let probe = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(2)
            .threads(2)
            .build();
        let inputs = plan_inputs_for(&reads, &probe);
        // A budget exactly at the 2-pass model: 1 pass must not fit, so the
        // planner has a real decision to make.
        let budget = inputs.modeled_at(2);
        assert!(inputs.modeled_at(1) > budget, "budget must discriminate");

        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(2)
            .threads(2)
            .memory_budget(budget)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        assert_eq!(res.planned_passes, 2, "planner should have chosen 2 passes");
        assert!(res.memory.total_modeled() <= budget);
        // An adaptively planned run is still a correct run.
        let want = reference_labels(&reads, 21, None);
        assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn explicit_passes_over_budget_is_a_runtime_config_error() {
        let reads = small_reads();
        // --passes wins over the planner, but 1 pass can never fit a 1-byte
        // budget; the combination must be rejected, not silently ignored.
        let cfg = PipelineConfig::builder()
            .k(21)
            .m(6)
            .passes(1)
            .memory_budget(1)
            .build();
        match Pipeline::new(cfg).run_reads(&reads) {
            Err(PipelineError::InvalidConfig(msg)) => {
                assert!(msg.contains("memory budget"), "{msg}");
            }
            other => panic!(
                "expected InvalidConfig, got {:?}",
                other.map(|r| r.labels.len())
            ),
        }
    }

    #[test]
    fn presolve_filter_matches_exact_counting_oracle() {
        // The tentpole differential guarantee: a presolve run (sketch-based
        // drops BEFORE tuples exist) must produce byte-identical labels to
        // a kf-filter run (exact counting AFTER the sort) with the same
        // upper threshold, provided the sketch makes no frequency
        // false-positives at this scale — which the test verifies against
        // exact counts first, so a failure points at the right layer.
        let reads = small_reads();
        let threshold = 3u32;

        let mut truth: HashMap<u64, u64> = HashMap::new();
        for (seq, _) in reads.iter() {
            for_each_canonical_kmer::<K64>(seq, 21, |v, _| {
                *truth.entry(v).or_insert(0) += 1;
            });
        }
        let (_, sketch) = MerHist::build_sketched(&reads, 21, 6, SketchParams::default());
        for (&v, &n) in &truth {
            assert_eq!(
                sketch.estimate(v) > u64::from(threshold),
                n > u64::from(threshold),
                "sketch misclassifies a k-mer at this scale; enlarge the default sketch"
            );
        }

        let mk = |presolve: bool| {
            let mut b = PipelineConfig::builder()
                .k(21)
                .m(6)
                .passes(2)
                .tasks(2)
                .threads(1);
            b = if presolve {
                b.presolve_threshold(threshold)
            } else {
                b.kf_filter(1, threshold)
            };
            Pipeline::new(b.build()).run_reads(&reads).unwrap()
        };
        let pre = mk(true);
        let oracle = mk(false);
        assert!(pre.presolve_dropped > 0, "nothing was presolved away");
        assert!(
            pre.tuples_total < oracle.tuples_total,
            "presolve must shrink tuple volume ({} vs {})",
            pre.tuples_total,
            oracle.tuples_total
        );
        let total: u64 = truth.values().sum();
        assert_eq!(
            pre.tuples_total + pre.presolve_dropped,
            total,
            "conservation"
        );
        assert_eq!(pre.labels, oracle.labels, "presolve changed the labels");
        // The comm ledger still balances under a filtered exchange.
        metaprep_dist::check_conservation(&pre.comm).unwrap();
    }

    #[test]
    fn adaptive_plan_crash_restart_replays_byte_identically() {
        // Chaos satellite: a crash mid-pass under a planner-chosen pass
        // count must restart from the checkpoints and reproduce the
        // fault-free adaptive run's labels byte for byte, with the plan
        // artifact on disk guarding the geometry.
        use metaprep_dist::{Boundary, FaultPlan};
        let reads = small_reads();
        let probe = chaos_cfg().build();
        let inputs = plan_inputs_for(&reads, &probe);
        let budget = inputs.modeled_at(2);
        let mk = || {
            PipelineConfig::builder()
                .k(21)
                .m(6)
                .tasks(4)
                .threads(1)
                .memory_budget(budget)
                .presolve_threshold(3)
        };
        let want = Pipeline::new(mk().build()).run_reads(&reads).unwrap();
        assert_eq!(
            want.planned_passes, 2,
            "budget should have planned 2 passes"
        );

        let dir = std::env::temp_dir().join("metaprep_core_adaptive_chaos");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::new(11).with_crash(1, Boundary::Pass(1));
        let res = Pipeline::new(mk().fault_plan(plan).checkpoint_dir(&dir).build())
            .run_reads(&reads)
            .unwrap();
        assert_eq!(res.labels, want.labels, "restarted adaptive run drifted");
        assert_eq!(res.planned_passes, want.planned_passes);
        assert_eq!(res.presolve_dropped, want.presolve_dropped);
        assert!(
            PlanCheckpoint::path_for(&dir).exists(),
            "plan artifact missing"
        );
        // A re-run over the same checkpoint dir re-derives the same plan
        // and passes the stored-artifact verification.
        let again = Pipeline::new(mk().checkpoint_dir(&dir).build())
            .run_reads(&reads)
            .unwrap();
        assert_eq!(again.labels, want.labels);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_input() {
        let cfg = PipelineConfig::builder().k(21).m(6).build();
        let res = Pipeline::new(cfg).run_reads(&ReadStore::new()).unwrap();
        assert_eq!(res.labels.len(), 0);
        assert_eq!(res.components.components, 0);
        assert_eq!(res.tuples_total, 0);
    }

    #[test]
    fn guard_total_seqs_accepts_in_range_counts() {
        assert_eq!(guard_total_seqs(0, false).unwrap(), 0);
        assert_eq!(guard_total_seqs(0, true).unwrap(), 0);
        assert_eq!(guard_total_seqs(1_000_000, false).unwrap(), 1_000_000);
        // Largest even paired count that fits the 32-bit sequence-id space.
        let max_paired = u32::MAX as u64 - 1;
        assert_eq!(
            guard_total_seqs(max_paired, true).unwrap(),
            max_paired as u32
        );
        // Largest unpaired count: u32::MAX sequences would be u32::MAX
        // fragments, which collides with the sentinel — must be rejected,
        // one below must pass.
        assert_eq!(
            guard_total_seqs(u32::MAX as u64 - 1, false).unwrap(),
            u32::MAX - 1
        );
    }

    #[test]
    fn guard_total_seqs_rejects_overflowing_counts() {
        // Sequence count itself over u32::MAX: the old `as u32` accumulation
        // silently wrapped here.
        assert!(matches!(
            guard_total_seqs(u32::MAX as u64 + 1, true),
            Err(PipelineError::InvalidInput(_))
        ));
        assert!(matches!(
            guard_total_seqs(u64::MAX, false),
            Err(PipelineError::InvalidInput(_))
        ));
        // Fragment count hitting u32::MAX exactly is also out of id space
        // (unpaired: fragments == sequences).
        assert!(guard_total_seqs(u32::MAX as u64, false).is_err());
        // Paired inputs overflow via the sequence-count check: two
        // sequences per fragment means any fragment overflow implies
        // total_seqs > u32::MAX first.
        assert!(guard_total_seqs(2 * u32::MAX as u64, true).is_err());
    }

    #[test]
    fn measured_peak_covers_outgoing_and_incoming_tuples() {
        // Regression for the peak-accounting bug: with a single task the
        // KmerGen outgoing buffers hold every tuple of the pass at the
        // moment the (local) exchange delivers them, so the true peak per
        // pass is `out + in = 2 * pass_tuples`. The old accounting only
        // tracked the received side (`pass_tuples`).
        let reads = small_reads();
        let cfg = PipelineConfig::builder().k(21).m(6).passes(2).build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        assert!(res.tuples_total > 0);

        // Pigeonhole: the heaviest of the 2 passes carries at least
        // ceil(total / 2) tuples, so the fixed peak (2 * heaviest pass) is
        // at least tuples_total. The buggy accounting reported roughly
        // tuples_total / 2 on this evenly-distributed input.
        assert!(
            res.memory.measured_peak_tuples >= res.tuples_total,
            "peak {} < total {}",
            res.memory.measured_peak_tuples,
            res.tuples_total
        );

        // And the measured peak must dominate the modeled per-pass tuple
        // footprint (send + receive buffers) from the memory report.
        let modeled = res.memory.kmer_out_bytes + res.memory.kmer_in_bytes;
        assert!(
            res.memory.measured_peak_tuple_bytes >= modeled,
            "measured {} < modeled {}",
            res.memory.measured_peak_tuple_bytes,
            modeled
        );
    }

    #[test]
    fn file_pipeline_with_tiny_index_window() {
        // A window far smaller than any chunk forces the streaming probe to
        // take its doubling path; the partition must not change.
        let reads = small_reads();
        let dir = std::env::temp_dir().join("metaprep_core_filepipe_window");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        metaprep_io::write_fastq_path(&path, &reads).unwrap();
        let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
        let mem = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let cfg_small_window = PipelineConfig::builder()
            .k(21)
            .m(6)
            .tasks(2)
            .index_window(64)
            .build();
        let file = Pipeline::new(cfg_small_window)
            .run_fastq_file(&path, true)
            .unwrap();
        assert!(same_partition(&file.labels, &mem.labels));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
