//! The paper's per-task memory model (§3.7) plus measured peaks.
//!
//! Modeled bytes per task:
//!
//! ```text
//! 4^{m+1} (C + 1)        merHist + FASTQPart
//! + T * s_c              FASTQBuffer (T chunks in flight)
//! + 2 * b * M / (S * P)  kmerOut + kmerIn (b = packed tuple bytes)
//! + 8 R                  component arrays p and p'
//! ```
//!
//! The paper's example (IS, S=8, P=16, T=24) evaluates this to ~49 GB per
//! task; Table 3's memory column is this model evaluated per pass count.
//! We report the model alongside *measured* tuple-buffer peaks so the two
//! can be compared in EXPERIMENTS.md.
//!
//! The measured per-pass tuple peak assumes the **fused** LocalSort
//! (DESIGN.md §7.2): at most two tuple copies are ever resident — the
//! received per-sender parts plus the partitioned destination during the
//! scatter, then the destination plus its radix scratch (`2 × kmer_in`),
//! with the all-to-all moment (`kmer_out + kmer_in`) as the other
//! candidate. The unfused path's third concat copy no longer exists;
//! capacity the pooled pass buffers carry between passes is covered by
//! the allocator-measured footprint, not this model.

/// Per-task memory report.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MemoryReport {
    /// merHist table bytes (`4^{m+1}`).
    pub merhist_bytes: u64,
    /// FASTQPart table bytes (`4^{m+1} * C` plus fixed per-chunk fields).
    pub fastqpart_bytes: u64,
    /// FASTQ chunk buffers (`T * s_c`).
    pub fastq_buffer_bytes: u64,
    /// kmerOut buffer (`b * M / (S * P)`), packed tuple size.
    pub kmer_out_bytes: u64,
    /// kmerIn buffer (same size as kmerOut in expectation).
    pub kmer_in_bytes: u64,
    /// Component arrays `p` + `p'` (`8 R`).
    pub component_bytes: u64,
    /// Measured: maximum tuples resident on any task in any pass.
    pub measured_peak_tuples: u64,
    /// Measured: that peak in actual in-memory bytes (aligned tuple size).
    pub measured_peak_tuple_bytes: u64,
}

impl MemoryReport {
    /// Build the modeled part.
    ///
    /// * `m` — m-mer prefix length; `c` — chunk count; `t` — threads/task;
    /// * `s_c` — average chunk size in bytes;
    /// * `total_tuples` — dataset k-mer count (`M` upper bound);
    /// * `packed_tuple_bytes` — 12 for `k <= 32`, 20 above;
    /// * `passes`/`tasks` — `S`/`P`; `reads` — fragment count `R`.
    #[allow(clippy::too_many_arguments)]
    pub fn model(
        m: usize,
        c: usize,
        t: usize,
        s_c: u64,
        total_tuples: u64,
        packed_tuple_bytes: usize,
        passes: usize,
        tasks: usize,
        reads: u64,
    ) -> Self {
        let table = 4u64.pow(m as u32 + 1);
        let per_pass_task = total_tuples.div_ceil(passes as u64 * tasks as u64);
        Self {
            merhist_bytes: table,
            fastqpart_bytes: table * c as u64,
            fastq_buffer_bytes: t as u64 * s_c,
            kmer_out_bytes: per_pass_task * packed_tuple_bytes as u64,
            kmer_in_bytes: per_pass_task * packed_tuple_bytes as u64,
            component_bytes: 8 * reads,
            measured_peak_tuples: 0,
            measured_peak_tuple_bytes: 0,
        }
    }

    /// Total modeled bytes per task.
    pub fn total_modeled(&self) -> u64 {
        self.merhist_bytes
            + self.fastqpart_bytes
            + self.fastq_buffer_bytes
            + self.kmer_out_bytes
            + self.kmer_in_bytes
            + self.component_bytes
    }

    /// Record a measured per-task tuple peak.
    pub fn record_peak(&mut self, tuples: u64, tuple_size: usize) {
        if tuples > self.measured_peak_tuples {
            self.measured_peak_tuples = tuples;
            self.measured_peak_tuple_bytes = tuples * tuple_size as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_magnitudes() {
        // IS dataset example from §3.7: M ≈ 223e9 bp upper-bounds tuples;
        // the paper states ~1.3e9 tuples per task-pass with S=8, P=16, and
        // per-task totals of ~49 GB. Check the model reproduces those
        // magnitudes with the paper's inputs.
        let tuples_total: u64 = 8 * 16 * 1_300_000_000; // per paper's ~1.3B/task/pass
        let r = MemoryReport::model(
            10,            // m = 10
            1536,          // C
            24,            // T
            300_000_000,   // s_c ≈ 0.3 GB
            tuples_total,  // M
            12,            // 12-byte tuples
            8,             // S
            16,            // P
            1_130_000_000, // R = 1.13e9
        );
        let gb = |x: u64| x as f64 / 1e9;
        assert!(
            (gb(r.fastqpart_bytes) - 6.4).abs() < 1.0,
            "{}",
            gb(r.fastqpart_bytes)
        );
        assert!((gb(r.fastq_buffer_bytes) - 7.2).abs() < 0.5);
        assert!((gb(r.kmer_out_bytes) - 15.6).abs() < 2.0);
        assert!((gb(r.component_bytes) - 9.0).abs() < 1.0);
        let total = gb(r.total_modeled());
        assert!((40.0..60.0).contains(&total), "total {total} GB");
    }

    #[test]
    fn more_passes_less_memory() {
        let mk = |s: usize| {
            MemoryReport::model(8, 64, 4, 1 << 20, 100_000_000, 12, s, 4, 1_000_000).total_modeled()
        };
        assert!(mk(2) < mk(1));
        assert!(mk(8) < mk(2));
    }

    #[test]
    fn record_peak_keeps_max() {
        let mut r = MemoryReport::default();
        r.record_peak(100, 16);
        r.record_peak(50, 16);
        assert_eq!(r.measured_peak_tuples, 100);
        assert_eq!(r.measured_peak_tuple_bytes, 1600);
    }

    #[test]
    fn total_sums_components() {
        let r = MemoryReport::model(4, 2, 1, 10, 100, 12, 1, 1, 5);
        assert_eq!(
            r.total_modeled(),
            r.merhist_bytes
                + r.fastqpart_bytes
                + r.fastq_buffer_bytes
                + r.kmer_out_bytes
                + r.kmer_in_bytes
                + r.component_bytes
        );
    }
}
