//! LocalCC: implicit read-graph edges from sorted tuples (paper §3.5).
//!
//! After LocalSort, tuples with equal canonical k-mers are adjacent. Each
//! group of `f` tuples for one k-mer encodes `f - 1` star edges connecting
//! the group's first read to every other read — the implicit read graph
//! (the graph is never materialized). The k-mer frequency filter of §4.4
//! drops groups whose size lies outside `lo..=hi` before edges are
//! generated.

use crate::kmergen::PipelineKmer;
use metaprep_cc::{ConcurrentDisjointSet, UfOpStats};
use metaprep_sort::Keyed;
use rayon::prelude::*;

/// Counters from one LocalCC invocation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalCcStats {
    /// k-mer groups scanned.
    pub groups: u64,
    /// Groups dropped by the k-mer frequency filter.
    pub filtered_groups: u64,
    /// Edges processed (stream of star edges).
    pub edges: u64,
    /// Edges that observed distinct roots and were buffered for
    /// re-verification (paper Algorithm 1's `E_out`).
    pub union_edges: u64,
    /// Verification iterations performed over the buffered edges.
    pub verify_iterations: u64,
    /// Union-find operation counts (finds, path splits, unions) across
    /// the streaming scan and every verification iteration.
    pub uf: UfOpStats,
}

impl LocalCcStats {
    /// Accumulate another invocation's counters.
    pub fn merge(&mut self, o: LocalCcStats) {
        self.groups += o.groups;
        self.filtered_groups += o.filtered_groups;
        self.edges += o.edges;
        self.union_edges += o.union_edges;
        self.verify_iterations += o.verify_iterations;
        self.uf.merge(o.uf);
    }
}

/// Run LocalCC over sorted `tuples`, split at `thread_offsets` (the
/// `T + 1` offsets of the per-thread sub-ranges; groups never straddle a
/// boundary because boundaries are k-mer value cuts).
pub fn localcc_pass<K: PipelineKmer>(
    pool: &rayon::ThreadPool,
    ds: &ConcurrentDisjointSet,
    tuples: &[K::Tuple],
    thread_offsets: &[usize],
    kf_filter: Option<(u32, u32)>,
) -> LocalCcStats {
    debug_assert!(thread_offsets.windows(2).all(|w| w[0] <= w[1]));
    debug_assert_eq!(*thread_offsets.last().unwrap_or(&0), tuples.len());

    // Stream edges per thread sub-range, buffering edges that performed (or
    // raced on) a union — Algorithm 1's first iteration.
    let per_range: Vec<(LocalCcStats, Vec<(u32, u32)>)> = pool.install(|| {
        thread_offsets
            .par_windows(2)
            .map(|w| scan_range::<K>(ds, &tuples[w[0]..w[1]], kf_filter))
            .collect()
    });

    let mut stats = LocalCcStats::default();
    let mut buffered = Vec::new();
    for (s, mut b) in per_range {
        stats.merge(s);
        buffered.append(&mut b);
    }
    stats.union_edges = buffered.len() as u64;

    // Re-verification iterations (Algorithm 1's loop).
    let mut verify_ops = UfOpStats::default();
    stats.verify_iterations =
        pool.install(|| ds.process_edges_parallel_tracked(&buffered, &mut verify_ops)) as u64;
    stats.uf.merge(verify_ops);
    stats
}

/// Scan one sorted sub-range: group equal k-mers, apply the frequency
/// filter, stream star edges into the forest.
fn scan_range<K: PipelineKmer>(
    ds: &ConcurrentDisjointSet,
    tuples: &[K::Tuple],
    kf_filter: Option<(u32, u32)>,
) -> (LocalCcStats, Vec<(u32, u32)>) {
    let mut stats = LocalCcStats::default();
    let mut buffered = Vec::new();
    let mut i = 0usize;
    while i < tuples.len() {
        let key = tuples[i].key();
        let mut j = i + 1;
        while j < tuples.len() && tuples[j].key() == key {
            j += 1;
        }
        let freq = (j - i) as u32;
        stats.groups += 1;

        let keep = match kf_filter {
            Some((lo, hi)) => freq >= lo && freq <= hi,
            None => true,
        };
        if !keep {
            stats.filtered_groups += 1;
        } else if freq >= 2 {
            let anchor = K::tuple_read(&tuples[i]);
            for t in &tuples[i + 1..j] {
                let r = K::tuple_read(t);
                if r != anchor {
                    stats.edges += 1;
                    if ds.process_edge_tracked(anchor, r, &mut stats.uf) {
                        buffered.push((anchor, r));
                    }
                }
            }
        }
        i = j;
    }
    (stats, buffered)
}

/// Offsets of the per-thread sub-ranges within sorted `tuples`, from the
/// plan's thread boundaries (k-mer values).
pub fn thread_offsets_of<K: PipelineKmer>(
    tuples: &[K::Tuple],
    boundaries: &[<K as metaprep_kmer::Kmer>::Repr],
) -> Vec<usize>
where
    <K as metaprep_kmer::Kmer>::Repr: Ord,
{
    let mut offs = Vec::with_capacity(boundaries.len() + 2);
    offs.push(0);
    for b in boundaries {
        offs.push(tuples.partition_point(|t| t.key() < *b));
    }
    offs.push(tuples.len());
    offs
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_kmer::{Kmer64, KmerReadTuple};

    fn pool() -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap()
    }

    fn tuples(raw: &[(u64, u32)]) -> Vec<KmerReadTuple> {
        let mut v: Vec<KmerReadTuple> =
            raw.iter().map(|&(k, r)| KmerReadTuple::new(k, r)).collect();
        v.sort_by_key(|t| (t.kmer, t.read));
        v
    }

    fn run(n: usize, raw: &[(u64, u32)], kf: Option<(u32, u32)>) -> (Vec<u32>, LocalCcStats) {
        let ts = tuples(raw);
        let ds = ConcurrentDisjointSet::new(n);
        let offs = vec![0, ts.len()];
        let stats = localcc_pass::<Kmer64>(&pool(), &ds, &ts, &offs, kf);
        (ds.to_component_array(), stats)
    }

    #[test]
    fn shared_kmer_connects_reads() {
        let (arr, stats) = run(3, &[(5, 0), (5, 1), (9, 2)], None);
        assert_eq!(arr[0], arr[1]);
        assert_ne!(arr[0], arr[2]);
        assert_eq!(stats.groups, 2);
        assert_eq!(stats.edges, 1);
    }

    #[test]
    fn star_edges_connect_whole_group() {
        let (arr, stats) = run(4, &[(7, 0), (7, 1), (7, 2), (7, 3)], None);
        assert!(arr.iter().all(|&r| r == arr[0]));
        assert_eq!(stats.edges, 3);
    }

    #[test]
    fn duplicate_reads_in_group_add_no_edges() {
        // Read 0 contains the k-mer twice.
        let (arr, stats) = run(2, &[(7, 0), (7, 0), (7, 1)], None);
        assert_eq!(arr[0], arr[1]);
        assert_eq!(stats.edges, 1);
    }

    #[test]
    fn kf_filter_drops_high_frequency_groups() {
        // Group of 3 > hi=2 -> dropped; reads stay separate.
        let (arr, stats) = run(3, &[(7, 0), (7, 1), (7, 2)], Some((1, 2)));
        assert_ne!(arr[0], arr[1]);
        assert_eq!(stats.filtered_groups, 1);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn kf_filter_drops_low_frequency_groups() {
        // freq 2 < lo=3 -> dropped.
        let (arr, _) = run(2, &[(7, 0), (7, 1)], Some((3, 100)));
        assert_ne!(arr[0], arr[1]);
        // In range -> kept.
        let (arr, _) = run(2, &[(7, 0), (7, 1)], Some((2, 100)));
        assert_eq!(arr[0], arr[1]);
    }

    #[test]
    fn transitivity_across_groups() {
        // k-mer A connects 0-1; k-mer B connects 1-2 -> all one component.
        let (arr, _) = run(3, &[(1, 0), (1, 1), (2, 1), (2, 2)], None);
        assert!(arr.iter().all(|&r| r == arr[0]));
    }

    #[test]
    fn multi_range_offsets_respect_boundaries() {
        let ts = tuples(&[(1, 0), (1, 1), (10, 2), (10, 3), (20, 4), (20, 5)]);
        let offs = thread_offsets_of::<Kmer64>(&ts, &[5u64, 15]);
        assert_eq!(offs, vec![0, 2, 4, 6]);
        let ds = ConcurrentDisjointSet::new(6);
        localcc_pass::<Kmer64>(&pool(), &ds, &ts, &offs, None);
        let arr = ds.to_component_array();
        assert_eq!(arr[0], arr[1]);
        assert_eq!(arr[2], arr[3]);
        assert_eq!(arr[4], arr[5]);
        assert_ne!(arr[0], arr[2]);
    }

    #[test]
    fn empty_tuples() {
        let ds = ConcurrentDisjointSet::new(2);
        let stats = localcc_pass::<Kmer64>(&pool(), &ds, &[], &[0, 0], None);
        assert_eq!(stats.groups, 0);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn union_edges_counted() {
        let (_, stats) = run(4, &[(7, 0), (7, 1), (8, 2), (8, 3)], None);
        // Both edges performed unions.
        assert_eq!(stats.union_edges, 2);
        assert!(stats.verify_iterations >= 1);
    }

    #[test]
    fn uf_op_counters_populated() {
        let (_, stats) = run(4, &[(7, 0), (7, 1), (7, 2), (7, 3)], None);
        // 3 star edges, 2 finds each in the scan, plus re-verification.
        assert!(stats.uf.finds >= 6, "finds = {}", stats.uf.finds);
        // The group collapses 4 reads into 1 component: 3 unions.
        assert_eq!(stats.uf.unions, 3);
    }
}
