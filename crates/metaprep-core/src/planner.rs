//! Adaptive pass planner: invert the §3.7 memory model for a budget.
//!
//! The paper treats the pass count `S` as an input the operator guesses
//! from Table 3. This module closes the loop: given the m-mer histogram
//! built during IndexCreate (which fixes the dataset's total tuple count
//! `M`) and the run geometry, it finds the **smallest** `S` whose modeled
//! per-task footprint fits a byte budget. Smallest, because every extra
//! pass is another full read of the input — the model's tuple terms
//! (`2·b·M/(S·P)`) are the only ones that shrink with `S`, so
//! `total_modeled` is monotone non-increasing in `S` (the
//! `more_passes_less_memory` test in [`crate::memmodel`]) and a linear
//! scan from 1 upward stops at the optimum.
//!
//! Infeasible budgets fail fast: the fixed terms (index tables, FASTQ
//! buffers, component arrays) do not shrink with more passes, so once the
//! scan's ceiling is reached the budget is simply too small for this
//! dataset/geometry and the planner says so rather than thrash through
//! hundreds of I/O passes.
//!
//! When the presolve tier is active the histogram total `M` counts
//! *enumerated* k-mers, i.e. it upper-bounds the tuples that survive the
//! [`metaprep_norm::HighFreqFilter`] — the plan is conservative (never
//! under-provisions passes) and exact when presolve is off.

use crate::config::PipelineError;
use crate::memmodel::MemoryReport;

/// Ceiling on planner-chosen pass counts. Beyond this the tuple term is
/// already divided by three orders of magnitude; a budget still infeasible
/// here is dominated by the fixed terms and more passes cannot save it.
pub const MAX_PLANNED_PASSES: usize = 1024;

/// Everything [`MemoryReport::model`] needs, bundled so the planner and
/// the pipeline evaluate the *same* model with the same inputs.
#[derive(Copy, Clone, Debug)]
pub struct PlanInputs {
    /// m-mer prefix length.
    pub m: usize,
    /// Logical chunk count `C`.
    pub chunks: usize,
    /// Threads per task `T`.
    pub threads: usize,
    /// Average chunk size in bytes `s_c`.
    pub avg_chunk_bytes: u64,
    /// Total enumerated k-mers `M` (the merHist total).
    pub total_tuples: u64,
    /// Packed tuple size: 12 for `k <= 32`, 20 above.
    pub packed_tuple_bytes: usize,
    /// Task count `P`.
    pub tasks: usize,
    /// Fragment count `R`.
    pub reads: u64,
}

impl PlanInputs {
    /// Modeled per-task bytes at a given pass count.
    pub fn modeled_at(&self, passes: usize) -> u64 {
        MemoryReport::model(
            self.m,
            self.chunks,
            self.threads,
            self.avg_chunk_bytes,
            self.total_tuples,
            self.packed_tuple_bytes,
            passes,
            self.tasks,
            self.reads,
        )
        .total_modeled()
    }
}

/// A feasible plan: the chosen pass count and the model evaluation that
/// justified it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PassPlan {
    /// Smallest pass count fitting the budget.
    pub passes: usize,
    /// Modeled per-task bytes at that pass count.
    pub modeled_bytes: u64,
    /// The budget the plan was solved for.
    pub budget_bytes: u64,
}

/// Find the smallest pass count in `1..=MAX_PLANNED_PASSES` whose modeled
/// per-task footprint fits `budget` bytes. Errors when even the ceiling
/// cannot fit — the fixed footprint alone exceeds the budget.
pub fn plan_passes(inputs: &PlanInputs, budget: u64) -> Result<PassPlan, PipelineError> {
    for passes in 1..=MAX_PLANNED_PASSES {
        let modeled = inputs.modeled_at(passes);
        if modeled <= budget {
            return Ok(PassPlan {
                passes,
                modeled_bytes: modeled,
                budget_bytes: budget,
            });
        }
    }
    let floor = inputs.modeled_at(MAX_PLANNED_PASSES);
    let fixed = floor.saturating_sub(
        2 * (inputs
            .total_tuples
            .div_ceil(MAX_PLANNED_PASSES as u64 * inputs.tasks as u64)
            * inputs.packed_tuple_bytes as u64),
    );
    Err(PipelineError::InvalidConfig(format!(
        "memory budget {budget} B is infeasible: even {MAX_PLANNED_PASSES} passes model \
         {floor} B/task (fixed tables/buffers/components alone are ~{fixed} B); \
         raise --memory-budget or shrink the geometry"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> PlanInputs {
        PlanInputs {
            m: 6,
            chunks: 16,
            threads: 1,
            avg_chunk_bytes: 1 << 16,
            total_tuples: 10_000_000,
            packed_tuple_bytes: 12,
            tasks: 4,
            reads: 10_000,
        }
    }

    #[test]
    fn generous_budget_plans_one_pass() {
        let inp = inputs();
        let plan = plan_passes(&inp, u64::MAX).unwrap();
        assert_eq!(plan.passes, 1);
        assert_eq!(plan.modeled_bytes, inp.modeled_at(1));
    }

    #[test]
    fn planner_picks_the_smallest_fitting_pass_count() {
        let inp = inputs();
        for target in [2usize, 3, 8, 100] {
            // A budget exactly at the model of `target` passes must plan
            // `target` (monotone non-increasing model, strict among the
            // tuple-dominated counts used here).
            let budget = inp.modeled_at(target);
            let plan = plan_passes(&inp, budget).unwrap();
            assert_eq!(plan.passes, target, "budget for {target} passes");
            assert!(plan.modeled_bytes <= budget);
            if target > 1 {
                assert!(
                    inp.modeled_at(plan.passes - 1) > budget,
                    "one fewer pass should not have fit"
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_is_a_config_error() {
        // 1 byte cannot hold the index tables regardless of passes.
        match plan_passes(&inputs(), 1) {
            Err(PipelineError::InvalidConfig(msg)) => {
                assert!(msg.contains("infeasible"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let inp = inputs();
        let budget = inp.modeled_at(5);
        assert_eq!(plan_passes(&inp, budget), plan_passes(&inp, budget));
    }
}
