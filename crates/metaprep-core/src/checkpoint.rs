//! Pass-level checkpoint/restart for the cluster pipeline.
//!
//! A checkpoint is written at each *quiescent boundary* of a task's
//! timeline — after a KmerGen pass completes (all of its tuples are
//! folded into the concurrent union-find and no message is in flight
//! for this task) and after each merge round a receiver absorbs. At
//! those points the task's entire restartable state is:
//!
//! * which boundary comes next ([`CkptPhase`]),
//! * the accumulated scalar counters (tuples, peaks, LocalCC stats),
//! * the **raw, uncompressed** union-find parent array.
//!
//! Storing the raw parents (not the compressed component array) is what
//! makes a restart replay *byte-identical*: later path compression on a
//! restored tree walks exactly the pointers the crashed run would have
//! walked, so every subsequent find/split lands on the same labels.
//!
//! ## On-disk format (`rank{r}.ckpt`, little-endian)
//!
//! ```text
//! magic    [u8; 4] = "MPCK"
//! version  u32     = 2
//! rank     u32
//! phase    u8      (0 = Pass, 1 = Merge) + u32 payload
//! tuples_emitted, peak_tuples,
//! presolve_dropped                       3 × u64
//! localcc  groups, filtered_groups, edges, union_edges,
//!          verify_iterations, uf.finds, uf.path_splits,
//!          uf.unions                     8 × u64
//! parents  u64 length + length × u32
//! checksum u64 (FNV-1a over every preceding byte)
//! ```
//!
//! Writes are atomic: the bytes go to `rank{r}.ckpt.tmp` in the same
//! directory and are renamed over the live file, so a crash *during a
//! checkpoint write* leaves the previous checkpoint intact.
//!
//! ## The pass-plan artifact (`plan.ckpt`)
//!
//! When the adaptive pass planner runs with a checkpoint directory
//! configured, its decision — the pass count plus the per-pass k-mer
//! range boundaries — is persisted as a [`PlanCheckpoint`] next to the
//! per-rank files. The artifact carries a fingerprint of the planner's
//! inputs (the m-mer histogram and the geometry/budget knobs); a restart
//! whose recomputed inputs fingerprint the same must reproduce the same
//! plan bit-for-bit, which the pipeline verifies before reusing the
//! per-rank checkpoints. A different fingerprint means a different
//! dataset or configuration is using the directory, and the stale plan
//! (plus any per-rank state) cannot be trusted.

use crate::localcc::LocalCcStats;
use metaprep_cc::UfOpStats;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a METAPREP checkpoint.
pub const MAGIC: [u8; 4] = *b"MPCK";

/// Current format version. Bump on any layout change; [`Checkpoint::load`]
/// rejects files from other versions rather than misparsing them.
/// (v2 added the `presolve_dropped` counter.)
pub const VERSION: u32 = 2;

/// Which boundary the checkpointed task should resume *at*.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CkptPhase {
    /// Resume at the top of KmerGen pass `next_pass` (all passes before
    /// it are folded into the saved parent array).
    Pass {
        /// First pass that has NOT yet run.
        next_pass: u32,
    },
    /// All passes done; resume at merge round `next_round` (every round
    /// before it has been absorbed into the saved parent array).
    Merge {
        /// First merge round that has NOT yet been absorbed.
        next_round: u32,
    },
}

impl CkptPhase {
    fn tag(&self) -> u8 {
        match self {
            CkptPhase::Pass { .. } => 0,
            CkptPhase::Merge { .. } => 1,
        }
    }

    fn payload(&self) -> u32 {
        match self {
            CkptPhase::Pass { next_pass } => *next_pass,
            CkptPhase::Merge { next_round } => *next_round,
        }
    }
}

/// One task's complete restartable state at a quiescent boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Task (MPI rank) the state belongs to.
    pub rank: u32,
    /// Where to resume.
    pub phase: CkptPhase,
    /// Tuples emitted so far (accumulated across completed passes).
    pub tuples_emitted: u64,
    /// Peak per-pass tuple residency observed so far.
    pub peak_tuples: u64,
    /// K-mers dropped by the presolve filter so far. Restored on restart
    /// so the pipeline's `emitted + dropped == enumerated` conservation
    /// check holds across crash/replay.
    pub presolve_dropped: u64,
    /// LocalCC counters accumulated across completed passes.
    pub localcc: LocalCcStats,
    /// RAW union-find parent array (uncompressed — see module docs).
    pub parents: Vec<u32>,
}

/// Why a checkpoint failed to load or store.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file exists but is not a valid checkpoint (bad magic, version,
    /// truncation, or checksum mismatch).
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CkptError::Corrupt(s) => write!(f, "checkpoint corrupt: {s}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a over a byte slice — cheap, dependency-free integrity check.
/// This guards against truncation and bit rot, not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CkptError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )));
        };
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        // EXPECT: take(4) returned exactly 4 bytes.
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        // EXPECT: take(8) returned exactly 8 bytes.
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl Checkpoint {
    /// Checkpoint file path for `rank` under `dir`.
    pub fn path_for(dir: &Path, rank: u32) -> PathBuf {
        dir.join(format!("rank{rank}.ckpt"))
    }

    /// Serialize to the on-disk byte layout (checksum included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 4 * self.parents.len());
        buf.extend_from_slice(&MAGIC);
        push_u32(&mut buf, VERSION);
        push_u32(&mut buf, self.rank);
        buf.push(self.phase.tag());
        push_u32(&mut buf, self.phase.payload());
        push_u64(&mut buf, self.tuples_emitted);
        push_u64(&mut buf, self.peak_tuples);
        push_u64(&mut buf, self.presolve_dropped);
        let cc = &self.localcc;
        for v in [
            cc.groups,
            cc.filtered_groups,
            cc.edges,
            cc.union_edges,
            cc.verify_iterations,
            cc.uf.finds,
            cc.uf.path_splits,
            cc.uf.unions,
        ] {
            push_u64(&mut buf, v);
        }
        push_u64(&mut buf, self.parents.len() as u64);
        for &p in &self.parents {
            push_u32(&mut buf, p);
        }
        let sum = fnv1a(&buf);
        push_u64(&mut buf, sum);
        buf
    }

    /// Parse and verify the on-disk byte layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CkptError::Corrupt(format!(
                "file too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        // EXPECT: split_at(len - 8) yields an 8-byte tail.
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(CkptError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut c = Cursor {
            bytes: body,
            pos: 0,
        };
        let magic = c.take(4)?;
        if magic != MAGIC {
            return Err(CkptError::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(CkptError::Corrupt(format!(
                "version {version} (this build reads {VERSION})"
            )));
        }
        let rank = c.u32()?;
        let tag = c.u8()?;
        let payload = c.u32()?;
        let phase = match tag {
            0 => CkptPhase::Pass { next_pass: payload },
            1 => CkptPhase::Merge {
                next_round: payload,
            },
            other => return Err(CkptError::Corrupt(format!("unknown phase tag {other}"))),
        };
        let tuples_emitted = c.u64()?;
        let peak_tuples = c.u64()?;
        let presolve_dropped = c.u64()?;
        let localcc = LocalCcStats {
            groups: c.u64()?,
            filtered_groups: c.u64()?,
            edges: c.u64()?,
            union_edges: c.u64()?,
            verify_iterations: c.u64()?,
            uf: UfOpStats {
                finds: c.u64()?,
                path_splits: c.u64()?,
                unions: c.u64()?,
            },
        };
        let len = c.u64()?;
        let Ok(len) = usize::try_from(len) else {
            return Err(CkptError::Corrupt(format!("parent length {len} overflows")));
        };
        // Length sanity before allocating: the remaining body must hold
        // exactly `len` u32s.
        let remaining = body.len() - c.pos;
        if remaining != len * 4 {
            return Err(CkptError::Corrupt(format!(
                "parent array claims {len} entries ({} bytes) but {remaining} remain",
                len * 4
            )));
        }
        let mut parents = Vec::with_capacity(len);
        for _ in 0..len {
            parents.push(c.u32()?);
        }
        let n = parents.len() as u32;
        if parents.iter().any(|&p| p >= n) {
            return Err(CkptError::Corrupt("parent index out of range".to_string()));
        }
        Ok(Checkpoint {
            rank,
            phase,
            tuples_emitted,
            peak_tuples,
            presolve_dropped,
            localcc,
            parents,
        })
    }

    /// Atomically write this checkpoint as `dir/rank{rank}.ckpt`.
    ///
    /// The bytes land in a `.tmp` sibling first and are renamed over the
    /// live file, so a crash mid-write can never corrupt the previous
    /// checkpoint.
    pub fn store(&self, dir: &Path) -> Result<(), CkptError> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_for(dir, self.rank);
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Load `dir/rank{rank}.ckpt`, verifying magic, version, structure,
    /// and checksum. `Ok(None)` when no checkpoint exists for the rank
    /// (a fresh start, not an error).
    pub fn load(dir: &Path, rank: u32) -> Result<Option<Checkpoint>, CkptError> {
        let path = Self::path_for(dir, rank);
        let mut f = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes).map(Some)
    }
}

/// File magic of the pass-plan artifact.
pub const PLAN_MAGIC: [u8; 4] = *b"MPPL";

/// Plan artifact format version.
pub const PLAN_VERSION: u32 = 1;

/// The adaptive pass planner's persisted decision (see module docs).
///
/// On-disk layout (`plan.ckpt`, little-endian):
///
/// ```text
/// magic       [u8; 4] = "MPPL"
/// version     u32     = 1
/// passes, tasks, threads   3 × u32
/// fingerprint u64   (FNV-1a over the planner inputs)
/// bounds      u64 length + length × (lo u64, hi u64) of each u128 bound
/// checksum    u64   (FNV-1a over every preceding byte)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCheckpoint {
    /// Planned (or explicitly configured) pass count `S`.
    pub passes: u32,
    /// Task count the plan was built for.
    pub tasks: u32,
    /// Threads per task the plan was built for.
    pub threads: u32,
    /// FNV-1a fingerprint of the planner inputs (m-mer histogram counts
    /// plus `k`, `m`, geometry, and memory budget).
    pub fingerprint: u64,
    /// Inclusive-exclusive per-pass k-mer range boundaries
    /// (`passes + 1` packed canonical values).
    pub bounds: Vec<u128>,
}

impl PlanCheckpoint {
    /// Plan artifact path under `dir`.
    pub fn path_for(dir: &Path) -> PathBuf {
        dir.join("plan.ckpt")
    }

    /// Serialize to the on-disk byte layout (checksum included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40 + 16 * self.bounds.len());
        buf.extend_from_slice(&PLAN_MAGIC);
        push_u32(&mut buf, PLAN_VERSION);
        push_u32(&mut buf, self.passes);
        push_u32(&mut buf, self.tasks);
        push_u32(&mut buf, self.threads);
        push_u64(&mut buf, self.fingerprint);
        push_u64(&mut buf, self.bounds.len() as u64);
        for &b in &self.bounds {
            push_u64(&mut buf, b as u64);
            push_u64(&mut buf, (b >> 64) as u64);
        }
        let sum = fnv1a(&buf);
        push_u64(&mut buf, sum);
        buf
    }

    /// Parse and verify the on-disk byte layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<PlanCheckpoint, CkptError> {
        if bytes.len() < PLAN_MAGIC.len() + 8 {
            return Err(CkptError::Corrupt(format!(
                "plan file too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        // EXPECT: split_at(len - 8) yields an 8-byte tail.
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(CkptError::Corrupt(format!(
                "plan checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut c = Cursor {
            bytes: body,
            pos: 0,
        };
        let magic = c.take(4)?;
        if magic != PLAN_MAGIC {
            return Err(CkptError::Corrupt(format!("bad plan magic {magic:02x?}")));
        }
        let version = c.u32()?;
        if version != PLAN_VERSION {
            return Err(CkptError::Corrupt(format!(
                "plan version {version} (this build reads {PLAN_VERSION})"
            )));
        }
        let passes = c.u32()?;
        let tasks = c.u32()?;
        let threads = c.u32()?;
        let fingerprint = c.u64()?;
        let len = c.u64()?;
        let Ok(len) = usize::try_from(len) else {
            return Err(CkptError::Corrupt(format!("bound count {len} overflows")));
        };
        let remaining = body.len() - c.pos;
        if remaining != len * 16 {
            return Err(CkptError::Corrupt(format!(
                "plan claims {len} bounds ({} bytes) but {remaining} remain",
                len * 16
            )));
        }
        let mut bounds = Vec::with_capacity(len);
        for _ in 0..len {
            let lo = c.u64()? as u128;
            let hi = c.u64()? as u128;
            bounds.push(lo | (hi << 64));
        }
        if passes == 0 || bounds.len() != passes as usize + 1 {
            return Err(CkptError::Corrupt(format!(
                "plan has {passes} passes but {} bounds",
                bounds.len()
            )));
        }
        Ok(PlanCheckpoint {
            passes,
            tasks,
            threads,
            fingerprint,
            bounds,
        })
    }

    /// Atomically write this plan as `dir/plan.ckpt` (same tmp + rename
    /// protocol as the per-rank checkpoints).
    pub fn store(&self, dir: &Path) -> Result<(), CkptError> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_for(dir);
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Load `dir/plan.ckpt`; `Ok(None)` when no plan artifact exists.
    pub fn load(dir: &Path) -> Result<Option<PlanCheckpoint>, CkptError> {
        let path = Self::path_for(dir);
        let mut f = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes).map(Some)
    }
}

/// Fingerprint the planner's inputs: the full m-mer histogram plus every
/// knob that shapes the plan. Any change to dataset or geometry changes
/// the fingerprint, which is how a restart detects that an on-disk plan
/// belongs to a different run.
pub fn plan_fingerprint(
    counts: &[u32],
    k: usize,
    m: usize,
    tasks: usize,
    threads: usize,
    budget: Option<u64>,
) -> u64 {
    let mut buf = Vec::with_capacity(counts.len() * 4 + 48);
    for &c in counts {
        push_u32(&mut buf, c);
    }
    for v in [
        k as u64,
        m as u64,
        tasks as u64,
        threads as u64,
        budget.map_or(u64::MAX, |b| b),
        budget.is_some() as u64,
    ] {
        push_u64(&mut buf, v);
    }
    fnv1a(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: u32) -> Checkpoint {
        Checkpoint {
            rank,
            phase: CkptPhase::Pass { next_pass: 2 },
            tuples_emitted: 12_345,
            peak_tuples: 6_789,
            presolve_dropped: 321,
            localcc: LocalCcStats {
                groups: 10,
                filtered_groups: 1,
                edges: 33,
                union_edges: 7,
                verify_iterations: 2,
                uf: UfOpStats {
                    finds: 100,
                    path_splits: 5,
                    unions: 42,
                },
            },
            parents: vec![1, 1, 2, 3, 3],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metaprep_core_ckpt_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let ck = sample(3);
        let got = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(got, ck);
        let merge = Checkpoint {
            phase: CkptPhase::Merge { next_round: 1 },
            ..sample(0)
        };
        assert_eq!(Checkpoint::from_bytes(&merge.to_bytes()).unwrap(), merge);
    }

    #[test]
    fn store_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let ck = sample(2);
        ck.store(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir, 2).unwrap(), Some(ck));
        // Other ranks are fresh starts, not errors.
        assert_eq!(Checkpoint::load(&dir, 5).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_overwrites_atomically() {
        let dir = tmpdir("overwrite");
        sample(1).store(&dir).unwrap();
        let newer = Checkpoint {
            tuples_emitted: 99,
            ..sample(1)
        };
        newer.store(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir, 1).unwrap(), Some(newer));
        // No tmp residue.
        assert!(!Checkpoint::path_for(&dir, 1)
            .with_extension("ckpt.tmp")
            .exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let ck = sample(0);
        let good = ck.to_bytes();

        // Flip one payload byte anywhere: the checksum must catch it.
        for pos in [0usize, 4, 13, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(Checkpoint::from_bytes(&bad), Err(CkptError::Corrupt(_))),
                "flipped byte {pos} went undetected"
            );
        }
        // Truncation.
        assert!(matches!(
            Checkpoint::from_bytes(&good[..good.len() - 1]),
            Err(CkptError::Corrupt(_))
        ));
        assert!(matches!(
            Checkpoint::from_bytes(&good[..5]),
            Err(CkptError::Corrupt(_))
        ));
        assert!(matches!(
            Checkpoint::from_bytes(&[]),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected_with_valid_checksum() {
        let ck = sample(0);
        let mut bytes = ck.to_bytes();
        // Rewrite the version field and re-checksum so only the version
        // check can reject it.
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        match Checkpoint::from_bytes(&bytes) {
            Err(CkptError::Corrupt(s)) => assert!(s.contains("version 3"), "{s}"),
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    fn sample_plan() -> PlanCheckpoint {
        PlanCheckpoint {
            passes: 2,
            tasks: 4,
            threads: 1,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            bounds: vec![0, 1u128 << 40, u128::MAX >> 2],
        }
    }

    #[test]
    fn plan_bytes_roundtrip_exactly() {
        let plan = sample_plan();
        assert_eq!(PlanCheckpoint::from_bytes(&plan.to_bytes()).unwrap(), plan);
    }

    #[test]
    fn plan_store_load_roundtrip() {
        let dir = tmpdir("plan_roundtrip");
        assert_eq!(PlanCheckpoint::load(&dir).unwrap(), None);
        let plan = sample_plan();
        plan.store(&dir).unwrap();
        assert_eq!(PlanCheckpoint::load(&dir).unwrap(), Some(plan));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_corruption_is_detected() {
        let good = sample_plan().to_bytes();
        for pos in [0usize, 5, 17, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x20;
            assert!(
                matches!(PlanCheckpoint::from_bytes(&bad), Err(CkptError::Corrupt(_))),
                "flipped plan byte {pos} went undetected"
            );
        }
        assert!(matches!(
            PlanCheckpoint::from_bytes(&good[..good.len() - 3]),
            Err(CkptError::Corrupt(_))
        ));
        // Bound count inconsistent with passes (rewritten checksum so only
        // the structural check can reject it).
        let mut plan = sample_plan();
        plan.bounds.push(7);
        assert!(matches!(
            PlanCheckpoint::from_bytes(&plan.to_bytes()),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn plan_fingerprint_tracks_inputs() {
        let counts = vec![1u32, 2, 3, 4];
        let base = plan_fingerprint(&counts, 21, 6, 4, 1, Some(1 << 30));
        assert_eq!(base, plan_fingerprint(&counts, 21, 6, 4, 1, Some(1 << 30)));
        assert_ne!(base, plan_fingerprint(&counts, 21, 6, 4, 1, Some(1 << 31)));
        assert_ne!(base, plan_fingerprint(&counts, 21, 6, 4, 1, None));
        assert_ne!(base, plan_fingerprint(&counts, 27, 6, 4, 1, Some(1 << 30)));
        let mut other = counts.clone();
        other[2] += 1;
        assert_ne!(base, plan_fingerprint(&other, 21, 6, 4, 1, Some(1 << 30)));
    }

    #[test]
    fn out_of_range_parents_are_rejected() {
        let mut ck = sample(0);
        ck.parents = vec![0, 9]; // 9 >= len 2
        let bytes = ck.to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CkptError::Corrupt(_))
        ));
    }
}
